//! Cache behaviour of the module generators: hits are structurally
//! identical to fresh builds, hierarchical generators reuse child
//! modules, and contexts without a cache are unaffected.

use std::sync::Arc;

use amgen_core::{GenCache, GenCtx};
use amgen_modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen_modgen::diffpair::{diff_pair, DiffPairParams};
use amgen_modgen::resistor::{poly_resistor, ResistorParams};
use amgen_modgen::{contact_row, mos_transistor, ContactRowParams, MosParams, MosType};
use amgen_tech::Tech;

fn cached_ctx() -> GenCtx {
    GenCtx::from_tech(&Tech::bicmos_1u()).with_default_cache()
}

#[test]
fn hit_is_structurally_identical_to_fresh_build() {
    let ctx = cached_ctx();
    let fresh_ctx = GenCtx::from_tech(&Tech::bicmos_1u());

    let params = MosParams::new(MosType::N);
    let cold = mos_transistor(&ctx, &params).unwrap();
    let warm = mos_transistor(&ctx, &params).unwrap();
    let fresh = mos_transistor(&fresh_ctx, &params).unwrap();
    // Same context: byte-for-byte identical (layer handles included).
    assert_eq!(cold, warm);
    // Different compiled ruleset: layer handles carry a different
    // compile brand, so compare the geometric signature.
    assert_eq!(cold.signature(), fresh.signature());
    assert_eq!(cold.signature(), warm.signature());

    let snap = ctx.snapshot();
    assert!(snap.cache_hits >= 1, "{snap}");
    assert!(snap.cache_misses >= 1, "{snap}");
    // The uncached context never touched a cache.
    let fresh_snap = fresh_ctx.snapshot();
    assert_eq!((fresh_snap.cache_hits, fresh_snap.cache_misses), (0, 0));
}

#[test]
fn scalar_outputs_are_cached_alongside_the_layout() {
    let ctx = cached_ctx();
    let params = ResistorParams::new(4);
    let (cold, r_cold) = poly_resistor(&ctx, &params).unwrap();
    let (warm, r_warm) = poly_resistor(&ctx, &params).unwrap();
    assert_eq!(cold, warm);
    assert_eq!(r_cold, r_warm);
    assert!(ctx.snapshot().cache_hits >= 1);
}

#[test]
fn distinct_params_do_not_collide() {
    let ctx = cached_ctx();
    let poly = ctx.layer("poly").unwrap();
    let a = contact_row(&ctx, poly, &ContactRowParams::new()).unwrap();
    let b = contact_row(&ctx, poly, &ContactRowParams::new().with_net("gnd")).unwrap();
    assert_ne!(a, b, "net parameter must be part of the key");
    let c = diff_pair(&ctx, &DiffPairParams::new(MosType::N)).unwrap();
    let d = diff_pair(&ctx, &DiffPairParams::new(MosType::P)).unwrap();
    assert_ne!(c.signature(), d.signature());
}

/// The fig10 acceptance: the centroid pair internally builds many
/// fig06-scale sub-modules (contact rows, guard-ring rows), and with a
/// cache those child builds are served from memory — the miss count
/// stays below the total number of sub-builds.
#[test]
fn centroid_build_reuses_child_modules() {
    let ctx = cached_ctx();
    let cold = centroid_diff_pair(&ctx, &CentroidParams::paper(MosType::N)).unwrap();
    let snap = ctx.snapshot();
    assert!(
        snap.cache_hits >= 1,
        "a single centroid build must reuse at least one child module: {snap}"
    );
    let total_sub_builds = snap.cache_hits + snap.cache_misses;
    assert!(
        snap.cache_misses < total_sub_builds,
        "misses ({}) must stay below total sub-builds ({})",
        snap.cache_misses,
        total_sub_builds
    );

    // The whole module is itself memoized: a repeat build is one hit.
    let hits_before = snap.cache_hits;
    let warm = centroid_diff_pair(&ctx, &CentroidParams::paper(MosType::N)).unwrap();
    assert_eq!(cold, warm);
    assert!(ctx.snapshot().cache_hits > hits_before);
}

/// α-renaming: a diff pair's two fingers (and its repeated contact
/// rows) differ only in net labels, so they share canonical cache
/// entries within one cold build — and the served modules are
/// byte-identical to an uncached build under the caller's labels.
#[test]
fn diff_pair_fingers_share_one_alpha_entry() {
    let ctx = cached_ctx();
    let p = DiffPairParams::new(MosType::P);
    let cold = diff_pair(&ctx, &p).unwrap();

    let snap = ctx.snapshot();
    assert!(
        snap.cache_hits >= 1,
        "label-renamed fingers must share one entry: {snap}"
    );
    for port in ["g1", "g2", "s", "d1", "d2"] {
        assert!(cold.port(port).is_some(), "missing port {port}");
    }
    assert!(
        cold.net_names().iter().all(|n| !n.contains('\u{1}')),
        "placeholder labels must never leak: {:?}",
        cold.net_names()
    );

    // Byte-identical to an uncached build under the same compiled rules.
    let plain = GenCtx {
        rules: Arc::clone(&ctx.rules),
        ..GenCtx::from_tech(&Tech::bicmos_1u())
    };
    let uncached = diff_pair(&plain, &p).unwrap();
    assert_eq!(cold, uncached, "α-renamed serving must be transparent");

    let warm = diff_pair(&ctx, &p).unwrap();
    assert_eq!(cold, warm);
}

#[test]
fn caches_are_shared_across_clones_and_contexts() {
    let cache = Arc::new(GenCache::new());
    let a = GenCtx::from_tech(&Tech::bicmos_1u()).with_cache(Arc::clone(&cache));
    let params = MosParams::new(MosType::N);
    let cold = mos_transistor(&a, &params).unwrap();

    // A second context sharing the cache (same compiled rules) hits.
    let b = GenCtx {
        rules: Arc::clone(&a.rules),
        ..GenCtx::from_tech(&Tech::bicmos_1u())
    }
    .with_cache(Arc::clone(&cache));
    let warm = mos_transistor(&b, &params).unwrap();
    assert_eq!(cold, warm);
    assert_eq!(b.snapshot().cache_hits, 1);

    // A context compiled from a *different* ruleset instance must
    // rebuild: the key carries the compile brand, so none of the stored
    // entries can be served. (Intra-build dedup hits against its own
    // fresh entries are fine.)
    let other = GenCtx::from_tech(&Tech::bicmos_1u()).with_cache(Arc::clone(&cache));
    let rebuilt = mos_transistor(&other, &params).unwrap();
    assert!(other.snapshot().cache_misses >= 1);
    assert_ne!(
        cold, rebuilt,
        "old-brand bytes must never be served across compiles"
    );
    assert_eq!(
        cold.signature(),
        rebuilt.signature(),
        "same rules still generate identically"
    );
}

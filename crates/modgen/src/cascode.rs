//! The cascode pair (block A of the paper's §3).
//!
//! *"Block A contains the cascode transistors of the bias circuit. This
//! module is composed of two inter-digital MOS transistors because no
//! special matching or symmetry requirements has been specified for these
//! transistors."*
//!
//! Two inter-digitated devices are stacked vertically; the lower device's
//! drain bus and the upper device's source bus share the internal node
//! and are joined with one straight metal2 wire.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::LayoutObject;
use amgen_geom::{Coord, Dir};
use amgen_route::Router;

use crate::error::ModgenError;
use crate::interdigit::{interdigitated, InterdigitParams};
use crate::mos::MosType;

/// Parameters of the cascode pair.
#[derive(Debug, Clone)]
pub struct CascodeParams {
    /// Polarity of both devices.
    pub mos: MosType,
    /// Fingers per device.
    pub fingers: usize,
    /// Channel width per finger; `None` selects 6 µm.
    pub w: Option<Coord>,
    /// Channel length; `None` selects the minimum.
    pub l: Option<Coord>,
}

impl CascodeParams {
    /// Two fingers per device.
    pub fn new(mos: MosType) -> CascodeParams {
        CascodeParams {
            mos,
            fingers: 2,
            w: None,
            l: None,
        }
    }

    /// Sets the per-finger width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the finger count.
    #[must_use]
    pub fn with_fingers(mut self, n: usize) -> Self {
        self.fingers = n;
        self
    }
}

/// Generates the stacked cascode pair.
///
/// Ports: `g_lo`, `g_hi` (the two gate nodes), `s` (bottom source), `d`
/// (top drain); the internal node `mid` joins the lower drain to the
/// upper source.
pub fn cascode_pair(
    tech: impl IntoGenCtx,
    params: &CascodeParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "cascode_pair", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.fingers);
        k.push(params.w);
        k.push(params.l);
    });
    tech.generate_cached(Stage::Modgen, key, || cascode_pair_uncached(tech, params))
}

fn cascode_pair_uncached(
    tech: &GenCtx,
    params: &CascodeParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "cascode_pair");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "cascode_pair")?;
    let c = Compactor::new(tech);
    let router = Router::new(tech);
    let m2 = tech.metal2()?;

    let mut lower_p =
        InterdigitParams::new(params.mos, params.fingers).with_nets("g_lo", "s", "mid");
    lower_p.w = params.w;
    lower_p.l = params.l;
    let lower = interdigitated(tech, &lower_p)?;

    let mut upper_p =
        InterdigitParams::new(params.mos, params.fingers).with_nets("g_hi", "mid", "d");
    upper_p.w = params.w;
    upper_p.l = params.l;
    let upper = interdigitated(tech, &upper_p)?;

    let mut main = LayoutObject::with_capacity("cascode", lower.len() + upper.len() + 16);
    c.compact(&mut main, &lower, Dir::West, &CompactOptions::new())?;
    c.compact(&mut main, &upper, Dir::North, &CompactOptions::new())?;

    // Join the internal node: lower drain bus to upper source bus.
    let lower_mid = main
        .ports()
        .iter()
        .find(|p| p.name == "mid" && p.layer == m2)
        .map(|p| p.rect)
        .ok_or_else(|| ModgenError::Route("cascode: lower `mid` bus port not found".into()))?;
    let upper_mid = main
        .ports()
        .iter()
        .rev()
        .find(|p| p.name == "mid" && p.layer == m2)
        .map(|p| p.rect)
        .ok_or_else(|| ModgenError::Route("cascode: upper `mid` bus port not found".into()))?;
    let mid_id = main.net("mid");
    router.straight(&mut main, m2, lower_mid, upper_mid, None, Some(mid_id))?;
    Ok(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    fn cascode(t: &Tech) -> LayoutObject {
        cascode_pair(t, &CascodeParams::new(MosType::N).with_w(um(6))).unwrap()
    }

    #[test]
    fn stacks_two_devices_vertically() {
        let m = cascode(&tech());
        let bb = m.bbox();
        assert!(bb.height() > bb.width() / 2, "vertical stack");
        for p in ["g_lo", "g_hi", "s", "d"] {
            assert!(m.port(p).is_some(), "missing {p}");
        }
    }

    #[test]
    fn mid_node_is_one_component() {
        let t = tech();
        let m = cascode(&t);
        let nets = Extractor::new(&t).connectivity(&m);
        let mid_comps = nets
            .iter()
            .filter(|n| n.declared.iter().any(|x| x == "mid"))
            .count();
        assert_eq!(mid_comps, 1, "drain of lower = source of upper");
    }

    #[test]
    fn gates_stay_separate() {
        let t = tech();
        let m = cascode(&t);
        for n in Extractor::new(&t).connectivity(&m) {
            let lo = n.declared.iter().any(|x| x == "g_lo");
            let hi = n.declared.iter().any(|x| x == "g_hi");
            assert!(!(lo && hi), "{:?}", n.declared);
        }
    }

    #[test]
    fn spacing_clean() {
        let t = tech();
        let m = cascode(&t);
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
    }
}

//! The centroidal cross-coupled differential pair (Fig. 10 / block E).
//!
//! The paper's flagship module: *"the differential pair in block E
//! consists of centroidal cross-coupled inter-digital transistors with
//! eight dummy transistors in the middle and four dummy transistors on
//! the right and left side ... the wiring is fully symmetrical and every
//! net has identical crossings."*
//!
//! Structure (left to right), with a shared source row between every
//! unit:
//!
//! ```text
//! [side dummies] A-pair B-pair ... [center dummies] ... B-pair A-pair [side dummies]
//! ```
//!
//! Device A's fingers mirror device B's about the module centre, so both
//! devices share one centroid (process gradients cancel). Drain risers of
//! the two devices are given **identical crossings**: the `d1` risers are
//! extended past their own bus so they cross `d2`'s bus exactly as often
//! as `d2`'s risers cross `d1`'s.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Port, Shape};
use amgen_geom::{Coord, Dir, Point, Rect, Vector};
use amgen_prim::Primitives;
use amgen_route::Router;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;
use crate::guard::{guard_ring, GuardRingParams};
use crate::mos::MosType;

/// Which device a gate finger belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Device {
    A,
    B,
    Dummy,
}

/// Parameters of the centroid pair.
#[derive(Debug, Clone)]
pub struct CentroidParams {
    /// Polarity.
    pub mos: MosType,
    /// Finger pairs of each device per half (total fingers per device =
    /// `4 * pairs_per_side`).
    pub pairs_per_side: usize,
    /// Dummy gates in the module centre (paper: 8).
    pub center_dummies: usize,
    /// Dummy gates on each outer side (paper: 4).
    pub side_dummies: usize,
    /// Channel width per finger; `None` selects 6 µm.
    pub w: Option<Coord>,
    /// Channel length; `None` selects the minimum.
    pub l: Option<Coord>,
    /// Wrap the module in a substrate-contact guard ring.
    pub guard: bool,
}

impl CentroidParams {
    /// The paper's block-E configuration: 8 centre dummies, 4 per side,
    /// one finger pair of each device per half, guard ring on.
    pub fn paper(mos: MosType) -> CentroidParams {
        CentroidParams {
            mos,
            pairs_per_side: 1,
            center_dummies: 8,
            side_dummies: 4,
            w: None,
            l: None,
            guard: true,
        }
    }

    /// Sets the channel width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }

    /// Disables the guard ring.
    #[must_use]
    pub fn without_guard(mut self) -> Self {
        self.guard = false;
        self
    }
}

const REACH: Coord = 2_500;

/// One gate finger: poly stripe reaching up (A), down (B) or neither
/// (dummy), over a diffusion band segment.
fn gate_unit(
    tech: &GenCtx,
    mos: MosType,
    dev: Device,
    w: Coord,
    l: Option<Coord>,
) -> Result<LayoutObject, ModgenError> {
    let poly = tech.poly()?;
    let diff = mos.diff(tech)?;
    let l = l
        .unwrap_or_else(|| tech.min_width(poly))
        .max(tech.min_width(poly));
    let gx = tech.extension(poly, diff);
    let dx = tech.extension(diff, poly);
    let (y0, y1) = match dev {
        Device::A => (-gx, w + gx + REACH),
        Device::B => (-gx - REACH, w + gx),
        Device::Dummy => (-gx, w + gx),
    };
    let mut obj = LayoutObject::new("gate");
    let net = match dev {
        Device::A => obj.net("g1"),
        Device::B => obj.net("g2"),
        Device::Dummy => obj.net("dum"),
    };
    obj.push(Shape::new(poly, Rect::new(0, y0, l, y1)).with_net(net));
    obj.push(
        Shape::new(diff, Rect::new(-dx, 0, l + dx, w)).with_role(amgen_db::ShapeRole::DeviceActive),
    );
    Ok(obj)
}

/// Generates the centroid pair. Ports: gates `g1`/`g2`, drains `d1`/`d2`
/// (metal2 buses), common source `s`, and `sub` when the guard ring is
/// enabled.
pub fn centroid_diff_pair(
    tech: impl IntoGenCtx,
    params: &CentroidParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "centroid_diff_pair", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.pairs_per_side);
        k.push(params.center_dummies);
        k.push(params.side_dummies);
        k.push(params.w);
        k.push(params.l);
        k.push(params.guard);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        centroid_diff_pair_uncached(tech, params)
    })
}

fn centroid_diff_pair_uncached(
    tech: &GenCtx,
    params: &CentroidParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "centroid_diff_pair");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "centroid_diff_pair")?;
    if params.pairs_per_side == 0 {
        return Err(ModgenError::BadParam {
            param: "pairs_per_side",
            message: "must be at least 1".into(),
        });
    }
    let c = Compactor::new(tech);
    let router = Router::new(tech);
    let prim = Primitives::new(tech);
    let poly = tech.poly()?;
    let diff = params.mos.diff(tech)?;
    let m1 = tech.metal1()?;
    let m2 = tech.metal2()?;
    let via = tech.via1()?;
    let w = params.w.unwrap_or(6_000).max(4_000);
    let gx = tech.extension(poly, diff);

    // Column plan: units separated by shared source rows. An active pair
    // is gate-drainrow-gate; a dummy run is consecutive gates.
    #[derive(Clone, Copy)]
    enum Unit {
        Pair(Device),
        Dummies(usize),
    }
    let mut units: Vec<Unit> = Vec::new();
    if params.side_dummies > 0 {
        units.push(Unit::Dummies(params.side_dummies));
    }
    for _ in 0..params.pairs_per_side {
        units.push(Unit::Pair(Device::A));
        units.push(Unit::Pair(Device::B));
    }
    if params.center_dummies > 0 {
        units.push(Unit::Dummies(params.center_dummies));
    }
    for _ in 0..params.pairs_per_side {
        units.push(Unit::Pair(Device::B));
        units.push(Unit::Pair(Device::A));
    }
    if params.side_dummies > 0 {
        units.push(Unit::Dummies(params.side_dummies));
    }

    let mut main = LayoutObject::new("centroid_pair");
    let opts = CompactOptions::new().ignoring(diff);
    let s_row = |tech: &GenCtx| -> Result<LayoutObject, ModgenError> {
        contact_row(tech, diff, &ContactRowParams::new().with_l(w).with_net("s"))
    };

    // Track where things land.
    let mut a_cols: Vec<Rect> = Vec::new();
    let mut b_cols: Vec<Rect> = Vec::new();
    let mut row_centers: Vec<(String, Coord)> = Vec::new();

    let mut place_gate = |main: &mut LayoutObject, dev: Device| -> Result<(), ModgenError> {
        let g = gate_unit(tech, params.mos, dev, w, params.l)?;
        let before = main.len();
        c.compact(main, &g, Dir::East, &opts)?;
        let rect = main.shapes()[before].rect; // the poly stripe
        match dev {
            Device::A => a_cols.push(rect),
            Device::B => b_cols.push(rect),
            Device::Dummy => {}
        }
        Ok(())
    };
    let place_row = |main: &mut LayoutObject,
                     net: &str,
                     row_centers: &mut Vec<(String, Coord)>|
     -> Result<(), ModgenError> {
        let r = contact_row(tech, diff, &ContactRowParams::new().with_l(w).with_net(net))?;
        let x0 = main.bbox().x1;
        c.compact(main, &r, Dir::East, &opts)?;
        let x1 = main.bbox().x1;
        row_centers.push((net.to_string(), (x0 + x1) / 2));
        Ok(())
    };

    // Seed source row, then units each followed by a source row.
    let seed = s_row(tech)?;
    c.compact(&mut main, &seed, Dir::West, &opts)?;
    row_centers.push(("s".to_string(), main.bbox_on(m1).center().x));
    for unit in units {
        match unit {
            Unit::Dummies(k) => {
                for _ in 0..k {
                    place_gate(&mut main, Device::Dummy)?;
                }
            }
            Unit::Pair(dev) => {
                place_gate(&mut main, dev)?;
                place_row(
                    &mut main,
                    if dev == Device::A { "d1" } else { "d2" },
                    &mut row_centers,
                )?;
                place_gate(&mut main, dev)?;
            }
        }
        place_row(&mut main, "s", &mut row_centers)?;
    }

    // Gate straps: g1 across the A reach at the top, g2 at the bottom.
    let strap_w = tech.min_width(poly);
    let g1 = main.net("g1");
    let g2 = main.net("g2");
    let a_span = a_cols.iter().fold(Rect::EMPTY, |acc, r| acc.union_bbox(r));
    let b_span = b_cols.iter().fold(Rect::EMPTY, |acc, r| acc.union_bbox(r));
    let strap_a = Rect::new(
        a_span.x0,
        w + gx + REACH - strap_w,
        a_span.x1,
        w + gx + REACH,
    );
    let strap_b = Rect::new(b_span.x0, -gx - REACH, b_span.x1, -gx - REACH + strap_w);
    main.push(Shape::new(poly, strap_a).with_net(g1));
    main.push(Shape::new(poly, strap_b).with_net(g2));

    // Gate contact rows at the module centre, on each strap.
    let center_x = main.bbox().center().x;
    for (net, strap, above) in [("g1", strap_a, true), ("g2", strap_b, false)] {
        let mut pc = contact_row(tech, poly, &ContactRowParams::new().with_net(net))?;
        let pb = pc.bbox();
        let dy = if above {
            strap.y1 - pb.y0
        } else {
            strap.y0 - pb.y1
        };
        pc.translate(Vector::new(center_x - pb.center().x, dy));
        main.absorb(&pc, Vector::ZERO);
    }

    // Buses: the common source below the module (risers drop straight
    // down, crossing nothing on their own layer); the two drain buses
    // stacked above. A riser that must pass the other drain's bus dives
    // into a metal1 **underpass** — one real crossing. The d1 risers,
    // whose own bus comes first, get a *dummy* underpass through bus_d2,
    // so both drain nets end up with identical crossings (Fig. 10).
    let bus_w = tech.min_width(m2).max(2_000);
    let span = main.bbox();
    let bus_s = Rect::new(span.x0, span.y0 - 2_000 - bus_w, span.x1, span.y0 - 2_000);
    let bus_d1 = Rect::new(span.x0, span.y1 + 2_000, span.x1, span.y1 + 2_000 + bus_w);
    let bus_d2 = Rect::new(
        span.x0,
        bus_d1.y1 + 6_000,
        span.x1,
        bus_d1.y1 + 6_000 + bus_w,
    );
    let d1_id = main.net("d1");
    let d2_id = main.net("d2");
    let s_id = main.net("s");
    main.push(Shape::new(m2, bus_s).with_net(s_id));
    main.push(Shape::new(m2, bus_d1).with_net(d1_id));
    main.push(Shape::new(m2, bus_d2).with_net(d2_id));

    let wire_w = tech.min_width(m2);
    // Underpass landing offsets: via pads are 1 µm half-height, metal2
    // spacing is 2 µm, so via centres sit 3 µm off the foreign bus edges.
    let below_d1 = bus_d1.y0 - 3_000;
    let above_d1 = bus_d1.y1 + 3_000;
    let below_d2 = bus_d2.y0 - 3_000;
    let above_d2 = bus_d2.y1 + 3_000;
    for (net, x) in &row_centers {
        let id = main.net(net);
        router.via_stack(&mut main, via, m1, m2, Point::new(*x, w / 2), Some(id))?;
        let col = |y0: i64, y1: i64| Rect::new(x - wire_w / 2, y0, x - wire_w / 2 + wire_w, y1);
        match net.as_str() {
            "s" => {
                main.push(Shape::new(m2, col(bus_s.y0, w / 2)).with_net(id));
            }
            "d1" => {
                // Rise through own bus, then dummy-cross bus_d2.
                main.push(Shape::new(m2, col(w / 2, below_d2)).with_net(id));
                router.underpass_v(&mut main, via, m1, m2, *x, below_d2, above_d2, Some(id))?;
            }
            _ => {
                // d2: rise to below bus_d1, underpass it, continue to own bus.
                main.push(Shape::new(m2, col(w / 2, below_d1)).with_net(id));
                router.underpass_v(&mut main, via, m1, m2, *x, below_d1, above_d1, Some(id))?;
                main.push(Shape::new(m2, col(above_d1, bus_d2.y1)).with_net(id));
            }
        }
    }
    main.push_port(Port {
        name: "d1".into(),
        layer: m2,
        rect: bus_d1,
        net: Some(d1_id),
    });
    main.push_port(Port {
        name: "d2".into(),
        layer: m2,
        rect: bus_d2,
        net: Some(d2_id),
    });
    main.push_port(Port {
        name: "s".into(),
        layer: m2,
        rect: bus_s,
        net: Some(s_id),
    });

    // Implants / well.
    match params.mos {
        MosType::N => {
            let nplus = tech.nplus()?;
            prim.around(&mut main, nplus, 0)?;
        }
        MosType::P => {
            let pplus = tech.pplus()?;
            prim.around(&mut main, pplus, 0)?;
            let nwell = tech.nwell()?;
            prim.around(&mut main, nwell, 0)?;
        }
    }

    if params.guard {
        main = guard_ring(tech, &main, &GuardRingParams::default())?;
    }
    Ok(main)
}

/// The mean x position of a device's gate columns — equal for both
/// devices in a common-centroid arrangement.
pub fn device_centroid_x(cols: &[Rect]) -> f64 {
    if cols.is_empty() {
        return 0.0;
    }
    cols.iter().map(|r| r.center().x as f64).sum::<f64>() / cols.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::{latchup, Drc};
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    fn paper_module(t: &Tech) -> LayoutObject {
        centroid_diff_pair(
            t,
            &CentroidParams::paper(MosType::N)
                .with_w(um(6))
                .with_l(um(1)),
        )
        .unwrap()
    }

    #[test]
    fn paper_configuration_builds() {
        let m = paper_module(&tech());
        assert!(m.port("d1").is_some());
        assert!(m.port("d2").is_some());
        assert!(m.port("s").is_some());
        assert!(m.port("sub").is_some(), "substrate contacts included");
    }

    #[test]
    fn gate_finger_count_matches_plan() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = centroid_diff_pair(
            &t,
            &CentroidParams::paper(MosType::N)
                .with_w(um(6))
                .without_guard(),
        )?;
        let poly = t.layer("poly")?;
        // Vertical poly stripes: 4+4 active + 8+4+4 dummies = 24.
        let stripes = m
            .shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .count();
        assert_eq!(stripes, 24);
        Ok(())
    }

    #[test]
    fn devices_share_a_centroid() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        // Re-derive the columns from the built module: A columns reach
        // high, B columns reach low.
        let m = centroid_diff_pair(
            &t,
            &CentroidParams::paper(MosType::N)
                .with_w(um(6))
                .without_guard(),
        )?;
        let poly = t.layer("poly")?;
        let stripes: Vec<Rect> = m
            .shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .map(|s| s.rect)
            .collect();
        let y_top = stripes.iter().map(|r| r.y1).max().ok_or("no stripes")?;
        let y_bot = stripes.iter().map(|r| r.y0).min().ok_or("no stripes")?;
        let a: Vec<Rect> = stripes.iter().copied().filter(|r| r.y1 == y_top).collect();
        let b: Vec<Rect> = stripes.iter().copied().filter(|r| r.y0 == y_bot).collect();
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        let ca = device_centroid_x(&a);
        let cb = device_centroid_x(&b);
        assert!((ca - cb).abs() < 1_000.0, "centroids differ: {ca} vs {cb}");
        Ok(())
    }

    #[test]
    fn drain_nets_have_identical_crossings() {
        let t = tech();
        let m = paper_module(&t);
        let counts = Router::new(&t).crossing_counts(&m);
        let get = |n: &str| {
            counts
                .iter()
                .find(|(x, _)| x == n)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        assert_eq!(get("d1"), get("d2"), "{counts:?}");
        assert!(get("d1") > 0, "the drains do cross other nets");
    }

    #[test]
    fn latchup_clean_with_guard_ring() {
        let t = tech();
        let m = paper_module(&t);
        assert!(latchup::check_latchup(&t, &m).is_empty());
    }

    #[test]
    fn latchup_fails_without_guard_ring() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = centroid_diff_pair(
            &t,
            &CentroidParams::paper(MosType::N)
                .with_w(um(6))
                .without_guard(),
        )?;
        assert!(!latchup::check_latchup(&t, &m).is_empty());
        Ok(())
    }

    #[test]
    fn no_gate_to_gate_short() {
        let t = tech();
        let m = paper_module(&t);
        let nets = Extractor::new(&t).connectivity(&m);
        for n in &nets {
            let has_g1 = n.declared.iter().any(|x| x == "g1");
            let has_g2 = n.declared.iter().any(|x| x == "g2");
            assert!(!(has_g1 && has_g2), "gates shorted: {:?}", n.declared);
            let has_d1 = n.declared.iter().any(|x| x == "d1");
            let has_d2 = n.declared.iter().any(|x| x == "d2");
            assert!(!(has_d1 && has_d2), "drains shorted: {:?}", n.declared);
        }
    }

    #[test]
    fn spacing_clean() {
        let t = tech();
        let m = paper_module(&t);
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn zero_pairs_rejected() {
        let t = tech();
        let mut p = CentroidParams::paper(MosType::N);
        p.pairs_per_side = 0;
        assert!(matches!(
            centroid_diff_pair(&t, &p),
            Err(ModgenError::BadParam { .. })
        ));
    }

    #[test]
    fn more_pairs_grow_the_module() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let mut small = CentroidParams::paper(MosType::N).without_guard();
        small.center_dummies = 2;
        small.side_dummies = 1;
        let mut big = small.clone();
        big.pairs_per_side = 2;
        let a = centroid_diff_pair(&t, &small)?;
        let b = centroid_diff_pair(&t, &big)?;
        assert!(b.bbox().width() > a.bbox().width());
        Ok(())
    }
}

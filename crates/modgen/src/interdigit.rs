//! Inter-digitated MOS transistors (blocks A and C of the paper's §3).
//!
//! A single device split into `fingers` parallel gate stripes over one
//! diffusion band, with shared source/drain contact rows between the
//! stripes (`S g D g S g D ...`), a poly strap connecting the gates, and
//! metal2 buses collecting the source and drain rows.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Port, Shape};
use amgen_geom::{Coord, Dir, Point, Rect};
use amgen_prim::Primitives;
use amgen_route::Router;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;
use crate::mos::MosType;

/// Parameters of an inter-digitated transistor.
#[derive(Debug, Clone)]
pub struct InterdigitParams {
    /// Polarity.
    pub mos: MosType,
    /// Number of gate fingers (≥ 1).
    pub fingers: usize,
    /// Channel width per finger; `None` selects a 6 µm default (wide
    /// enough for the bus vias).
    pub w: Option<Coord>,
    /// Channel length; `None` selects the minimum.
    pub l: Option<Coord>,
    /// Gate net name.
    pub g_net: String,
    /// Source net name.
    pub s_net: String,
    /// Drain net name.
    pub d_net: String,
    /// Draw implant (and well for PMOS).
    pub implants: bool,
}

impl InterdigitParams {
    /// `fingers` fingers with default nets `g`/`s`/`d`.
    pub fn new(mos: MosType, fingers: usize) -> InterdigitParams {
        InterdigitParams {
            mos,
            fingers,
            w: None,
            l: None,
            g_net: "g".into(),
            s_net: "s".into(),
            d_net: "d".into(),
            implants: true,
        }
    }

    /// Sets the per-finger channel width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }

    /// Renames the terminals.
    #[must_use]
    pub fn with_nets(mut self, g: &str, s: &str, d: &str) -> Self {
        self.g_net = g.into();
        self.s_net = s.into();
        self.d_net = d.into();
        self
    }
}

/// Internal: builds one bare gate finger (poly stripe + diffusion band
/// segment, no contacts).
fn gate_unit(
    tech: &GenCtx,
    mos: MosType,
    w: Coord,
    l: Option<Coord>,
    g_net: &str,
) -> Result<LayoutObject, ModgenError> {
    let prim = Primitives::new(tech);
    let poly = tech.poly()?;
    let diff = mos.diff(tech)?;
    let mut obj = LayoutObject::new("gate");
    let (gi, _) = prim.two_rects(&mut obj, poly, diff, Some(w), l)?;
    let id = obj.net(g_net);
    obj.shapes_mut()[gi].net = Some(id);
    Ok(obj)
}

/// Generates the inter-digitated transistor.
///
/// Ports: the gate (`g_net`, on the poly contact row), the source bus and
/// the drain bus (`s_net`/`d_net`, on metal2).
pub fn interdigitated(
    tech: impl IntoGenCtx,
    params: &InterdigitParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "interdigitated", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.fingers);
        k.push(params.w);
        k.push(params.l);
        k.push(params.g_net.clone());
        k.push(params.s_net.clone());
        k.push(params.d_net.clone());
        k.push(params.implants);
    });
    tech.generate_cached(Stage::Modgen, key, || interdigitated_uncached(tech, params))
}

fn interdigitated_uncached(
    tech: &GenCtx,
    params: &InterdigitParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "interdigitated");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "interdigitated")?;
    if params.fingers == 0 {
        return Err(ModgenError::BadParam {
            param: "fingers",
            message: "must be at least 1".into(),
        });
    }
    let c = Compactor::new(tech);
    let prim = Primitives::new(tech);
    let router = Router::new(tech);
    let poly = tech.poly()?;
    let diff = params.mos.diff(tech)?;
    let m1 = tech.metal1()?;
    let m2 = tech.metal2()?;
    let via = tech.via1()?;
    let w = params.w.unwrap_or(6_000).max(4_000);

    let mut main = LayoutObject::new("interdigit");
    let opts = CompactOptions::new().ignoring(diff);

    // Alternating row/gate chain: S g D g S g D ...
    let row = |net: &str| -> Result<LayoutObject, ModgenError> {
        contact_row(tech, diff, &ContactRowParams::new().with_l(w).with_net(net))
    };
    let mut row_centers: Vec<(String, Coord)> = Vec::new();
    let seed = row(&params.s_net)?;
    c.compact(&mut main, &seed, Dir::West, &opts)?;
    row_centers.push((params.s_net.clone(), main.bbox_on(m1).center().x));
    for i in 0..params.fingers {
        let g = gate_unit(tech, params.mos, w, params.l, &params.g_net)?;
        c.compact(&mut main, &g, Dir::East, &opts)?;
        let net = if i % 2 == 0 {
            &params.d_net
        } else {
            &params.s_net
        };
        let r = row(net)?;
        let before = main.bbox().x1;
        c.compact(&mut main, &r, Dir::East, &opts)?;
        let after = main.bbox().x1;
        row_centers.push((net.clone(), (before + after) / 2));
    }

    // Gate strap: a poly bar across the top, merging with every finger.
    let strap_w = tech.min_width(poly);
    let gate_top = main.bbox_on(poly).y1;
    let span = main.bbox_on(poly);
    let strap = Rect::new(span.x0, gate_top, span.x1, gate_top + strap_w);
    let g_id = main.net(&params.g_net);
    main.push(Shape::new(poly, strap).with_net(g_id));

    // Gate contact row on the strap (west end).
    let polycon = contact_row(tech, poly, &ContactRowParams::new().with_net(&params.g_net))?;
    let mut polycon = polycon;
    let pbox = polycon.bbox();
    polycon.translate(amgen_geom::Vector::new(
        span.x0 - pbox.x0,
        strap.y1 - pbox.y0,
    ));
    main.absorb(&polycon, amgen_geom::Vector::ZERO);

    // Buses in metal2: the source bus below the device (risers drop), the
    // drain bus above the poly contact (risers rise) — same-layer risers
    // never cross a foreign bus.
    let bus_w = (tech.min_width(m2)).max(2_000);
    let bus_span = main.bbox();
    let s_bus_y1 = bus_span.y0 - 2_000;
    let d_bus_y0 = bus_span.y1 + 2_000;
    let s_id = main.net(&params.s_net);
    let d_id = main.net(&params.d_net);
    let s_bus = Rect::new(bus_span.x0, s_bus_y1 - bus_w, bus_span.x1, s_bus_y1);
    let d_bus = Rect::new(bus_span.x0, d_bus_y0, bus_span.x1, d_bus_y0 + bus_w);
    main.push(Shape::new(m2, s_bus).with_net(s_id));
    main.push(Shape::new(m2, d_bus).with_net(d_id));
    // Vias and vertical metal2 risers from every row to its bus.
    let wire_w = tech.min_width(m2);
    for (net, x) in &row_centers {
        let id = main.net(net);
        let via_at = Point::new(*x, w / 2);
        router.via_stack(&mut main, via, m1, m2, via_at, Some(id))?;
        let riser = if net == &params.s_net {
            Rect::new(x - wire_w / 2, s_bus.y0, x - wire_w / 2 + wire_w, via_at.y)
        } else {
            Rect::new(x - wire_w / 2, via_at.y, x - wire_w / 2 + wire_w, d_bus.y1)
        };
        main.push(Shape::new(m2, riser).with_net(id));
    }
    main.push_port(Port {
        name: params.s_net.clone(),
        layer: m2,
        rect: s_bus,
        net: Some(s_id),
    });
    main.push_port(Port {
        name: params.d_net.clone(),
        layer: m2,
        rect: d_bus,
        net: Some(d_id),
    });

    if params.implants {
        match params.mos {
            MosType::N => {
                let nplus = tech.nplus()?;
                prim.around(&mut main, nplus, 0)?;
            }
            MosType::P => {
                let pplus = tech.pplus()?;
                prim.around(&mut main, pplus, 0)?;
                let nwell = tech.nwell()?;
                prim.around(&mut main, nwell, 0)?;
            }
        }
    }
    Ok(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    fn module(t: &Tech, fingers: usize) -> LayoutObject {
        interdigitated(
            t,
            &InterdigitParams::new(MosType::N, fingers)
                .with_w(um(8))
                .with_l(um(1)),
        )
        .unwrap()
    }

    #[test]
    fn zero_fingers_is_rejected() {
        assert!(matches!(
            interdigitated(&tech(), &InterdigitParams::new(MosType::N, 0)),
            Err(ModgenError::BadParam {
                param: "fingers",
                ..
            })
        ));
    }

    #[test]
    fn finger_count_matches() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = module(&t, 4);
        // 4 gate stripes + 1 strap + 1 polycon base = 6 poly shapes
        // minimum; count the vertical gate stripes (taller than wide).
        let poly = t.layer("poly")?;
        let stripes = m
            .shapes_on(poly)
            .filter(|s| s.rect.height() > s.rect.width())
            .count();
        assert_eq!(stripes, 4);
        Ok(())
    }

    #[test]
    fn terminals_form_exactly_three_declared_nets() {
        let t = tech();
        let m = module(&t, 3);
        let nets = Extractor::new(&t).connectivity(&m);
        // g, s, d declared; the diffusion band joins s and d geometrically
        // (one silicon strip), so accept s/d sharing a component but never
        // with g.
        for n in &nets {
            assert!(
                !n.declared.iter().any(|x| x == "g") || n.declared.len() == 1,
                "gate shorted: {:?}",
                n.declared
            );
        }
        // The gate component exists and is unique.
        let g_comps: Vec<_> = nets
            .iter()
            .filter(|n| n.declared.iter().any(|x| x == "g"))
            .collect();
        assert_eq!(g_comps.len(), 1, "all fingers share one gate node");
    }

    #[test]
    fn buses_are_ports() -> Result<(), Box<dyn std::error::Error>> {
        let m = module(&tech(), 3);
        assert!(m.port("s").is_some());
        assert!(m.port("d").is_some());
        let s = m.port("s").ok_or("missing port s")?.rect;
        let d = m.port("d").ok_or("missing port d")?.rect;
        assert!(!s.overlaps(&d));
        Ok(())
    }

    #[test]
    fn spacing_clean() {
        let t = tech();
        let m = module(&t, 4);
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn more_fingers_make_a_wider_module() {
        let t = tech();
        let a = module(&t, 2);
        let b = module(&t, 6);
        assert!(b.bbox().width() > a.bbox().width());
        // Same height order of magnitude (that is the point of folding).
        assert!(b.bbox().height() < a.bbox().height() * 2);
    }

    #[test]
    fn row_nets_alternate() {
        let t = tech();
        let m = module(&t, 2);
        // 3 rows: s, d, s.
        let nets = Extractor::new(&t).connectivity(&m);
        let d_members: usize = nets
            .iter()
            .filter(|n| n.declared.iter().any(|x| x == "d"))
            .map(|n| n.shapes.len())
            .sum();
        assert!(d_members > 0);
    }
}

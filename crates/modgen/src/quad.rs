//! The 2-D common-centroid quad: four unit transistors in an
//! `A B / B A` square so **both** devices share the centroid in **both**
//! axes — the strongest matching arrangement for a pair, complementing
//! the 1-D cross-coupling of [`crate::centroid`].
//!
//! Each row is a two-finger chain (`S g d g S`-style, rows sharing
//! diffusion within the row only); the second row is the first with the
//! device assignment swapped, stacked north at rule distance. Gate and
//! drain wiring is left on the module ports (the paper routes block
//! wiring per-module; here the quad exposes per-row ports so the
//! enclosing module can wire diagonals on its preferred layers).

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::LayoutObject;
use amgen_geom::{Coord, Dir};
use amgen_prim::Primitives;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;
use crate::mos::MosType;

/// Parameters of the quad.
#[derive(Debug, Clone)]
pub struct QuadParams {
    /// Polarity.
    pub mos: MosType,
    /// Channel width per unit; `None` selects 6 µm.
    pub w: Option<Coord>,
    /// Channel length; `None` selects the minimum.
    pub l: Option<Coord>,
}

impl QuadParams {
    /// A quad of the given polarity.
    pub fn new(mos: MosType) -> QuadParams {
        QuadParams {
            mos,
            w: None,
            l: None,
        }
    }

    /// Sets the unit channel width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }
}

/// One row: `S g(first) D(first) S g(second) D(second) S` built by
/// successive compaction; gates carry the given nets, drains likewise.
fn quad_row(
    tech: &GenCtx,
    mos: MosType,
    w: Coord,
    l: Option<Coord>,
    first: (&str, &str),
    second: (&str, &str),
) -> Result<LayoutObject, ModgenError> {
    let prim = Primitives::new(tech);
    let c = Compactor::new(tech);
    let poly = tech.poly()?;
    let diff = mos.diff(tech)?;
    let mut main = LayoutObject::new("row");
    let opts = CompactOptions::new().ignoring(diff);
    let row = |net: &str| contact_row(tech, diff, &ContactRowParams::new().with_l(w).with_net(net));
    let gate = |g_net: &str| -> Result<LayoutObject, ModgenError> {
        let mut o = LayoutObject::new("g");
        let (gi, _) = prim.two_rects(&mut o, poly, diff, Some(w), l)?;
        let id = o.net(g_net);
        o.shapes_mut()[gi].net = Some(id);
        Ok(o)
    };
    c.compact(&mut main, &row("s")?, Dir::West, &opts)?;
    for (g, d) in [first, second] {
        c.compact(&mut main, &gate(g)?, Dir::East, &opts)?;
        c.compact(&mut main, &row(d)?, Dir::East, &opts)?;
        // Shared source between and after the units.
        c.compact(&mut main, &gate(g)?, Dir::East, &opts)?;
        c.compact(&mut main, &row("s")?, Dir::East, &opts)?;
    }
    Ok(main)
}

/// Generates the `A B / B A` quad. Gate nets `g1`/`g2`, drain nets
/// `d1`/`d2`, common source `s`; each appears in both rows, so the
/// centroids of both devices coincide in x **and** y.
pub fn common_centroid_quad(
    tech: impl IntoGenCtx,
    params: &QuadParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "common_centroid_quad", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.w);
        k.push(params.l);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        common_centroid_quad_uncached(tech, params)
    })
}

fn common_centroid_quad_uncached(
    tech: &GenCtx,
    params: &QuadParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "common_centroid_quad");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "common_centroid_quad")?;
    let w = params
        .w
        .unwrap_or(6_000)
        .max(tech.min_width(params.mos.diff(tech)?));
    let c = Compactor::new(tech);
    let bottom = quad_row(tech, params.mos, w, params.l, ("g1", "d1"), ("g2", "d2"))?;
    let top = quad_row(tech, params.mos, w, params.l, ("g2", "d2"), ("g1", "d1"))?;
    let mut main = LayoutObject::with_capacity("centroid_quad", bottom.len() + top.len() + 8);
    c.compact(&mut main, &bottom, Dir::South, &CompactOptions::new())?;
    c.compact(&mut main, &top, Dir::North, &CompactOptions::new())?;
    let prim = Primitives::new(tech);
    match params.mos {
        MosType::N => {
            let nplus = tech.nplus()?;
            prim.around(&mut main, nplus, 0)?;
        }
        MosType::P => {
            let pplus = tech.pplus()?;
            prim.around(&mut main, pplus, 0)?;
            let nwell = tech.nwell()?;
            prim.around(&mut main, nwell, 0)?;
        }
    }
    Ok(main)
}

/// The centroid (mean centre) of the gate stripes carrying a net.
pub fn gate_centroid(tech: impl IntoGenCtx, obj: &LayoutObject, net: &str) -> Option<(f64, f64)> {
    let tech = &tech.into_gen_ctx();
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "gate_centroid");
    let poly = tech.poly().ok()?;
    let id = obj.find_net(net)?;
    let centers: Vec<(f64, f64)> = obj
        .shapes_on(poly)
        .filter(|s| s.net == Some(id) && s.rect.height() > s.rect.width())
        .map(|s| (s.rect.center().x as f64, s.rect.center().y as f64))
        .collect();
    if centers.is_empty() {
        return None;
    }
    let n = centers.len() as f64;
    Some((
        centers.iter().map(|c| c.0).sum::<f64>() / n,
        centers.iter().map(|c| c.1).sum::<f64>() / n,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    fn quad(t: &Tech) -> LayoutObject {
        common_centroid_quad(t, &QuadParams::new(MosType::N).with_w(um(6)).with_l(um(1))).unwrap()
    }

    #[test]
    fn four_units_two_per_device() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let q = quad(&t);
        let poly = t.layer("poly")?;
        let g1 = q.find_net("g1").ok_or("missing net g1")?;
        let g2 = q.find_net("g2").ok_or("missing net g2")?;
        let count = |net| {
            q.shapes_on(poly)
                .filter(|s| s.net == Some(net) && s.rect.height() > 3 * s.rect.width())
                .count()
        };
        assert_eq!(count(g1), 4, "2 fingers x 2 rows per device");
        assert_eq!(count(g2), 4);
        Ok(())
    }

    #[test]
    fn centroids_coincide_in_both_axes() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let q = quad(&t);
        let (x1, y1) = gate_centroid(&t, &q, "g1").ok_or("no centroid for g1")?;
        let (x2, y2) = gate_centroid(&t, &q, "g2").ok_or("no centroid for g2")?;
        assert!((x1 - x2).abs() < 1_000.0, "x centroids: {x1} vs {x2}");
        assert!((y1 - y2).abs() < 1_000.0, "y centroids: {y1} vs {y2}");
        Ok(())
    }

    #[test]
    fn devices_do_not_short() {
        let t = tech();
        let q = quad(&t);
        for n in Extractor::new(&t).connectivity(&q) {
            let has = |x: &str| n.declared.iter().any(|d| d == x);
            assert!(!(has("g1") && has("g2")), "{:?}", n.declared);
            assert!(!(has("d1") && has("d2")), "{:?}", n.declared);
            assert!(!(has("d1") && has("s")), "{:?}", n.declared);
        }
    }

    #[test]
    fn rows_are_rule_spaced() {
        let t = tech();
        let q = quad(&t);
        let v = Drc::new(&t).check_spacing(&q);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn quad_is_roughly_square() {
        let t = tech();
        let q = quad(&t);
        let bb = q.bbox();
        let ratio = bb.width() as f64 / bb.height() as f64;
        assert!(ratio > 0.5 && ratio < 4.0, "aspect {ratio}");
    }

    #[test]
    fn bbox_overlap_between_rows_is_none() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let q = quad(&t);
        // The two diffusion bands (rows) stay separate: count distinct
        // y-bands of diffusion.
        let nd = t.layer("ndiff")?;
        let mut y0s: Vec<i64> = q.shapes_on(nd).map(|s| s.rect.y0).collect();
        y0s.sort_unstable();
        y0s.dedup();
        assert!(y0s.len() >= 2);
        Ok(())
    }
}

//! Error type for module generation.

/// Errors from the module generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModgenError {
    /// A required layer is missing from the technology.
    Tech(String),
    /// A primitive shape function failed.
    Prim(String),
    /// A compaction step failed.
    Compact(String),
    /// A wiring step failed.
    Route(String),
    /// A parameter is out of range.
    BadParam {
        /// Parameter name.
        param: &'static str,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ModgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModgenError::Tech(m) => write!(f, "technology: {m}"),
            ModgenError::Prim(m) => write!(f, "primitive: {m}"),
            ModgenError::Compact(m) => write!(f, "compaction: {m}"),
            ModgenError::Route(m) => write!(f, "routing: {m}"),
            ModgenError::BadParam { param, message } => {
                write!(f, "parameter `{param}`: {message}")
            }
        }
    }
}

impl std::error::Error for ModgenError {}

impl From<amgen_tech::TechError> for ModgenError {
    fn from(e: amgen_tech::TechError) -> Self {
        ModgenError::Tech(e.to_string())
    }
}

impl From<amgen_prim::PrimError> for ModgenError {
    fn from(e: amgen_prim::PrimError) -> Self {
        ModgenError::Prim(e.to_string())
    }
}

impl From<amgen_compact::CompactError> for ModgenError {
    fn from(e: amgen_compact::CompactError) -> Self {
        ModgenError::Compact(e.to_string())
    }
}

impl From<amgen_route::RouteError> for ModgenError {
    fn from(e: amgen_route::RouteError) -> Self {
        ModgenError::Route(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_preserves_messages() {
        let e: ModgenError = amgen_tech::TechError::UnknownLayer("x".into()).into();
        assert!(e.to_string().contains('x'));
        let e = ModgenError::BadParam {
            param: "fingers",
            message: "must be > 0".into(),
        };
        assert!(e.to_string().contains("fingers"));
    }
}

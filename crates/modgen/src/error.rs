//! Error type for module generation.

use amgen_core::{GenError, Stage};

/// Errors from the module generators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModgenError {
    /// Budget exhaustion, cancellation or an injected fault, from the
    /// shared generation context. Typed robustness errors raised by the
    /// lower stages (primitives, compaction, routing) pass through here
    /// unstringified so callers can still match on the kind.
    Gen(GenError),
    /// A required layer is missing from the technology.
    Tech(String),
    /// A primitive shape function failed.
    Prim(String),
    /// A compaction step failed.
    Compact(String),
    /// A wiring step failed.
    Route(String),
    /// A parameter is out of range.
    BadParam {
        /// Parameter name.
        param: &'static str,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for ModgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModgenError::Gen(e) => write!(f, "{e}"),
            ModgenError::Tech(m) => write!(f, "technology: {m}"),
            ModgenError::Prim(m) => write!(f, "primitive: {m}"),
            ModgenError::Compact(m) => write!(f, "compaction: {m}"),
            ModgenError::Route(m) => write!(f, "routing: {m}"),
            ModgenError::BadParam { param, message } => {
                write!(f, "parameter `{param}`: {message}")
            }
        }
    }
}

impl std::error::Error for ModgenError {}

impl From<GenError> for ModgenError {
    fn from(e: GenError) -> Self {
        ModgenError::Gen(e)
    }
}

impl From<ModgenError> for GenError {
    /// Unifies module-generation failures under the `amgen-core` error:
    /// typed robustness errors pass through, stage-specific ones are
    /// wrapped with [`Stage::Modgen`] context.
    fn from(e: ModgenError) -> GenError {
        match e {
            ModgenError::Gen(g) => g,
            other => GenError::stage_msg(Stage::Modgen, other.to_string()),
        }
    }
}

impl From<amgen_tech::TechError> for ModgenError {
    fn from(e: amgen_tech::TechError) -> Self {
        ModgenError::Tech(e.to_string())
    }
}

impl From<amgen_prim::PrimError> for ModgenError {
    fn from(e: amgen_prim::PrimError) -> Self {
        match e {
            amgen_prim::PrimError::Gen(g) => ModgenError::Gen(g),
            other => ModgenError::Prim(other.to_string()),
        }
    }
}

impl From<amgen_compact::CompactError> for ModgenError {
    fn from(e: amgen_compact::CompactError) -> Self {
        match e {
            amgen_compact::CompactError::Gen(g) => ModgenError::Gen(g),
            other => ModgenError::Compact(other.to_string()),
        }
    }
}

impl From<amgen_route::RouteError> for ModgenError {
    fn from(e: amgen_route::RouteError) -> Self {
        match e {
            amgen_route::RouteError::Gen(g) => ModgenError::Gen(g),
            other => ModgenError::Route(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_core::Resource;

    #[test]
    fn conversion_preserves_messages() {
        let e: ModgenError = amgen_tech::TechError::UnknownLayer("x".into()).into();
        assert!(e.to_string().contains('x'));
        let e = ModgenError::BadParam {
            param: "fingers",
            message: "must be > 0".into(),
        };
        assert!(e.to_string().contains("fingers"));
    }

    #[test]
    fn typed_robustness_errors_survive_nesting() {
        let g = GenError::budget(Stage::Prim, Resource::DslFuel);
        let p = amgen_prim::PrimError::Gen(g.clone());
        let m: ModgenError = p.into();
        assert!(matches!(&m, ModgenError::Gen(e) if e.is_budget_exhausted()));
        let back: GenError = m.into();
        assert_eq!(back, g);
    }
}

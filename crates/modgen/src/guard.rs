//! Substrate-contact guard rings.
//!
//! The paper's complex modules include *"substrate or well contacts ...
//! into the modules"*; the latch-up rule of Fig. 1 then checks that these
//! contacts cover every MOS active area. [`guard_ring`] wraps a module in
//! a contacted diffusion ring whose shapes carry
//! [`ShapeRole::SubstrateContact`] so the check can find them.

use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Port, Shape, ShapeRole};
use amgen_geom::{Coord, Rect};
use amgen_prim::Primitives;

use crate::error::ModgenError;

/// Parameters of a guard ring.
#[derive(Debug, Clone)]
pub struct GuardRingParams {
    /// Net of the ring (typically the substrate/ground node).
    pub net: String,
    /// Ring conductor width; `None` selects the minimum that still holds
    /// a contact row.
    pub width: Option<Coord>,
}

impl Default for GuardRingParams {
    fn default() -> GuardRingParams {
        GuardRingParams {
            net: "sub".into(),
            width: None,
        }
    }
}

/// Surrounds `core` with a contacted p-diffusion guard ring and returns
/// the combined module. The ring's diffusion carries
/// [`ShapeRole::SubstrateContact`] — it provides latch-up coverage.
pub fn guard_ring(
    tech: impl IntoGenCtx,
    core: &LayoutObject,
    params: &GuardRingParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "guard_ring", |k| {
        k.push(amgen_core::CanonParam::object(core));
        k.push(params.net.clone());
        k.push(params.width);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        guard_ring_uncached(tech, core, params)
    })
}

fn guard_ring_uncached(
    tech: &GenCtx,
    core: &LayoutObject,
    params: &GuardRingParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "guard_ring");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "guard_ring")?;
    let prim = Primitives::new(tech);
    let pdiff = tech.pdiff()?;
    let m1 = tech.metal1()?;
    let ct = tech.contact()?;

    let mut obj = core.clone();
    let net = obj.net(&params.net);

    // Ring width: room for one contact with both enclosures.
    let cut = tech.cut_size(ct)?;
    let min_w = (cut + 2 * tech.enclosure(pdiff, ct).max(tech.enclosure(m1, ct)))
        .max(tech.min_width(pdiff))
        .max(tech.min_width(m1));
    let w = params.width.unwrap_or(min_w).max(min_w);

    // Clearance: every layer in the core must respect both the diffusion
    // ring and its metal.
    let clearance = obj
        .shapes()
        .iter()
        .map(|s| {
            tech.clearance(pdiff, s.layer)
                .max(tech.clearance(m1, s.layer))
        })
        .max()
        .unwrap_or(0);

    let ring = prim.ring(&mut obj, pdiff, Some(w), Some(clearance))?;
    let mut ring_rects = Vec::with_capacity(4);
    for &i in &ring {
        let s = &mut obj.shapes_mut()[i];
        s.net = Some(net);
        s.role = ShapeRole::SubstrateContact;
        ring_rects.push(s.rect);
    }
    // Metal ring on the same rectangles, plus contact rows inside.
    let enc = tech.enclosure(pdiff, ct).max(tech.enclosure(m1, ct));
    for r in ring_rects {
        obj.push(Shape::new(m1, r).with_net(net));
        let frame = r.inflated(-enc);
        for cut_rect in prim.array_in_frame(frame, ct)? {
            obj.push(Shape::new(ct, cut_rect).with_net(net));
        }
    }
    let bbox = obj.bbox();
    obj.push_port(Port {
        name: params.net.clone(),
        layer: m1,
        rect: Rect::new(bbox.x0, bbox.y0, bbox.x1, bbox.y0 + w),
        net: Some(net),
    });
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::{latchup, Drc};
    use amgen_geom::um;
    use amgen_tech::Tech;

    use crate::mos::{mos_transistor, MosParams, MosType};

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn ring_makes_a_transistor_latchup_clean() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(10)))?;
        // Without a ring the active area is uncovered.
        assert!(!latchup::check_latchup(&t, &m).is_empty());
        let ringed = guard_ring(&t, &m, &GuardRingParams::default())?;
        assert!(latchup::check_latchup(&t, &ringed).is_empty());
        Ok(())
    }

    #[test]
    fn ring_has_contacts_on_all_four_sides() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(8)))?;
        let ringed = guard_ring(&t, &m, &GuardRingParams::default())?;
        let ct = t.layer("contact")?;
        let core_bbox = m.bbox();
        let ring_cuts: Vec<_> = ringed
            .shapes_on(ct)
            .filter(|s| !core_bbox.contains_rect(&s.rect))
            .collect();
        assert!(ring_cuts.iter().any(|s| s.rect.y1 <= core_bbox.y0), "south");
        assert!(ring_cuts.iter().any(|s| s.rect.y0 >= core_bbox.y1), "north");
        assert!(ring_cuts.iter().any(|s| s.rect.x1 <= core_bbox.x0), "west");
        assert!(ring_cuts.iter().any(|s| s.rect.x0 >= core_bbox.x1), "east");
        Ok(())
    }

    #[test]
    fn ring_is_drc_clean_around_a_device() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(8)))?;
        let ringed = guard_ring(&t, &m, &GuardRingParams::default())?;
        let v = Drc::new(&t).check_spacing(&ringed);
        assert!(v.is_empty(), "{v:?}");
        let v = Drc::new(&t).check_enclosures(&ringed);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }

    #[test]
    fn ring_port_and_net() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N))?;
        let ringed = guard_ring(
            &t,
            &m,
            &GuardRingParams {
                net: "gnd".into(),
                width: None,
            },
        )?;
        assert!(ringed.port("gnd").is_some());
        Ok(())
    }

    #[test]
    fn explicit_width_is_respected_as_minimum() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N))?;
        let thin = guard_ring(&t, &m, &GuardRingParams::default())?;
        let thick = guard_ring(
            &t,
            &m,
            &GuardRingParams {
                net: "sub".into(),
                width: Some(um(5)),
            },
        )?;
        assert!(thick.bbox().width() > thin.bbox().width());
        Ok(())
    }
}

//! Stacked transistors — one of the module types the paper names
//! explicitly: *"Only a few different module types (e.g. different
//! current mirrors, differential pairs, stacked transistors, diode
//! connected transistors) are required in analog circuits."*
//!
//! A stack is `n` gates in series over one diffusion strip with **no**
//! contacts between them (the internal source/drain nodes are floating
//! silicon): electrically a single transistor of length `n · L`, used
//! for very long devices and cascaded switches. Contact rows sit only at
//! the two ends.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::LayoutObject;
use amgen_geom::{Coord, Dir};
use amgen_prim::Primitives;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;
use crate::mos::MosType;

/// Parameters of a transistor stack.
#[derive(Debug, Clone)]
pub struct StackedParams {
    /// Polarity.
    pub mos: MosType,
    /// Number of series gates (≥ 1).
    pub gates: usize,
    /// Channel width; `None` selects the minimum.
    pub w: Option<Coord>,
    /// Channel length per gate; `None` selects the minimum.
    pub l: Option<Coord>,
    /// Tie all gates together with a strap (single long transistor); when
    /// false each gate keeps its own net `g1..gn` (cascaded switches).
    pub common_gate: bool,
}

impl StackedParams {
    /// A common-gate stack of `gates` devices.
    pub fn new(mos: MosType, gates: usize) -> StackedParams {
        StackedParams {
            mos,
            gates,
            w: None,
            l: None,
            common_gate: true,
        }
    }

    /// Sets the channel width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the per-gate channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }

    /// Gives every gate its own net (`g1` … `gn`).
    #[must_use]
    pub fn with_separate_gates(mut self) -> Self {
        self.common_gate = false;
        self
    }
}

/// Generates the stack: `S g g … g D` with contact rows at the ends only.
/// Ports: `s`, `d`, and `g` (common) or `g1..gn`.
pub fn stacked_transistor(
    tech: impl IntoGenCtx,
    params: &StackedParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "stacked_transistor", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.gates);
        k.push(params.w);
        k.push(params.l);
        k.push(params.common_gate);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        stacked_transistor_uncached(tech, params)
    })
}

fn stacked_transistor_uncached(
    tech: &GenCtx,
    params: &StackedParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "stacked_transistor");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "stacked_transistor")?;
    if params.gates == 0 {
        return Err(ModgenError::BadParam {
            param: "gates",
            message: "must be at least 1".into(),
        });
    }
    let c = Compactor::new(tech);
    let prim = Primitives::new(tech);
    let poly = tech.poly()?;
    let diff = params.mos.diff(tech)?;
    let w = params
        .w
        .unwrap_or_else(|| tech.min_width(diff))
        .max(tech.min_width(diff));

    let mut main = LayoutObject::new("stacked");
    let opts = CompactOptions::new().ignoring(diff);

    let s_row = contact_row(tech, diff, &ContactRowParams::new().with_l(w).with_net("s"))?;
    c.compact(&mut main, &s_row, Dir::West, &opts)?;
    for i in 0..params.gates {
        let mut g = LayoutObject::new("gate");
        let (gi, _) = prim.two_rects(&mut g, poly, diff, Some(w), params.l)?;
        let name = if params.common_gate {
            "g".to_string()
        } else {
            format!("g{}", i + 1)
        };
        let id = g.net(&name);
        g.shapes_mut()[gi].net = Some(id);
        c.compact(&mut main, &g, Dir::East, &opts)?;
    }
    let d_row = contact_row(tech, diff, &ContactRowParams::new().with_l(w).with_net("d"))?;
    c.compact(&mut main, &d_row, Dir::East, &opts)?;

    if params.common_gate {
        // Strap across all gate tops (as in the inter-digitated device).
        use amgen_db::Shape;
        use amgen_geom::Rect;
        let strap_w = tech.min_width(poly);
        let span = main.bbox_on(poly);
        let g_id = main.net("g");
        main.push(
            Shape::new(
                poly,
                Rect::new(span.x0, span.y1, span.x1, span.y1 + strap_w),
            )
            .with_net(g_id),
        );
        let mut pc = contact_row(tech, poly, &ContactRowParams::new().with_net("g"))?;
        let pb = pc.bbox();
        pc.translate(amgen_geom::Vector::new(
            main.bbox().center().x - pb.center().x,
            span.y1 + strap_w - pb.y0,
        ));
        main.absorb(&pc, amgen_geom::Vector::ZERO);
    }
    match params.mos {
        MosType::N => {
            let nplus = tech.nplus()?;
            prim.around(&mut main, nplus, 0)?;
        }
        MosType::P => {
            let pplus = tech.pplus()?;
            prim.around(&mut main, pplus, 0)?;
            let nwell = tech.nwell()?;
            prim.around(&mut main, nwell, 0)?;
        }
    }
    Ok(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn stack_has_end_contacts_only() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = stacked_transistor(&t, &StackedParams::new(MosType::N, 4).with_w(um(6)))?;
        // Exactly 3 contact-row groups: s row, d row, gate contact.
        assert_eq!(m.groups().len(), 3);
        let poly = t.layer("poly")?;
        let gates = m
            .shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .count();
        assert_eq!(gates, 4);
        Ok(())
    }

    #[test]
    fn source_and_drain_are_isolated_through_the_stack() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = stacked_transistor(&t, &StackedParams::new(MosType::N, 3).with_w(um(6)))?;
        // Gates split the diffusion: s and d never share a component.
        for n in Extractor::new(&t).connectivity(&m) {
            let has_s = n.declared.iter().any(|x| x == "s");
            let has_d = n.declared.iter().any(|x| x == "d");
            assert!(!(has_s && has_d), "{:?}", n.declared);
        }
        Ok(())
    }

    #[test]
    fn common_gate_is_one_node() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = stacked_transistor(&t, &StackedParams::new(MosType::N, 3).with_w(um(6)))?;
        let g_comps = Extractor::new(&t)
            .connectivity(&m)
            .into_iter()
            .filter(|n| n.declared.iter().any(|x| x == "g"))
            .count();
        assert_eq!(g_comps, 1);
        Ok(())
    }

    #[test]
    fn separate_gates_stay_separate() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = stacked_transistor(
            &t,
            &StackedParams::new(MosType::N, 3)
                .with_w(um(6))
                .with_separate_gates(),
        )?;
        for n in Extractor::new(&t).connectivity(&m) {
            let gates: Vec<_> = n.declared.iter().filter(|x| x.starts_with('g')).collect();
            assert!(gates.len() <= 1, "{:?}", n.declared);
        }
        Ok(())
    }

    #[test]
    fn stack_is_shorter_than_contacted_fingers() -> Result<(), Box<dyn std::error::Error>> {
        // The point of stacking: no intermediate rows.
        let t = tech();
        let stack = stacked_transistor(&t, &StackedParams::new(MosType::N, 4).with_w(um(6)))?;
        let fingers = crate::interdigit::interdigitated(
            &t,
            &crate::interdigit::InterdigitParams::new(MosType::N, 4).with_w(um(6)),
        )?;
        assert!(stack.bbox().width() < fingers.bbox().width());
        Ok(())
    }

    #[test]
    fn spacing_clean() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = stacked_transistor(&t, &StackedParams::new(MosType::P, 5).with_w(um(8)))?;
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }
}

//! The symmetric current mirror (block B of the paper's §3).
//!
//! *"Only moderate matching requirements has been specified for the
//! current mirror of block B. Therefore a symmetrical layout module is
//! chosen with the diode transistor in the middle."*
//!
//! Row plan for `ratio = n` (output/input current ratio n:1 built from
//! unit fingers): `S out S ... in ... S out S` — the diode-connected
//! device sits in the middle, `n` output fingers flank it on each side.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Port, Shape};
use amgen_geom::{Coord, Dir, Point, Rect};
use amgen_prim::Primitives;
use amgen_route::Router;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;
use crate::mos::MosType;

/// Parameters of the current mirror.
#[derive(Debug, Clone)]
pub struct MirrorParams {
    /// Polarity.
    pub mos: MosType,
    /// Output fingers on **each** side of the diode (mirror ratio =
    /// `2 * side_fingers : 1` for equal finger sizes).
    pub side_fingers: usize,
    /// Channel width per finger; `None` selects 6 µm.
    pub w: Option<Coord>,
    /// Channel length; `None` selects the minimum.
    pub l: Option<Coord>,
}

impl MirrorParams {
    /// One output finger per side (2:1 mirror).
    pub fn new(mos: MosType) -> MirrorParams {
        MirrorParams {
            mos,
            side_fingers: 1,
            w: None,
            l: None,
        }
    }

    /// Sets the per-finger width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }

    /// Sets the output fingers per side.
    #[must_use]
    pub fn with_side_fingers(mut self, n: usize) -> Self {
        self.side_fingers = n;
        self
    }
}

/// Generates the symmetric current mirror. All gates share the `in` net
/// (the diode connection ties the middle drain to the gates). Ports:
/// `in`, `out`, `s`.
pub fn current_mirror(
    tech: impl IntoGenCtx,
    params: &MirrorParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "current_mirror", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.side_fingers);
        k.push(params.w);
        k.push(params.l);
    });
    tech.generate_cached(Stage::Modgen, key, || current_mirror_uncached(tech, params))
}

fn current_mirror_uncached(
    tech: &GenCtx,
    params: &MirrorParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "current_mirror");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "current_mirror")?;
    if params.side_fingers == 0 {
        return Err(ModgenError::BadParam {
            param: "side_fingers",
            message: "must be at least 1".into(),
        });
    }
    let c = Compactor::new(tech);
    let prim = Primitives::new(tech);
    let router = Router::new(tech);
    let poly = tech.poly()?;
    let diff = params.mos.diff(tech)?;
    let m1 = tech.metal1()?;
    let m2 = tech.metal2()?;
    let via = tech.via1()?;
    let w = params.w.unwrap_or(6_000).max(4_000);

    let mut main = LayoutObject::new("current_mirror");
    let opts = CompactOptions::new().ignoring(diff);

    // Gate finger (all gates on net "in": the mirror's input node).
    let gate = |_tech: &GenCtx| -> Result<LayoutObject, ModgenError> {
        let mut obj = LayoutObject::new("gate");
        let (gi, _) = prim.two_rects(&mut obj, poly, diff, Some(w), params.l)?;
        let id = obj.net("in");
        obj.shapes_mut()[gi].net = Some(id);
        Ok(obj)
    };
    let row = |tech: &GenCtx, net: &str| -> Result<LayoutObject, ModgenError> {
        contact_row(tech, diff, &ContactRowParams::new().with_l(w).with_net(net))
    };

    // Drain-sharing finger pairs separated by source rows:
    // `S [g OUT g] S ... S [g IN g] S ... S [g OUT g] S`
    // with `side_fingers` out-pairs on each side of the diode pair.
    let n = params.side_fingers;
    let mut drain_plan: Vec<&str> = Vec::new();
    drain_plan.extend(std::iter::repeat_n("out", n));
    drain_plan.push("in");
    drain_plan.extend(std::iter::repeat_n("out", n));
    let mut row_centers: Vec<(String, Coord)> = Vec::new();
    let seed = row(tech, "s")?;
    c.compact(&mut main, &seed, Dir::West, &opts)?;
    row_centers.push(("s".to_string(), main.bbox_on(m1).center().x));
    for drain_net in drain_plan {
        for half in 0..2 {
            let g = gate(tech)?;
            c.compact(&mut main, &g, Dir::East, &opts)?;
            let net = if half == 0 { drain_net } else { "s" };
            let r = row(tech, net)?;
            let x0 = main.bbox().x1;
            c.compact(&mut main, &r, Dir::East, &opts)?;
            let x1 = main.bbox().x1;
            row_centers.push((net.to_string(), (x0 + x1) / 2));
        }
    }

    // Gate strap + contact row (net "in") on top.
    let strap_w = tech.min_width(poly);
    let gate_top = main.bbox_on(poly).y1;
    let span = main.bbox_on(poly);
    let in_id = main.net("in");
    let strap = Rect::new(span.x0, gate_top, span.x1, gate_top + strap_w);
    main.push(Shape::new(poly, strap).with_net(in_id));
    let mut pc = contact_row(tech, poly, &ContactRowParams::new().with_net("in"))?;
    let pb = pc.bbox();
    pc.translate(amgen_geom::Vector::new(
        main.bbox().center().x - pb.center().x,
        strap.y1 - pb.y0,
    ));
    let pc_rect = pc.bbox_on(m1);
    main.absorb(&pc, amgen_geom::Vector::ZERO);

    // Buses: source below (risers drop), output above (risers rise); the
    // "in" drain row is tied to the gate contact with a metal1 riser (the
    // diode connection).
    let bus_w = tech.min_width(m2).max(2_000);
    let bspan = main.bbox();
    let s_bus = Rect::new(
        bspan.x0,
        bspan.y0 - 2_000 - bus_w,
        bspan.x1,
        bspan.y0 - 2_000,
    );
    let out_bus = Rect::new(
        bspan.x0,
        bspan.y1 + 2_000,
        bspan.x1,
        bspan.y1 + 2_000 + bus_w,
    );
    let s_id = main.net("s");
    let out_id = main.net("out");
    main.push(Shape::new(m2, s_bus).with_net(s_id));
    main.push(Shape::new(m2, out_bus).with_net(out_id));
    let wire_w = tech.min_width(m2);
    for (net, x) in &row_centers {
        if net == "in" {
            continue;
        }
        let id = main.net(net);
        router.via_stack(&mut main, via, m1, m2, Point::new(*x, w / 2), Some(id))?;
        let riser = if net == "s" {
            Rect::new(x - wire_w / 2, s_bus.y0, x - wire_w / 2 + wire_w, w / 2)
        } else {
            Rect::new(x - wire_w / 2, w / 2, x - wire_w / 2 + wire_w, out_bus.y1)
        };
        main.push(Shape::new(m2, riser).with_net(id));
    }
    // Diode connection: a metal1 riser from the middle drain row up to
    // the gate contact row, plus a horizontal jog when their x positions
    // differ.
    let (_, in_x) = row_centers.iter().find(|(n, _)| n == "in").ok_or_else(|| {
        ModgenError::Route("current_mirror: middle `in` drain row missing".into())
    })?;
    let m1_w = tech.min_width(m1);
    let diode = Rect::new(in_x - m1_w / 2, w / 2, in_x - m1_w / 2 + m1_w, pc_rect.y1);
    main.push(Shape::new(m1, diode).with_net(in_id));
    if !diode.overlaps(&pc_rect) {
        let cy = pc_rect.center().y;
        let jog = Rect::new(
            diode.x0.min(pc_rect.x0),
            cy - m1_w / 2,
            diode.x1.max(pc_rect.x1),
            cy - m1_w / 2 + m1_w,
        );
        main.push(Shape::new(m1, jog).with_net(in_id));
    }

    main.push_port(Port {
        name: "s".into(),
        layer: m2,
        rect: s_bus,
        net: Some(s_id),
    });
    main.push_port(Port {
        name: "out".into(),
        layer: m2,
        rect: out_bus,
        net: Some(out_id),
    });

    match params.mos {
        MosType::N => {
            let nplus = tech.nplus()?;
            prim.around(&mut main, nplus, 0)?;
        }
        MosType::P => {
            let pplus = tech.pplus()?;
            prim.around(&mut main, pplus, 0)?;
            let nwell = tech.nwell()?;
            prim.around(&mut main, nwell, 0)?;
        }
    }
    Ok(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    fn mirror(t: &Tech) -> LayoutObject {
        current_mirror(
            t,
            &MirrorParams::new(MosType::N).with_w(um(6)).with_l(um(1)),
        )
        .unwrap()
    }

    #[test]
    fn diode_sits_in_the_middle() {
        let t = tech();
        let m = mirror(&t);
        // The "in" drain row is within one row pitch of the module centre.
        let nets = Extractor::new(&t).connectivity(&m);
        let in_comp = nets
            .iter()
            .find(|n| n.declared.iter().any(|x| x == "in"))
            .expect("in net extracted");
        let xs: Vec<i64> = in_comp
            .shapes
            .iter()
            .map(|&i| m.shapes()[i].rect.center().x)
            .collect();
        let cx = m.bbox().center().x;
        assert!(
            xs.iter().any(|&x| (x - cx).abs() < um(6)),
            "diode geometry near the centre"
        );
    }

    #[test]
    fn diode_connection_ties_gate_to_middle_drain() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mirror(&t);
        // The extracted "in" component contains both poly (gates) and
        // diffusion (the middle drain row) shapes.
        let nets = Extractor::new(&t).connectivity(&m);
        let in_comp = nets
            .iter()
            .find(|n| n.declared.iter().any(|x| x == "in"))
            .ok_or("no net `in`")?;
        let poly = t.layer("poly")?;
        let diff = t.layer("ndiff")?;
        let has_poly = in_comp.shapes.iter().any(|&i| m.shapes()[i].layer == poly);
        let has_diff = in_comp.shapes.iter().any(|&i| m.shapes()[i].layer == diff);
        assert!(has_poly && has_diff, "diode-connected");
        Ok(())
    }

    #[test]
    fn out_and_s_are_separate_nets() {
        let t = tech();
        let m = mirror(&t);
        for n in Extractor::new(&t).connectivity(&m) {
            let has_out = n.declared.iter().any(|x| x == "out");
            let has_s = n.declared.iter().any(|x| x == "s");
            let has_in = n.declared.iter().any(|x| x == "in");
            assert!(!(has_out && has_s), "{:?}", n.declared);
            assert!(!(has_out && has_in), "{:?}", n.declared);
        }
    }

    #[test]
    fn layout_is_left_right_symmetric_in_finger_count() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mirror(&t);
        let poly = t.layer("poly")?;
        let cx = m.bbox().center().x;
        let stripes: Vec<i64> = m
            .shapes_on(poly)
            .filter(|s| s.rect.height() > 3 * s.rect.width())
            .map(|s| s.rect.center().x)
            .collect();
        let left = stripes.iter().filter(|&&x| x < cx).count();
        let right = stripes.iter().filter(|&&x| x > cx).count();
        assert_eq!(left, right, "equal fingers on both sides of the diode");
        Ok(())
    }

    #[test]
    fn spacing_clean() {
        let t = tech();
        let m = mirror(&t);
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn zero_side_fingers_rejected() {
        assert!(matches!(
            current_mirror(&tech(), &MirrorParams::new(MosType::N).with_side_fingers(0)),
            Err(ModgenError::BadParam { .. })
        ));
    }

    #[test]
    fn bigger_ratio_builds_more_fingers() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let a = mirror(&t);
        let b = current_mirror(
            &t,
            &MirrorParams::new(MosType::N)
                .with_w(um(6))
                .with_l(um(1))
                .with_side_fingers(2),
        )?;
        assert!(b.bbox().width() > a.bbox().width());
        Ok(())
    }
}

//! The MOS transistor module — the `Trans` entity of the paper's Fig. 7.
//!
//! ```text
//! ENT Trans(<W>, <L>)
//!   TWORECTS("poly", "pdiff", W, L)
//!   polycon = ContactRow(layer = "poly", L = L)
//!   diffcon = ContactRow(layer = "pdiff", W = W)
//!   compact(polycon, SOUTH, "poly")   // step 1
//!   compact(diffcon, SOUTH, "pdiff")  // step 2
//! ```
//!
//! Here the transistor is built with a vertical gate stripe (channel
//! width `W` along y), the gate contact row attached `SOUTH`, and the
//! source/drain contact rows attached `WEST`/`EAST` so they merge into the
//! diffusion. The poly contact row is created with **variable edges** —
//! the feature the paper highlights in the magnified part of Fig. 6b:
//! *"the metal-edges of the poly-contacts were moved so that the
//! diffusion-contacts could be placed closer to the transistors"*.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::LayoutObject;
use amgen_geom::{Coord, Dir};
use amgen_prim::Primitives;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosType {
    /// n-channel: `ndiff` with an `nplus` implant.
    N,
    /// p-channel: `pdiff` in an `nwell` with a `pplus` implant.
    P,
}

impl MosType {
    /// The diffusion layer name for this polarity.
    pub fn diff_layer(self) -> &'static str {
        match self {
            MosType::N => "ndiff",
            MosType::P => "pdiff",
        }
    }

    /// The interned diffusion layer for this polarity — no string lookup.
    pub fn diff(
        self,
        rules: &amgen_tech::RuleSet,
    ) -> Result<amgen_tech::Layer, amgen_tech::TechError> {
        match self {
            MosType::N => rules.ndiff(),
            MosType::P => rules.pdiff(),
        }
    }
}

/// Parameters of a single MOS transistor module.
#[derive(Debug, Clone)]
pub struct MosParams {
    /// Polarity.
    pub mos: MosType,
    /// Channel width (y); `None` selects the minimum device.
    pub w: Option<Coord>,
    /// Channel length (x); `None` selects the minimum device.
    pub l: Option<Coord>,
    /// Gate net name (port name).
    pub g_net: String,
    /// Source net name.
    pub s_net: String,
    /// Drain net name.
    pub d_net: String,
    /// Attach a gate contact row (off for array fingers that share a
    /// strap).
    pub gate_contact: bool,
    /// Draw the implant (and, for PMOS, the n-well).
    pub implants: bool,
}

impl MosParams {
    /// Default-named nets (`g`/`s`/`d`), gate contact and implants on.
    pub fn new(mos: MosType) -> MosParams {
        MosParams {
            mos,
            w: None,
            l: None,
            g_net: "g".into(),
            s_net: "s".into(),
            d_net: "d".into(),
            gate_contact: true,
            implants: true,
        }
    }

    /// Sets the channel width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }

    /// Renames the three terminals.
    #[must_use]
    pub fn with_nets(mut self, g: &str, s: &str, d: &str) -> Self {
        self.g_net = g.into();
        self.s_net = s.into();
        self.d_net = d.into();
        self
    }

    /// Disables the gate contact row.
    #[must_use]
    pub fn without_gate_contact(mut self) -> Self {
        self.gate_contact = false;
        self
    }

    /// Disables implant/well decoration.
    #[must_use]
    pub fn without_implants(mut self) -> Self {
        self.implants = false;
        self
    }
}

/// Generates a contacted MOS transistor: gate crossing, gate contact row
/// (south), and source/drain contact rows merged into the diffusion
/// (west/east). Ports are named after the three net parameters.
pub fn mos_transistor(
    tech: impl IntoGenCtx,
    params: &MosParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "mos_transistor", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.w);
        k.push(params.l);
        k.push(params.g_net.clone());
        k.push(params.s_net.clone());
        k.push(params.d_net.clone());
        k.push(params.gate_contact);
        k.push(params.implants);
    });
    tech.generate_cached(Stage::Modgen, key, || mos_transistor_uncached(tech, params))
}

fn mos_transistor_uncached(tech: &GenCtx, params: &MosParams) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "mos_transistor");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "mos_transistor")?;
    let prim = Primitives::new(tech);
    let c = Compactor::new(tech);
    let poly = tech.poly()?;
    let diff = params.mos.diff(tech)?;

    // TWORECTS: the gate crossing.
    let mut core = LayoutObject::new("trans");
    let (gate_idx, _diff_idx) = prim.two_rects(&mut core, poly, diff, params.w, params.l)?;
    let g_id = core.net(&params.g_net);
    core.shapes_mut()[gate_idx].net = Some(g_id);
    let w_eff = core.shapes()[gate_idx].rect.height(); // incl. gate extension
    let _ = w_eff;

    let mut main = LayoutObject::with_capacity(
        format!(
            "mos_{}",
            match params.mos {
                MosType::N => "n",
                MosType::P => "p",
            }
        ),
        core.len() + 24,
    );
    c.compact(&mut main, &core, Dir::West, &CompactOptions::new())?;

    // Step 1: the gate contact row, attached south, poly irrelevant.
    if params.gate_contact {
        let polycon = contact_row(
            tech,
            poly,
            &ContactRowParams::new()
                .with_net(&params.g_net)
                .with_variable_edges(),
        )?;
        c.compact(
            &mut main,
            &polycon,
            Dir::South,
            &CompactOptions::new().ignoring(poly),
        )?;
    }

    // Steps 2a/2b: source west, drain east, diffusion irrelevant (rows
    // merge into the device diffusion).
    let w_actual = main.bbox_on(diff).height();
    let s_row = contact_row(
        tech,
        diff,
        &ContactRowParams::new()
            .with_l(w_actual)
            .with_net(&params.s_net),
    )?;
    c.compact(
        &mut main,
        &s_row,
        Dir::West,
        &CompactOptions::new().ignoring(diff),
    )?;
    let d_row = contact_row(
        tech,
        diff,
        &ContactRowParams::new()
            .with_l(w_actual)
            .with_net(&params.d_net),
    )?;
    c.compact(
        &mut main,
        &d_row,
        Dir::East,
        &CompactOptions::new().ignoring(diff),
    )?;

    // Decoration: implant, and n-well for PMOS.
    if params.implants {
        match params.mos {
            MosType::N => {
                let nplus = tech.nplus()?;
                prim.around(&mut main, nplus, 0)?;
            }
            MosType::P => {
                let pplus = tech.pplus()?;
                prim.around(&mut main, pplus, 0)?;
                let nwell = tech.nwell()?;
                prim.around(&mut main, nwell, 0)?;
            }
        }
    }
    Ok(main)
}

/// Generates a transistor *finger*: the gate crossing, an optional gate
/// contact row (south, variable edges), and **one** diffusion contact row
/// attached east — the paper's `Trans` entity verbatim (one `polycon`,
/// one `diffcon`). Chains of fingers compacted `WEST` share their rows,
/// which is how the differential pair of Fig. 6 gets *"two transistors,
/// three diffusion-contact-rows and two poly-contacts"*.
pub fn mos_finger(
    tech: impl IntoGenCtx,
    mos: MosType,
    w: Option<Coord>,
    l: Option<Coord>,
    g_net: &str,
    row_net: &str,
    gate_contact: bool,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    // The nets are pure relabelings of identical geometry: cache the
    // canonical (α-renamed) finger so a diff pair's two fingers (and a
    // centroid quad's four) share one entry. `g_net == row_net` would
    // merge the two potentials at build time, which α-renaming cannot
    // reproduce — that (shorted) corner case is keyed literally.
    if tech.cache_active() && g_net != row_net {
        let key = crate::cached::module_key(tech, "mos_finger", |k| {
            k.push(crate::cached::mos_code(mos));
            k.push(w);
            k.push(l);
            k.push(gate_contact);
        });
        let mut finger = tech.generate_cached(Stage::Modgen, key, || {
            mos_finger_uncached(
                tech,
                mos,
                w,
                l,
                crate::cached::ALPHA_A,
                crate::cached::ALPHA_B,
                gate_contact,
            )
        })?;
        finger.rename_label(crate::cached::ALPHA_A, g_net);
        finger.rename_label(crate::cached::ALPHA_B, row_net);
        return Ok(finger);
    }
    let key = crate::cached::module_key(tech, "mos_finger", |k| {
        k.push(crate::cached::mos_code(mos));
        k.push(w);
        k.push(l);
        k.push(g_net);
        k.push(row_net);
        k.push(gate_contact);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        mos_finger_uncached(tech, mos, w, l, g_net, row_net, gate_contact)
    })
}

fn mos_finger_uncached(
    tech: &GenCtx,
    mos: MosType,
    w: Option<Coord>,
    l: Option<Coord>,
    g_net: &str,
    row_net: &str,
    gate_contact: bool,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "mos_finger");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "mos_finger")?;
    let prim = Primitives::new(tech);
    let c = Compactor::new(tech);
    let poly = tech.poly()?;
    let diff = mos.diff(tech)?;

    let mut core = LayoutObject::new("finger");
    let (gate_idx, _) = prim.two_rects(&mut core, poly, diff, w, l)?;
    let g_id = core.net(g_net);
    core.shapes_mut()[gate_idx].net = Some(g_id);

    let mut main = LayoutObject::with_capacity("finger", core.len() + 16);
    c.compact(&mut main, &core, Dir::West, &CompactOptions::new())?;
    if gate_contact {
        let polycon = contact_row(
            tech,
            poly,
            &ContactRowParams::new()
                .with_net(g_net)
                .with_variable_edges(),
        )?;
        c.compact(
            &mut main,
            &polycon,
            Dir::South,
            &CompactOptions::new().ignoring(poly),
        )?;
    }
    let w_actual = main.bbox_on(diff).height();
    let row = contact_row(
        tech,
        diff,
        &ContactRowParams::new().with_l(w_actual).with_net(row_net),
    )?;
    c.compact(
        &mut main,
        &row,
        Dir::East,
        &CompactOptions::new().ignoring(diff),
    )?;
    Ok(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn nmos_is_drc_clean() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(10)).with_l(um(2)))?;
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
        let v = Drc::new(&t).check_widths(&m);
        assert!(v.is_empty(), "{v:?}");
        let v = Drc::new(&t).check_enclosures(&m);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }

    #[test]
    fn pmos_gets_well_and_implant() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::P).with_w(um(8)))?;
        let nwell = t.layer("nwell")?;
        let pdiff = t.layer("pdiff")?;
        let well = m.bbox_on(nwell);
        assert!(!well.is_empty());
        let enc = t.enclosure(nwell, pdiff);
        assert!(well.inflated(-enc).contains_rect(&m.bbox_on(pdiff)));
        Ok(())
    }

    #[test]
    fn terminals_are_three_distinct_nets() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(10)))?;
        let nets = Extractor::new(&t).connectivity(&m);
        // The gate net, source net and drain net are distinct components
        // (diffusion under the gate merges s and d geometrically only via
        // the channel region, which is one ndiff rect — so s/d/“channel”
        // form one component; declared conflicts must still be empty).
        let conflicts: Vec<_> = nets.iter().filter(|n| n.is_conflict()).collect();
        // The shared diffusion rectangle legitimately joins s and d (the
        // channel); every other component carries at most one name.
        assert!(conflicts.len() <= 1, "{conflicts:?}");
        assert!(m.port("g").is_some());
        assert!(m.port("s").is_some());
        assert!(m.port("d").is_some());
        Ok(())
    }

    #[test]
    fn source_drain_rows_merge_into_diffusion() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(10)).with_l(um(1)))?;
        let ndiff = t.layer("ndiff")?;
        // The diffusion shapes form one connected region spanning the rows
        // and the channel.
        let region: amgen_geom::Region = m.shapes_on(ndiff).map(|s| s.rect).collect();
        let mut merged = region.clone();
        merged.normalize();
        // All diffusion overlaps/abuts into one extent horizontally.
        let bbox = region.bbox();
        assert!(bbox.width() > um(5), "rows extend the diffusion");
        // No diffusion gap: covered area equals a single band? The rows
        // and channel may differ in height, so just check x-continuity by
        // sampling.
        let y_mid = bbox.y0 + bbox.height() / 2;
        let step = t.grid();
        let mut x = bbox.x0;
        while x < bbox.x1 {
            let probe = amgen_geom::Rect::new(x, y_mid, x + step, y_mid + step);
            assert!(region.intersects(&probe), "diffusion gap at x={x}");
            x += step;
        }
        Ok(())
    }

    #[test]
    fn gate_contact_can_be_omitted() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let with = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(6)))?;
        let without = mos_transistor(
            &t,
            &MosParams::new(MosType::N)
                .with_w(um(6))
                .without_gate_contact(),
        )?;
        assert!(without.len() < with.len());
        assert!(without.port("g").is_none());
        assert!(without.bbox().height() < with.bbox().height());
        Ok(())
    }

    #[test]
    fn custom_net_names_become_ports() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = mos_transistor(
            &t,
            &MosParams::new(MosType::N).with_nets("bias", "vss", "out"),
        )?;
        assert!(m.port("bias").is_some());
        assert!(m.port("vss").is_some());
        assert!(m.port("out").is_some());
        Ok(())
    }

    #[test]
    fn minimum_device_works_in_both_decks() -> Result<(), Box<dyn std::error::Error>> {
        for t in [Tech::bicmos_1u(), Tech::cmos_08()] {
            let m = mos_transistor(&t, &MosParams::new(MosType::N))?;
            let v = Drc::new(&t).check_spacing(&m);
            assert!(v.is_empty(), "{}: {v:?}", t.name());
        }
        Ok(())
    }

    #[test]
    fn wider_channel_grows_the_device() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let a = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(5)))?;
        let b = mos_transistor(&t, &MosParams::new(MosType::N).with_w(um(20)))?;
        assert!(b.bbox().height() > a.bbox().height());
        Ok(())
    }
}

//! The contact row module (Fig. 2/3 of the paper).
//!
//! The paper's three-line flagship example:
//!
//! ```text
//! ENT ContactRow(layer, <W>, <L>)
//!   INBOX(layer, W, L)
//!   INBOX("metal1")
//!   ARRAY("contact")
//! ```

use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Port, RebuildKind};
use amgen_geom::{Coord, Dir};
use amgen_prim::Primitives;
use amgen_tech::Layer;

use crate::error::ModgenError;

/// Parameters of a contact row.
#[derive(Debug, Clone, Default)]
pub struct ContactRowParams {
    /// Width (x extent); `None` selects the design-rule minimum (left
    /// variant of Fig. 3).
    pub w: Option<Coord>,
    /// Length (y extent); `None` selects the design-rule minimum.
    pub l: Option<Coord>,
    /// Potential for all geometry, and the port name.
    pub net: Option<String>,
    /// Marks the conductor edges as *variable* so the compactor may shrink
    /// the row (Fig. 5b).
    pub variable_edges: bool,
}

impl ContactRowParams {
    /// All defaults (both variants of Fig. 3 left).
    pub fn new() -> ContactRowParams {
        ContactRowParams::default()
    }

    /// Sets the width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }

    /// Sets the potential / port name.
    #[must_use]
    pub fn with_net(mut self, net: &str) -> Self {
        self.net = Some(net.to_string());
        self
    }

    /// Enables variable edges.
    #[must_use]
    pub fn with_variable_edges(mut self) -> Self {
        self.variable_edges = true;
        self
    }
}

/// Generates a contact row on `layer` (poly or a diffusion): the base
/// rectangle, a metal1 landing filling it, and the maximal equidistant
/// contact array — exactly the three calls of Fig. 2. The shapes form a
/// rebuildable group so the compactor can recalculate the array after
/// shrinking a variable edge.
///
/// # Example
/// ```
/// use amgen_modgen::{contact_row, ContactRowParams};
/// use amgen_tech::Tech;
/// use amgen_geom::um;
///
/// let tech = Tech::bicmos_1u();
/// let poly = tech.layer("poly").unwrap();
/// let row = contact_row(&tech, poly, &ContactRowParams::new().with_w(um(10))).unwrap();
/// assert!(row.port("c").is_some());
/// ```
pub fn contact_row(
    tech: impl IntoGenCtx,
    layer: Layer,
    params: &ContactRowParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    // The net is a pure relabeling: cache the canonical (α-renamed)
    // form so rows that differ only in their net share one entry.
    if let (true, Some(net)) = (tech.cache_active(), &params.net) {
        let key = crate::cached::module_key(tech, "contact_row", |k| {
            k.push(layer.index());
            k.push(params.w);
            k.push(params.l);
            k.push(true); // a (canonicalized) net is present
            k.push(params.variable_edges);
        });
        let canon = ContactRowParams {
            net: Some(crate::cached::ALPHA_A.to_string()),
            ..params.clone()
        };
        let mut row = tech.generate_cached(Stage::Modgen, key, || {
            contact_row_uncached(tech, layer, &canon)
        })?;
        row.rename_label(crate::cached::ALPHA_A, net);
        return Ok(row);
    }
    let key = crate::cached::module_key(tech, "contact_row", |k| {
        k.push(layer.index());
        k.push(params.w);
        k.push(params.l);
        k.push(params.net.clone());
        k.push(params.variable_edges);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        contact_row_uncached(tech, layer, params)
    })
}

fn contact_row_uncached(
    tech: &GenCtx,
    layer: Layer,
    params: &ContactRowParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "contact_row");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "contact_row")?;
    let prim = Primitives::new(tech);
    let metal1 = tech.metal1()?;
    let contact = tech.contact()?;
    let mut obj = LayoutObject::new(format!("contact_row:{}", tech.layer_name(layer)));
    let base = prim.inbox(&mut obj, layer, params.w, params.l)?;
    let metal = prim.inbox(&mut obj, metal1, None, None)?;
    let cuts = prim.array(&mut obj, contact)?;
    let mut members = vec![base, metal];
    members.extend(cuts.iter().copied());
    obj.add_group(
        "row",
        members,
        Some(RebuildKind::ContactArray { cut: contact }),
    );
    if let Some(name) = &params.net {
        let id = obj.net(name);
        for s in obj.shapes_mut() {
            s.net = Some(id);
        }
    }
    if params.variable_edges {
        for i in [base, metal] {
            let mut e = obj.shapes()[i].edges;
            for d in Dir::ALL {
                e = e.with_variable(d);
            }
            obj.shapes_mut()[i].edges = e;
        }
    }
    let port_rect = obj.shapes()[metal].rect;
    let port_net = obj.shapes()[metal].net;
    obj.push_port(Port {
        name: params.net.clone().unwrap_or_else(|| "c".to_string()),
        layer: metal1,
        rect: port_rect,
        net: port_net,
    });
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn fig3_left_both_params_omitted() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let poly = t.layer("poly")?;
        let row = contact_row(&t, poly, &ContactRowParams::new())?;
        let ct = t.layer("contact")?;
        assert_eq!(
            row.shapes_on(ct).count(),
            1,
            "minimal row holds one contact"
        );
        assert!(Drc::new(&t).check(&row).is_empty());
        Ok(())
    }

    #[test]
    fn fig3_middle_w_given_l_minimal() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let poly = t.layer("poly")?;
        let row = contact_row(&t, poly, &ContactRowParams::new().with_w(um(10)))?;
        let ct = t.layer("contact")?;
        let n = row.shapes_on(ct).count();
        assert!(n >= 4, "a 10 um row holds a row of contacts, got {n}");
        // One row only: all contacts share the y position.
        let ys: std::collections::HashSet<i64> = row.shapes_on(ct).map(|s| s.rect.y0).collect();
        assert_eq!(ys.len(), 1);
        assert!(Drc::new(&t).check(&row).is_empty());
        Ok(())
    }

    #[test]
    fn fig3_right_both_given() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let poly = t.layer("poly")?;
        let row = contact_row(
            &t,
            poly,
            &ContactRowParams::new().with_w(um(8)).with_l(um(6)),
        )?;
        let ct = t.layer("contact")?;
        // 2-D array: more than one x and more than one y position.
        let xs: std::collections::HashSet<i64> = row.shapes_on(ct).map(|s| s.rect.x0).collect();
        let ys: std::collections::HashSet<i64> = row.shapes_on(ct).map(|s| s.rect.y0).collect();
        assert!(xs.len() > 1 && ys.len() > 1);
        assert!(Drc::new(&t).check(&row).is_empty());
        Ok(())
    }

    #[test]
    fn row_is_one_electrical_net() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let pdiff = t.layer("pdiff")?;
        let row = contact_row(
            &t,
            pdiff,
            &ContactRowParams::new().with_w(um(12)).with_net("s"),
        )?;
        let nets = Extractor::new(&t).connectivity(&row);
        assert_eq!(nets.len(), 1);
        assert_eq!(nets[0].declared, vec!["s".to_string()]);
        Ok(())
    }

    #[test]
    fn port_carries_net_and_rect() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let poly = t.layer("poly")?;
        let row = contact_row(&t, poly, &ContactRowParams::new().with_net("g"))?;
        let p = row.port("g").ok_or("missing port g")?;
        assert_eq!(p.rect, row.bbox_on(t.layer("metal1")?));
        assert!(p.net.is_some());
        assert!(row.port("c").is_none(), "single port, named after the net");
        Ok(())
    }

    #[test]
    fn variable_edges_are_marked() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let poly = t.layer("poly")?;
        let row = contact_row(&t, poly, &ContactRowParams::new().with_variable_edges())?;
        let m1 = t.layer("metal1")?;
        let metal = row.shapes_on(m1).next().ok_or("no metal1 shape")?;
        for d in Dir::ALL {
            assert!(metal.edges.is_variable(d));
        }
        Ok(())
    }

    #[test]
    fn works_in_the_cmos_deck_too() -> Result<(), Box<dyn std::error::Error>> {
        let t = Tech::cmos_08();
        let ndiff = t.layer("ndiff")?;
        let row = contact_row(&t, ndiff, &ContactRowParams::new().with_w(um(10)))?;
        assert!(Drc::new(&t).check(&row).is_empty());
        let ct = t.layer("contact")?;
        assert!(
            row.shapes_on(ct).count() >= 5,
            "tighter rules fit more cuts"
        );
        Ok(())
    }

    #[test]
    fn group_is_rebuildable() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let poly = t.layer("poly")?;
        let row = contact_row(&t, poly, &ContactRowParams::new())?;
        assert_eq!(row.groups().len(), 1);
        assert!(matches!(
            row.groups()[0].rebuild,
            Some(RebuildKind::ContactArray { .. })
        ));
        Ok(())
    }
}

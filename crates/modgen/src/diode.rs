//! Diode-connected transistors — named in the paper's module-type list
//! alongside mirrors, pairs and stacks.
//!
//! A MOS transistor with its gate strapped to its drain: the two-terminal
//! device every bias chain needs. Built as a standard contacted
//! transistor plus one metal1 strap from the gate contact to the drain
//! row.

use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Coord, Rect};

use crate::error::ModgenError;
use crate::mos::{mos_transistor, MosParams, MosType};

/// Parameters of a diode-connected transistor.
#[derive(Debug, Clone)]
pub struct DiodeParams {
    /// Polarity.
    pub mos: MosType,
    /// Channel width; `None` selects the minimum.
    pub w: Option<Coord>,
    /// Channel length; `None` selects the minimum.
    pub l: Option<Coord>,
}

impl DiodeParams {
    /// A minimum diode of the given polarity.
    pub fn new(mos: MosType) -> DiodeParams {
        DiodeParams {
            mos,
            w: None,
            l: None,
        }
    }

    /// Sets the channel width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }
}

/// Generates the diode-connected transistor. The anode (gate + drain) is
/// net `a`, the source is net `s`. Ports: `a`, `s`.
pub fn diode_transistor(
    tech: impl IntoGenCtx,
    params: &DiodeParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "diode_transistor", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.w);
        k.push(params.l);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        diode_transistor_uncached(tech, params)
    })
}

fn diode_transistor_uncached(
    tech: &GenCtx,
    params: &DiodeParams,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "diode_transistor");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "diode_transistor")?;
    let mut p = MosParams::new(params.mos).with_nets("a", "s", "a");
    p.w = params.w;
    p.l = params.l;
    let mut m = mos_transistor(tech, &p)?;
    // Strap the gate contact row to the drain row: both carry net "a".
    // The gate contact sits south of the gate, the drain row east — an
    // L on metal1 joins them.
    let m1 = tech.metal1()?;
    let a = m
        .find_net("a")
        .ok_or_else(|| ModgenError::Route("net `a` missing".into()))?;
    // Gate contact: the metal1 "a" geometry below y = 0; drain row: the
    // tall "a" column on the east side.
    let mut gate_pad: Option<Rect> = None;
    let mut drain_col: Option<Rect> = None;
    for s in m.shapes() {
        if s.layer != m1 || s.net != Some(a) {
            continue;
        }
        if s.rect.y1 <= 0 {
            gate_pad = Some(gate_pad.map_or(s.rect, |g| g.union_bbox(&s.rect)));
        } else if s.rect.height() > s.rect.width() {
            drain_col = Some(drain_col.map_or(s.rect, |d| d.union_bbox(&s.rect)));
        }
    }
    let (gate_pad, drain_col) = match (gate_pad, drain_col) {
        (Some(g), Some(d)) => (g, d),
        _ => return Err(ModgenError::Route("diode strap endpoints not found".into())),
    };
    let w1 = tech.min_width(m1);
    // Horizontal from the gate pad east to under the drain column, then
    // vertical up into the column.
    let hy = gate_pad.center().y;
    let h = Rect::new(
        gate_pad.x1,
        hy - w1 / 2,
        drain_col.center().x + w1 / 2,
        hy - w1 / 2 + w1,
    );
    let v = Rect::new(
        drain_col.center().x - w1 / 2,
        hy - w1 / 2,
        drain_col.center().x - w1 / 2 + w1,
        drain_col.y0 + w1,
    );
    m.push(Shape::new(m1, h).with_net(a));
    m.push(Shape::new(m1, v).with_net(a));
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn anode_joins_gate_and_drain() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = diode_transistor(&t, &DiodeParams::new(MosType::N).with_w(um(8)))?;
        let nets = Extractor::new(&t).connectivity(&m);
        let a_comp = nets
            .iter()
            .find(|n| n.declared.iter().any(|x| x == "a"))
            .expect("anode extracted");
        // The anode component contains poly (the gate) and diffusion (the
        // drain row).
        let poly = t.layer("poly")?;
        let nd = t.layer("ndiff")?;
        assert!(a_comp.shapes.iter().any(|&i| m.shapes()[i].layer == poly));
        assert!(a_comp.shapes.iter().any(|&i| m.shapes()[i].layer == nd));
        Ok(())
    }

    #[test]
    fn source_stays_separate() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = diode_transistor(&t, &DiodeParams::new(MosType::N).with_w(um(8)))?;
        for n in Extractor::new(&t).connectivity(&m) {
            let has_a = n.declared.iter().any(|x| x == "a");
            let has_s = n.declared.iter().any(|x| x == "s");
            assert!(!(has_a && has_s), "{:?}", n.declared);
        }
        Ok(())
    }

    #[test]
    fn no_shorts_in_drc() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = diode_transistor(&t, &DiodeParams::new(MosType::N).with_w(um(8)))?;
        let shorts: Vec<_> = Drc::new(&t)
            .check_spacing(&m)
            .into_iter()
            .filter(|v| v.kind == amgen_drc::ViolationKind::Short)
            .collect();
        assert!(shorts.is_empty(), "{shorts:?}");
        Ok(())
    }

    #[test]
    fn pmos_diode_works() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let m = diode_transistor(&t, &DiodeParams::new(MosType::P).with_w(um(6)))?;
        assert!(m.port("a").is_some());
        assert!(m.port("s").is_some());
        Ok(())
    }
}

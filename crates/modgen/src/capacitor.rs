//! MOS capacitors: a large gate plate over a diffusion plate.
//!
//! The poly/channel sandwich is the standard capacitor of a single-poly
//! process. The module is a square gate plate with a poly contact row on
//! top (the `top` terminal) and diffusion contact rows on both sides tied
//! to one `bot` terminal; the deck's gate-oxide-ish area capacitance of
//! the poly layer gives the nominal value.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::LayoutObject;
use amgen_geom::{Coord, Dir};
use amgen_prim::Primitives;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;
use crate::mos::MosType;

/// Parameters of a MOS capacitor.
#[derive(Debug, Clone)]
pub struct MosCapParams {
    /// Polarity of the bottom plate diffusion.
    pub mos: MosType,
    /// Plate side length; `None` selects 10 µm.
    pub side: Option<Coord>,
}

impl MosCapParams {
    /// A 10 µm square capacitor.
    pub fn new(mos: MosType) -> MosCapParams {
        MosCapParams { mos, side: None }
    }

    /// Sets the plate side length.
    #[must_use]
    pub fn with_side(mut self, side: Coord) -> Self {
        self.side = Some(side);
        self
    }
}

/// Generates the capacitor. Ports: `top` (gate plate), `bot` (diffusion).
/// Returns the module and the estimated plate capacitance in fF (area ×
/// the poly area coefficient — a stand-in for the oxide capacitance).
pub fn mos_capacitor(
    tech: impl IntoGenCtx,
    params: &MosCapParams,
) -> Result<(LayoutObject, f64), ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "mos_capacitor", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.side);
    });
    let m = tech.generate_cached_full(Stage::Modgen, key, || {
        let (layout, value) = mos_capacitor_uncached(tech, params)?;
        Ok::<_, ModgenError>(amgen_core::CachedModule {
            layout,
            scalars: vec![value],
        })
    })?;
    let value = m.scalars[0];
    Ok((m.layout, value))
}

fn mos_capacitor_uncached(
    tech: &GenCtx,
    params: &MosCapParams,
) -> Result<(LayoutObject, f64), ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "mos_capacitor");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "mos_capacitor")?;
    let c = Compactor::new(tech);
    let prim = Primitives::new(tech);
    let poly = tech.poly()?;
    let diff = params.mos.diff(tech)?;
    let side = params.side.unwrap_or(10_000).max(4_000);

    // The plate crossing: a "transistor" with W = L = side.
    let mut core = LayoutObject::new("plate");
    let (gi, _) = prim.two_rects(&mut core, poly, diff, Some(side), Some(side))?;
    let top_id = core.net("top");
    core.shapes_mut()[gi].net = Some(top_id);

    let mut main = LayoutObject::new("mos_cap");
    let opts = CompactOptions::new().ignoring(diff);
    c.compact(&mut main, &core, Dir::West, &CompactOptions::new())?;
    // Gate terminal on top of the plate.
    let pc = contact_row(
        tech,
        poly,
        &ContactRowParams::new().with_w(side).with_net("top"),
    )?;
    c.compact(
        &mut main,
        &pc,
        Dir::North,
        &CompactOptions::new().ignoring(poly),
    )?;
    // Bottom plate contacts on both sides, one net.
    let row = |_: ()| {
        contact_row(
            tech,
            diff,
            &ContactRowParams::new().with_l(side).with_net("bot"),
        )
    };
    c.compact(&mut main, &row(())?, Dir::West, &opts)?;
    c.compact(&mut main, &row(())?, Dir::East, &opts)?;

    match params.mos {
        MosType::N => {
            let nplus = tech.nplus()?;
            prim.around(&mut main, nplus, 0)?;
        }
        MosType::P => {
            let pplus = tech.pplus()?;
            prim.around(&mut main, pplus, 0)?;
            let nwell = tech.nwell()?;
            prim.around(&mut main, nwell, 0)?;
        }
    }

    // Value estimate from the plate overlap area.
    let plate_um2 = (side as f64 / 1e3) * (side as f64 / 1e3);
    let cap_ff = plate_um2 * tech.cap_coeffs(poly).area_af_per_um2 / 1e3;
    Ok((main, cap_ff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn plates_are_two_nets() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (m, _) = mos_capacitor(&t, &MosCapParams::new(MosType::N).with_side(um(12)))?;
        for n in Extractor::new(&t).connectivity(&m) {
            let top = n.declared.iter().any(|x| x == "top");
            let bot = n.declared.iter().any(|x| x == "bot");
            assert!(!(top && bot), "plates shorted: {:?}", n.declared);
        }
        assert!(m.port("top").is_some());
        assert!(m.port("bot").is_some());
        Ok(())
    }

    #[test]
    fn both_diffusion_rows_share_the_bot_net() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (m, _) = mos_capacitor(&t, &MosCapParams::new(MosType::N).with_side(um(12)))?;
        // Both bot rows exist — but as separate diffusion regions (the
        // plate's channel splits them); they share the declared name.
        let bots = Extractor::new(&t)
            .connectivity(&m)
            .into_iter()
            .filter(|n| n.declared.iter().any(|x| x == "bot"))
            .count();
        assert!(bots >= 1);
        Ok(())
    }

    #[test]
    fn value_scales_with_area() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (_, c10) = mos_capacitor(&t, &MosCapParams::new(MosType::N).with_side(um(10)))?;
        let (_, c20) = mos_capacitor(&t, &MosCapParams::new(MosType::N).with_side(um(20)))?;
        assert!((c20 / c10 - 4.0).abs() < 0.01, "{c20} / {c10}");
        Ok(())
    }

    #[test]
    fn spacing_clean() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (m, _) = mos_capacitor(&t, &MosCapParams::new(MosType::P).with_side(um(10)))?;
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }
}

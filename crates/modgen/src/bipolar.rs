//! Bipolar npn modules (block F of the paper's §3).
//!
//! *"The bipolar transistors of block F are composed symmetrically."*
//!
//! The synthetic BiCMOS deck models the npn with a buried subcollector, a
//! base region, an emitter diffusion inside the base, and a collector
//! contact row placed directly on the buried layer (standing in for the
//! sinker stack of a real process). Emitter and base get contact rows;
//! the device is built entirely from `inbox`/`around` primitives plus
//! compaction steps.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Port};
use amgen_geom::{Coord, Dir, Vector};
use amgen_prim::Primitives;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;

/// Parameters of the npn module.
#[derive(Debug, Clone, Default)]
pub struct NpnParams {
    /// Emitter stripe length (y); `None` selects the minimum.
    pub emitter_l: Option<Coord>,
}

impl NpnParams {
    /// Minimum emitter.
    pub fn new() -> NpnParams {
        NpnParams::default()
    }

    /// Sets the emitter length.
    #[must_use]
    pub fn with_emitter_l(mut self, l: Coord) -> Self {
        self.emitter_l = Some(l);
        self
    }
}

/// Generates a single npn transistor. Ports: `e`, `b`, `c`.
pub fn bipolar_npn(tech: impl IntoGenCtx, params: &NpnParams) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "bipolar_npn", |k| {
        k.push(params.emitter_l);
    });
    tech.generate_cached(Stage::Modgen, key, || bipolar_npn_uncached(tech, params))
}

fn bipolar_npn_uncached(tech: &GenCtx, params: &NpnParams) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "bipolar_npn");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "bipolar_npn")?;
    let prim = Primitives::new(tech);
    let c = Compactor::new(tech);
    let base = tech.base()?;
    let emitter = tech.emitter()?;
    let buried = tech.buried()?;
    let ndiff = tech.ndiff()?;

    // Emitter contact row: emitter diffusion + metal + contacts.
    let mut e_row = contact_row(tech, emitter, &ContactRowParams::new().with_net("e"))?;
    if let Some(l) = params.emitter_l {
        // Rebuild with explicit length.
        e_row = contact_row(
            tech,
            emitter,
            &ContactRowParams::new().with_l(l).with_net("e"),
        )?;
    }

    let mut main = LayoutObject::new("npn");
    c.compact(&mut main, &e_row, Dir::West, &CompactOptions::new())?;

    // Base region around the emitter, then a base contact row east of it.
    prim.around(&mut main, base, 0)?;
    let b_net = main.net("b");
    let base_rect = main.bbox_on(base);
    let e_h = main.bbox_on(emitter).height();
    let b_row = contact_row(
        tech,
        base,
        &ContactRowParams::new().with_l(e_h).with_net("b"),
    )?;
    c.compact(
        &mut main,
        &b_row,
        Dir::East,
        &CompactOptions::new().ignoring(base),
    )?;
    let _ = (b_net, base_rect);

    // Buried subcollector around everything so far.
    prim.around(&mut main, buried, 0)?;

    // Collector contact row directly on the buried layer (sinker stand-in),
    // attached west; its buried rectangle merges into the subcollector.
    let sink = contact_row(
        tech,
        buried,
        &ContactRowParams::new().with_l(e_h).with_net("c"),
    )?;
    c.compact(
        &mut main,
        &sink,
        Dir::West,
        &CompactOptions::new().ignoring(buried),
    )?;
    let _ = ndiff;

    let ports: Vec<Port> = ["e", "b", "c"]
        .iter()
        .filter_map(|n| main.port(n).cloned())
        .collect();
    debug_assert_eq!(ports.len(), 3);
    Ok(main)
}

/// A symmetric npn pair: two devices mirrored about a common axis, the
/// block-F arrangement.
pub fn bipolar_pair(
    tech: impl IntoGenCtx,
    params: &NpnParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "bipolar_pair", |k| {
        k.push(params.emitter_l);
    });
    tech.generate_cached(Stage::Modgen, key, || bipolar_pair_uncached(tech, params))
}

fn bipolar_pair_uncached(tech: &GenCtx, params: &NpnParams) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "bipolar_pair");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "bipolar_pair")?;
    let single = bipolar_npn(tech, params)?;
    let buried = tech.buried()?;
    let space = tech.min_spacing(buried, buried).unwrap_or(5_000);
    let mut main = LayoutObject::with_capacity("npn_pair", 2 * single.len() + 4);
    main.absorb(&single, Vector::ZERO);
    let w = single.bbox().width();
    let mirrored = single.mirrored_x(single.bbox().x1 + (space + w) / 2 + w / 2);
    // Rename the mirrored ports by absorbing with prefixed nets: rebuild
    // the mirrored object's nets as *_2.
    let mut right = LayoutObject::new("npn2");
    for name in mirrored.net_names() {
        right.net(&format!("{name}_2"));
    }
    for s in mirrored.shapes() {
        let mut s2 = *s;
        s2.net = s.net.map(|id| {
            let name = format!("{}_2", mirrored.net_name(id));
            right.net(&name)
        });
        right.push(s2);
    }
    for p in mirrored.ports() {
        let name = format!("{}_2", p.name);
        let net = right.find_net(&name);
        right.push_port(Port {
            name,
            layer: p.layer,
            rect: p.rect,
            net,
        });
    }
    main.absorb(&right, Vector::ZERO);
    Ok(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn npn_has_three_terminals() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let n = bipolar_npn(&t, &NpnParams::new())?;
        for p in ["e", "b", "c"] {
            assert!(n.port(p).is_some(), "missing {p}");
        }
        Ok(())
    }

    #[test]
    fn emitter_inside_base_inside_buried() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let n = bipolar_npn(&t, &NpnParams::new().with_emitter_l(um(6)))?;
        let e = n.bbox_on(t.layer("emitter")?);
        let b = n.bbox_on(t.layer("base")?);
        let bu = n.bbox_on(t.layer("buried")?);
        let enc_be = t.enclosure(t.layer("base")?, t.layer("emitter")?);
        assert!(
            b.inflated(-enc_be).contains_rect(&e),
            "base encloses emitter"
        );
        assert!(bu.contains_rect(&b), "buried encloses base");
        Ok(())
    }

    #[test]
    fn collector_reaches_the_buried_layer() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let n = bipolar_npn(&t, &NpnParams::new())?;
        // The extracted "c" component must contain the buried shape
        // (diffusion sinker overlaps buried → connected).
        let nets = Extractor::new(&t).connectivity(&n);
        let c_comp = nets
            .iter()
            .find(|x| x.declared.iter().any(|d| d == "c"))
            .expect("collector net");
        let buried = t.layer("buried")?;
        assert!(
            c_comp.shapes.iter().any(|&i| n.shapes()[i].layer == buried),
            "sinker contacts the subcollector"
        );
        Ok(())
    }

    #[test]
    fn terminals_stay_separate() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let n = bipolar_npn(&t, &NpnParams::new())?;
        for comp in Extractor::new(&t).connectivity(&n) {
            assert!(comp.declared.len() <= 1, "short: {:?}", comp.declared);
        }
        Ok(())
    }

    #[test]
    fn npn_is_enclosure_clean() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let n = bipolar_npn(&t, &NpnParams::new().with_emitter_l(um(4)))?;
        let v = Drc::new(&t).check_enclosures(&n);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }

    #[test]
    fn pair_is_mirrored_and_separate() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let p = bipolar_pair(&t, &NpnParams::new())?;
        for name in ["e", "b", "c", "e_2", "b_2", "c_2"] {
            assert!(p.port(name).is_some(), "missing {name}");
        }
        // The two devices do not short.
        for comp in Extractor::new(&t).connectivity(&p) {
            let one = comp.declared.iter().any(|d| !d.ends_with("_2"));
            let two = comp.declared.iter().any(|d| d.ends_with("_2"));
            assert!(!(one && two), "devices shorted: {:?}", comp.declared);
        }
        Ok(())
    }

    #[test]
    fn pair_buried_spacing_is_respected() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let p = bipolar_pair(&t, &NpnParams::new())?;
        let v = Drc::new(&t).check_spacing(&p);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }
}

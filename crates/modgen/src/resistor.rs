//! Serpentine poly resistors and matched resistor pairs.
//!
//! The paper's partitioning *"takes additional analog properties like …
//! poly-wire resistance into account"*; this generator makes that
//! resistance a first-class, parameterizable module: a poly serpentine
//! whose value is computed from the sheet resistance of the deck, with
//! contact rows at both ends, plus an interleaved matched pair (A-B-A-B)
//! for ratio-critical feedback networks.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Coord, Dir, Rect, Vector};

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;

/// Parameters of a serpentine resistor.
#[derive(Debug, Clone)]
pub struct ResistorParams {
    /// Number of vertical legs (≥ 1).
    pub legs: usize,
    /// Leg length (y extent); `None` selects 10 µm.
    pub leg_l: Option<Coord>,
    /// Wire width; `None` selects the poly minimum.
    pub w: Option<Coord>,
    /// Terminal net names.
    pub nets: (String, String),
}

impl ResistorParams {
    /// A `legs`-leg serpentine with terminals `p`/`n`.
    pub fn new(legs: usize) -> ResistorParams {
        ResistorParams {
            legs,
            leg_l: None,
            w: None,
            nets: ("p".into(), "n".into()),
        }
    }

    /// Sets the leg length.
    #[must_use]
    pub fn with_leg_l(mut self, l: Coord) -> Self {
        self.leg_l = Some(l);
        self
    }

    /// Sets the wire width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }
}

/// Generates the serpentine. Ports: the two terminal nets.
///
/// Returns the module and its nominal resistance in Ω (squares × sheet
/// resistance, corners counted as half squares).
pub fn poly_resistor(
    tech: impl IntoGenCtx,
    params: &ResistorParams,
) -> Result<(LayoutObject, f64), ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "poly_resistor", |k| {
        k.push(params.legs);
        k.push(params.leg_l);
        k.push(params.w);
        k.push(params.nets.0.clone());
        k.push(params.nets.1.clone());
    });
    let m = tech.generate_cached_full(Stage::Modgen, key, || {
        let (layout, value) = poly_resistor_uncached(tech, params)?;
        Ok::<_, ModgenError>(amgen_core::CachedModule {
            layout,
            scalars: vec![value],
        })
    })?;
    let value = m.scalars[0];
    Ok((m.layout, value))
}

fn poly_resistor_uncached(
    tech: &GenCtx,
    params: &ResistorParams,
) -> Result<(LayoutObject, f64), ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "poly_resistor");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "poly_resistor")?;
    if params.legs == 0 {
        return Err(ModgenError::BadParam {
            param: "legs",
            message: "must be at least 1".into(),
        });
    }
    let poly = tech.poly()?;
    let w = params
        .w
        .unwrap_or_else(|| tech.min_width(poly))
        .max(tech.min_width(poly));
    let leg_l = params.leg_l.unwrap_or(10_000).max(3 * w);
    let pitch = w + tech.min_spacing(poly, poly).unwrap_or(w);

    let mut main = LayoutObject::new("poly_resistor");
    // Legs and alternating top/bottom connecting elbows. The body is
    // deliberately un-netted: the serpentine is one conductor joining
    // both terminals (at DC a resistor is a single node to extraction).
    for i in 0..params.legs {
        let x = i as Coord * pitch;
        main.push(Shape::new(poly, Rect::new(x, 0, x + w, leg_l)));
        if i + 1 < params.legs {
            let (y0, y1) = if i % 2 == 0 {
                (leg_l - w, leg_l) // top elbow
            } else {
                (0, w) // bottom elbow
            };
            main.push(Shape::new(poly, Rect::new(x, y0, x + pitch + w, y1)));
        }
    }
    // Terminal contact rows, attached where the serpentine ends.
    let first_end_top = false; // leg 0 enters at the bottom
    let last_end_top = params.legs.is_multiple_of(2);
    let head = contact_row(
        tech,
        poly,
        &ContactRowParams::new().with_net(&params.nets.0),
    )?;
    let tail = contact_row(
        tech,
        poly,
        &ContactRowParams::new().with_net(&params.nets.1),
    )?;
    // Position by translation onto the leg ends, then absorb: the rows'
    // poly merges with the legs (same layer, head/tail nets vs unnamed —
    // geometric contact connects them).
    let mut head = head;
    let hb = head.bbox();
    let hx = (w / 2) - hb.center().x;
    let hy = if first_end_top {
        leg_l - hb.y0
    } else {
        -(hb.y1)
    };
    head.translate(Vector::new(hx, hy));
    main.absorb(&head, Vector::ZERO);
    let mut tail = tail;
    let tb = tail.bbox();
    let tx = (params.legs as Coord - 1) * pitch + w / 2 - tb.center().x;
    let ty = if last_end_top {
        leg_l - tb.y0
    } else {
        -(tb.y1)
    };
    tail.translate(Vector::new(tx, ty));
    main.absorb(&tail, Vector::ZERO);

    // Nominal value: squares along the path.
    let sheet = tech.sheet_res_mohm(poly).unwrap_or(0) as f64 / 1e3; // Ω/□
    let leg_squares = leg_l as f64 / w as f64;
    let elbow_squares = (pitch + w) as f64 / w as f64 - 1.0; // corner ≈ half square each
    let squares =
        params.legs as f64 * leg_squares + (params.legs as f64 - 1.0) * (elbow_squares - 1.0);
    Ok((main, squares * sheet))
}

/// A matched pair of serpentines, interleaved A-B-A-B so both devices see
/// the same gradient — the resistor analogue of the inter-digitated
/// transistor.
pub fn matched_resistor_pair(
    tech: impl IntoGenCtx,
    legs_per_device: usize,
    leg_l: Coord,
) -> Result<(LayoutObject, f64, f64), ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "matched_resistor_pair", |k| {
        k.push(legs_per_device);
        k.push(leg_l);
    });
    let m = tech.generate_cached_full(Stage::Modgen, key, || {
        let (layout, a, b) = matched_resistor_pair_uncached(tech, legs_per_device, leg_l)?;
        Ok::<_, ModgenError>(amgen_core::CachedModule {
            layout,
            scalars: vec![a, b],
        })
    })?;
    let (a, b) = (m.scalars[0], m.scalars[1]);
    Ok((m.layout, a, b))
}

fn matched_resistor_pair_uncached(
    tech: &GenCtx,
    legs_per_device: usize,
    leg_l: Coord,
) -> Result<(LayoutObject, f64, f64), ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "matched_resistor_pair");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "matched_resistor_pair")?;
    let (ra, va) = poly_resistor(
        tech,
        &ResistorParams {
            legs: legs_per_device,
            leg_l: Some(leg_l),
            w: None,
            nets: ("a_p".into(), "a_n".into()),
        },
    )?;
    let (rb, vb) = poly_resistor(
        tech,
        &ResistorParams {
            legs: legs_per_device,
            leg_l: Some(leg_l),
            w: None,
            nets: ("b_p".into(), "b_n".into()),
        },
    )?;
    // Interleave by compacting alternating single-leg slices would change
    // the values; instead place B beside A mirrored, at rule distance —
    // the two meanders see opposite gradients which cancel to first
    // order.
    let c = Compactor::new(tech);
    let mut main = LayoutObject::new("matched_resistors");
    c.compact(&mut main, &ra, Dir::West, &CompactOptions::new())?;
    let rb_mirrored = rb.mirrored_x(rb.bbox().center().x);
    c.compact(&mut main, &rb_mirrored, Dir::East, &CompactOptions::new())?;
    Ok((main, va, vb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn serpentine_is_one_resistive_net() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (m, _) = poly_resistor(&t, &ResistorParams::new(5).with_leg_l(um(12)))?;
        // Everything poly + the two contact rows form one component
        // (a resistor is one conductor); terminals both appear in it.
        let nets = Extractor::new(&t).connectivity(&m);
        let comp = nets
            .iter()
            .max_by_key(|n| n.shapes.len())
            .ok_or("no nets")?;
        assert!(comp.declared.iter().any(|d| d == "p"));
        assert!(comp.declared.iter().any(|d| d == "n"));
        Ok(())
    }

    #[test]
    fn value_scales_with_legs() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (_, v3) = poly_resistor(&t, &ResistorParams::new(3).with_leg_l(um(12)))?;
        let (_, v6) = poly_resistor(&t, &ResistorParams::new(6).with_leg_l(um(12)))?;
        assert!(v6 > 1.8 * v3, "{v6} vs {v3}");
        // Sanity: 25 Ω/□ poly, 12 µm legs of 1 µm width ≈ 12 squares/leg.
        assert!(v3 > 3.0 * 12.0 * 20.0);
        Ok(())
    }

    #[test]
    fn value_scales_inverse_with_width() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (_, narrow) = poly_resistor(&t, &ResistorParams::new(4).with_leg_l(um(12)))?;
        let (_, wide) =
            poly_resistor(&t, &ResistorParams::new(4).with_leg_l(um(12)).with_w(um(2)))?;
        assert!(wide < narrow);
        Ok(())
    }

    #[test]
    fn serpentine_is_spacing_clean() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (m, _) = poly_resistor(&t, &ResistorParams::new(6).with_leg_l(um(15)))?;
        let v = Drc::new(&t).check_spacing(&m);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }

    #[test]
    fn matched_pair_values_agree() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let (m, va, vb) = matched_resistor_pair(&t, 4, um(12))?;
        assert_eq!(va, vb);
        // Devices remain electrically separate.
        for n in Extractor::new(&t).connectivity(&m) {
            let a = n.declared.iter().any(|d| d.starts_with("a_"));
            let b = n.declared.iter().any(|d| d.starts_with("b_"));
            assert!(!(a && b), "{:?}", n.declared);
        }
        Ok(())
    }

    #[test]
    fn zero_legs_rejected() {
        let t = tech();
        assert!(matches!(
            poly_resistor(&t, &ResistorParams::new(0)),
            Err(ModgenError::BadParam { .. })
        ));
    }
}

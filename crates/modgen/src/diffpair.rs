//! The simple MOS differential pair (Figs. 6/7 of the paper).
//!
//! ```text
//! ENT DiffPair(<W>, <L>)
//!   trans1 = Trans(W = W, L = L)
//!   trans2 = trans1           // copy of trans1
//!   diffcon = ContactRow(layer = "pdiff", W = W)
//!   compact(trans1, WEST, "pdiff")   // step 3
//!   compact(trans2, WEST, "pdiff")   // step 4
//!   compact(diffcon, WEST, "pdiff")  // step 5
//! ```
//!
//! The result is *"two transistors, three diffusion-contact-rows and two
//! poly-contacts"*: `row | gate | row | gate | row`, with the middle row
//! shared between the devices.

use amgen_compact::{CompactOptions, Compactor};
use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::LayoutObject;
use amgen_geom::Coord;
use amgen_geom::Dir;
use amgen_prim::Primitives;

use crate::contact_row::{contact_row, ContactRowParams};
use crate::error::ModgenError;
use crate::mos::{mos_finger, MosType};

/// Parameters of the simple differential pair.
#[derive(Debug, Clone)]
pub struct DiffPairParams {
    /// Device polarity.
    pub mos: MosType,
    /// Channel width; `None` selects the minimum.
    pub w: Option<Coord>,
    /// Channel length; `None` selects the minimum.
    pub l: Option<Coord>,
    /// Draw the implant (and well for PMOS).
    pub implants: bool,
}

impl DiffPairParams {
    /// Minimum-size pair of the given polarity with implants.
    pub fn new(mos: MosType) -> DiffPairParams {
        DiffPairParams {
            mos,
            w: None,
            l: None,
            implants: true,
        }
    }

    /// Sets the channel width.
    #[must_use]
    pub fn with_w(mut self, w: Coord) -> Self {
        self.w = Some(w);
        self
    }

    /// Sets the channel length.
    #[must_use]
    pub fn with_l(mut self, l: Coord) -> Self {
        self.l = Some(l);
        self
    }
}

/// Generates the five-step differential pair of Fig. 6.
///
/// Net/port names: gates `g1`/`g2`, drains `d1`/`d2` (outer rows), common
/// source `s` (the shared middle row).
pub fn diff_pair(
    tech: impl IntoGenCtx,
    params: &DiffPairParams,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "diff_pair", |k| {
        k.push(crate::cached::mos_code(params.mos));
        k.push(params.w);
        k.push(params.l);
        k.push(params.implants);
    });
    tech.generate_cached(Stage::Modgen, key, || diff_pair_uncached(tech, params))
}

fn diff_pair_uncached(tech: &GenCtx, params: &DiffPairParams) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "diff_pair");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "diff_pair")?;
    let c = Compactor::new(tech);
    let prim = Primitives::new(tech);
    let diff = params.mos.diff(tech)?;

    // trans1 carries its own east row (drain d1); trans2 is "a copy of
    // trans1" with its row becoming the shared source when it lands west.
    let trans1 = mos_finger(tech, params.mos, params.w, params.l, "g1", "d1", true)?;
    let trans2 = mos_finger(tech, params.mos, params.w, params.l, "g2", "s", true)?;
    let w_actual = trans1.bbox_on(diff).height();
    let diffcon = contact_row(
        tech,
        diff,
        &ContactRowParams::new().with_l(w_actual).with_net("d2"),
    )?;

    let mut main =
        LayoutObject::with_capacity("diff_pair", trans1.len() + trans2.len() + diffcon.len() + 8);
    let opts = CompactOptions::new().ignoring(diff);
    c.compact(&mut main, &trans1, Dir::West, &opts)?; // step 3
    c.compact(&mut main, &trans2, Dir::West, &opts)?; // step 4
    c.compact(&mut main, &diffcon, Dir::West, &opts)?; // step 5

    if params.implants {
        match params.mos {
            MosType::N => {
                let nplus = tech.nplus()?;
                prim.around(&mut main, nplus, 0)?;
            }
            MosType::P => {
                let pplus = tech.pplus()?;
                prim.around(&mut main, pplus, 0)?;
                let nwell = tech.nwell()?;
                prim.around(&mut main, nwell, 0)?;
            }
        }
    }
    Ok(main)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_drc::Drc;
    use amgen_extract::Extractor;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    fn pair(t: &Tech) -> LayoutObject {
        diff_pair(
            t,
            &DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2)),
        )
        .unwrap()
    }

    #[test]
    fn has_two_gates_three_rows_two_poly_contacts() {
        let t = tech();
        let p = pair(&t);
        // Count contact rows by their rebuild groups: 2 poly contact rows
        // + 3 diffusion rows = 5 groups.
        assert_eq!(p.groups().len(), 5);
        // Two gate nets, one source, two drains.
        for port in ["g1", "g2", "s", "d1", "d2"] {
            assert!(p.port(port).is_some(), "missing port {port}");
        }
    }

    #[test]
    fn row_gate_row_gate_row_from_west_to_east() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let p = pair(&t);
        // The shared s row lies strictly between the two gate x-ranges.
        let g1 = p.port("g1").ok_or("missing port g1")?.rect.center().x;
        let g2 = p.port("g2").ok_or("missing port g2")?.rect.center().x;
        let s = p.port("s").ok_or("missing port s")?.rect.center().x;
        let d1 = p.port("d1").ok_or("missing port d1")?.rect.center().x;
        let d2 = p.port("d2").ok_or("missing port d2")?.rect.center().x;
        let (lo_g, hi_g) = (g1.min(g2), g1.max(g2));
        assert!(lo_g < s && s < hi_g, "source row between the gates");
        assert!(d1 < lo_g || d1 > hi_g, "d1 outside");
        assert!(d2 < lo_g || d2 > hi_g, "d2 outside");
        assert!((d1 < lo_g) != (d2 < lo_g), "drains on opposite sides");
        Ok(())
    }

    #[test]
    fn is_drc_clean() {
        let t = tech();
        let p = pair(&t);
        let v = Drc::new(&t).check_spacing(&p);
        assert!(v.is_empty(), "{v:?}");
        let v = Drc::new(&t).check_enclosures(&p);
        assert!(v.is_empty(), "{v:?}");
        let v = Drc::new(&t).check_widths(&p);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn no_declared_net_conflicts() {
        let t = tech();
        let p = pair(&t);
        // The continuous diffusion legitimately joins s/d1/d2 (one strip of
        // source/drain silicon); gates must stay separate from it and from
        // each other.
        let nets = Extractor::new(&t).connectivity(&p);
        for n in &nets {
            let has_g1 = n.declared.iter().any(|x| x == "g1");
            let has_g2 = n.declared.iter().any(|x| x == "g2");
            let has_sd = n
                .declared
                .iter()
                .any(|x| x == "s" || x == "d1" || x == "d2");
            assert!(!(has_g1 && has_g2), "gates shorted: {:?}", n.declared);
            assert!(
                !((has_g1 || has_g2) && has_sd),
                "gate shorted to s/d: {:?}",
                n.declared
            );
        }
    }

    #[test]
    fn nmos_pair_works_too() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let p = diff_pair(&t, &DiffPairParams::new(MosType::N).with_w(um(6)))?;
        let v = Drc::new(&t).check_spacing(&p);
        assert!(v.is_empty(), "{v:?}");
        let nplus = t.layer("nplus")?;
        assert!(!p.bbox_on(nplus).is_empty());
        Ok(())
    }

    #[test]
    fn compaction_shares_the_middle_row() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        // Pair width is clearly less than two standalone fingers plus an
        // extra row: the middle row is shared.
        let p = pair(&t);
        // Two standalone transistors need four diffusion rows; the pair
        // gets by with three by sharing the middle one. Compare active
        // extents (wells/implants inflate the pair's bounding box).
        let pdiff = t.layer("pdiff")?;
        let single = crate::mos::mos_transistor(
            &t,
            &crate::mos::MosParams::new(MosType::P)
                .with_w(um(10))
                .with_l(um(2))
                .without_implants(),
        )?;
        assert!(
            p.bbox_on(pdiff).width() < 2 * single.bbox_on(pdiff).width(),
            "{} vs 2 x {}",
            p.bbox_on(pdiff).width(),
            single.bbox_on(pdiff).width()
        );
        Ok(())
    }

    #[test]
    fn works_in_cmos_deck() -> Result<(), Box<dyn std::error::Error>> {
        let t = Tech::cmos_08();
        let p = diff_pair(&t, &DiffPairParams::new(MosType::N).with_w(um(8)))?;
        let v = Drc::new(&t).check_spacing(&p);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }
}

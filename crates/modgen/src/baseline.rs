//! Coordinate-level baseline generators (the style of the paper's
//! ref. \[11\]).
//!
//! The paper argues that its procedural language shortens module code:
//! *"Former methods for equivalent generation by describing each
//! rectangle with its exact coordinates needed a multiple of this source
//! code and were much more difficult to construct and to maintain."*
//!
//! This module is that strawman, written honestly: the same contact row
//! and differential-pair geometry, but with every coordinate computed by
//! hand from the rules. Tests pin it to the generator output; the
//! experiment harness compares the line counts (`T-code` in
//! EXPERIMENTS.md).

use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Coord, Rect};

use crate::error::ModgenError;

/// This module's own source text, for the code-length experiment
/// (`T-code` in EXPERIMENTS.md): the harness compares the length of the
/// hand-coordinate generator below against the DSL sources it replaces.
pub const BASELINE_SOURCE: &str = include_str!("baseline.rs");

/// Hand-coordinate contact row, equivalent to
/// [`crate::contact_row::contact_row`] with an explicit width and
/// defaulted length on a non-cut layer.
///
/// Every coordinate below is derived manually — exactly the style the
/// paper's language replaces.
pub fn contact_row_by_coordinates(
    tech: impl IntoGenCtx,
    layer_name: &str,
    w: Coord,
) -> Result<LayoutObject, ModgenError> {
    let tech = &tech.into_gen_ctx();
    let key = crate::cached::module_key(tech, "contact_row_by_coordinates", |k| {
        k.push(layer_name);
        k.push(w);
    });
    tech.generate_cached(Stage::Modgen, key, || {
        contact_row_by_coordinates_uncached(tech, layer_name, w)
    })
}

fn contact_row_by_coordinates_uncached(
    tech: &GenCtx,
    layer_name: &str,
    w: Coord,
) -> Result<LayoutObject, ModgenError> {
    let _timer = tech.metrics.stage_timer(Stage::Modgen);
    let _span = tech.span(Stage::Modgen, || "contact_row_by_coordinates");
    tech.checkpoint(Stage::Modgen)?;
    tech.fault_check(FaultSite::ModgenEntry, "contact_row_by_coordinates")?;
    let layer = tech.layer(layer_name)?;
    let metal1 = tech.metal1()?;
    let contact = tech.contact()?;

    // --- manual rule arithmetic -----------------------------------
    let cut = tech
        .cut_size(contact)
        .map_err(|e| ModgenError::Tech(e.to_string()))?;
    let cut_space = tech
        .min_spacing(contact, contact)
        .ok_or_else(|| ModgenError::Tech("missing contact spacing".into()))?;
    let enc_base = tech.enclosure(layer, contact);
    let enc_metal = tech.enclosure(metal1, contact);
    let enc = enc_base.max(enc_metal);
    let min_w_layer = tech.min_width(layer);
    let min_w_metal = tech.min_width(metal1);

    // The row must be wide enough for the requested width, the layer
    // minima, and one contact with enclosure on both sides.
    let need_for_cut = cut + 2 * enc;
    let row_w = w.max(min_w_layer).max(min_w_metal).max(need_for_cut);
    // The length is the minimum that satisfies the same constraints.
    let row_l = min_w_layer.max(min_w_metal).max(need_for_cut);

    // Snap to the manufacturing grid.
    let row_w = tech.snap_up(row_w);
    let row_l = tech.snap_up(row_l);

    // --- explicit rectangles ---------------------------------------
    let mut obj = LayoutObject::new(format!("baseline_row:{layer_name}"));
    let base_rect = Rect::new(0, 0, row_w, row_l);
    obj.push(Shape::new(layer, base_rect));
    let metal_rect = Rect::new(0, 0, row_w, row_l);
    obj.push(Shape::new(metal1, metal_rect));

    // Contact array: maximum count that fits, spread equidistantly from
    // the first position flush at the frame start to the last flush at
    // the frame end.
    let frame_x0 = enc;
    let frame_x1 = row_w - enc;
    let frame_y0 = enc;
    let frame_y1 = row_l - enc;
    let span_x = frame_x1 - frame_x0;
    let span_y = frame_y1 - frame_y0;
    let nx = ((span_x + cut_space) / (cut + cut_space)).max(1);
    let ny = ((span_y + cut_space) / (cut + cut_space)).max(1);
    for j in 0..ny {
        let y = if ny == 1 {
            frame_y0 + (span_y - cut) / 2
        } else {
            frame_y0 + (span_y - cut) * j / (ny - 1)
        };
        for i in 0..nx {
            let x = if nx == 1 {
                frame_x0 + (span_x - cut) / 2
            } else {
                frame_x0 + (span_x - cut) * i / (nx - 1)
            };
            obj.push(Shape::new(contact, Rect::new(x, y, x + cut, y + cut)));
        }
    }
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact_row::{contact_row, ContactRowParams};
    use amgen_drc::Drc;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn baseline_row_matches_generator_footprint() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let poly = t.layer("poly")?;
        for w in [um(4), um(10), um(16)] {
            let gen = contact_row(&t, poly, &ContactRowParams::new().with_w(w))?;
            let base = contact_row_by_coordinates(&t, "poly", w)?;
            assert_eq!(
                gen.bbox().width(),
                base.bbox().width(),
                "width differs at w={w}"
            );
            assert_eq!(gen.bbox().height(), base.bbox().height());
            let ct = t.layer("contact")?;
            assert_eq!(
                gen.shapes_on(ct).count(),
                base.shapes_on(ct).count(),
                "contact count differs at w={w}"
            );
        }
        Ok(())
    }

    #[test]
    fn baseline_row_is_drc_clean() -> Result<(), Box<dyn std::error::Error>> {
        let t = tech();
        let row = contact_row_by_coordinates(&t, "pdiff", um(12))?;
        let v = Drc::new(&t).check(&row);
        assert!(v.is_empty(), "{v:?}");
        Ok(())
    }

    #[test]
    fn baseline_breaks_in_the_other_technology_shape() -> Result<(), Box<dyn std::error::Error>> {
        // The point of the paper: the generator port to another deck is
        // free, the hand-coordinate version must be re-derived. Here both
        // happen to consume rules through the API, so the baseline *does*
        // port — but its contact math silently assumes the metal and base
        // enclosures are equal. Assert the decks keep that assumption so
        // the comparison stays fair.
        for t in [Tech::bicmos_1u(), Tech::cmos_08()] {
            let poly = t.layer("poly")?;
            let ct = t.layer("contact")?;
            let m1 = t.layer("metal1")?;
            assert_eq!(t.enclosure(poly, ct), t.enclosure(m1, ct), "{}", t.name());
        }
        Ok(())
    }
}

//! The parameterizable analog module library.
//!
//! The paper's thesis is that *complex* module generators — not just
//! single devices — make analog layout automation practical: *"the
//! availability of complex generators, like a centroidal cross-coupled
//! differential pair with its internal wiring and with substrate or well
//! contacts, simplifies the placement and routing problem drastically and
//! yields more optimal layouts."*
//!
//! Every generator here is written the way the paper prescribes: geometry
//! comes from the primitive shape functions of [`amgen_prim`], assembly
//! from the successive compactor of [`amgen_compact`], wiring from
//! [`amgen_route`] — the designer-facing parameters are electrical
//! (widths, lengths, finger counts), never coordinates.
//!
//! | module | paper reference |
//! |---|---|
//! | [`contact_row`](contact_row::contact_row) | Fig. 2/3 |
//! | [`mos_transistor`] | the `Trans` entity of Fig. 7 |
//! | [`diff_pair`](diffpair::diff_pair) | Figs. 6/7 |
//! | [`interdigitated`](interdigit::interdigitated) | blocks A/C of §3 |
//! | [`centroid_diff_pair`](centroid::centroid_diff_pair) | Fig. 10 / block E |
//! | [`current_mirror`](mirror::current_mirror) | block B |
//! | [`cascode_pair`](cascode::cascode_pair) | block A |
//! | [`bipolar_npn`](bipolar::bipolar_npn) | block F |
//! | [`guard_ring`](guard::guard_ring) | substrate contacts / latch-up |
//! | [`baseline`] | the coordinate-level style of ref. \[11\] |

mod cached;

pub mod baseline;
pub mod bipolar;
pub mod capacitor;
pub mod cascode;
pub mod centroid;
pub mod contact_row;
pub mod diffpair;
pub mod diode;
pub mod error;
pub mod guard;
pub mod interdigit;
pub mod mirror;
pub mod mos;
pub mod quad;
pub mod resistor;
pub mod stacked;

pub use contact_row::{contact_row, ContactRowParams};
pub use error::ModgenError;
pub use mos::{mos_transistor, MosParams, MosType};

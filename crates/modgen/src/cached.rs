//! Shared cache-entry plumbing for the module generators.
//!
//! Every public generator funnels through [`module_key`]: when the
//! context has an active [`GenCache`](amgen_core::GenCache) the
//! generator's designer-facing parameters are canonicalized into a
//! [`GenKey`] (entity name + compiled-rule brand + parameter vector)
//! and the build runs through
//! [`GenCtx::generate_cached`](amgen_core::GenCtx::generate_cached);
//! with caching inactive the key closure never runs and the build is
//! exactly the pre-cache code path.
//!
//! # α-renaming of net labels
//!
//! Net (and port) labels are *designer-facing addresses*, not geometry:
//! `mos_finger(.., "g1", "d1", ..)` and `mos_finger(.., "g2", "s", ..)`
//! produce structurally identical layouts that differ only in labels.
//! Keying on the labels would give every such call its own cache entry
//! and defeat intra-build dedup (a diff pair's two fingers, a centroid
//! quad's four). Generators whose labels are pure relabelings therefore
//! cache the *canonical* form: the key omits the labels, the build runs
//! under reserved placeholder labels ([`ALPHA_A`]/[`ALPHA_B`]), and the
//! served module — hit or miss — is α-renamed to the caller's labels via
//! [`LayoutObject::rename_label`](amgen_db::LayoutObject::rename_label).
//! Placeholders start with a control byte no parser or caller can
//! produce, so they can never collide with real labels.

use amgen_core::{GenCtx, GenKey};

use crate::mos::MosType;

/// First canonical placeholder label (a gate net, a row net).
pub(crate) const ALPHA_A: &str = "\u{1}a";
/// Second canonical placeholder label.
pub(crate) const ALPHA_B: &str = "\u{1}b";

/// Builds the canonical key for a built-in generator, or `None` when
/// caching is inactive (no cache installed, or a fault hook is — chaos
/// runs must probe every site).
pub(crate) fn module_key(
    ctx: &GenCtx,
    name: &str,
    fill: impl FnOnce(&mut GenKey),
) -> Option<GenKey> {
    if !ctx.cache_active() {
        return None;
    }
    let mut key = GenKey::module(name, ctx.id());
    fill(&mut key);
    Some(key)
}

/// Stable key code for a device polarity.
pub(crate) fn mos_code(m: MosType) -> u64 {
    match m {
        MosType::N => 0,
        MosType::P => 1,
    }
}

//! The compiled design-rule kernel.
//!
//! [`Tech`] is the *editable* rule database: string-keyed layers and
//! `HashMap`-backed pair rules, convenient for the tech-file parser and
//! the builder but wrong for the innermost loop of the generator, where
//! every primitive placement and compaction probe asks for a spacing or
//! an enclosure. [`RuleSet`] is the same information compiled once into
//! dense `n_layers × n_layers` tables and flat per-layer arrays so that
//! every hot-path query is a bounds-checked array index — no hashing, no
//! string comparison, no allocation.
//!
//! A `RuleSet` keeps the technology id of the [`Tech`] it was compiled
//! from, so [`Layer`] handles interchange freely between the two; using a
//! handle from a different technology still panics, exactly like `Tech`.
//!
//! The kernel also interns the *well-known* layer names the module
//! library relies on (`poly`, `metal1`, `contact`, ...) at compile time;
//! generators fetch them through accessors like [`RuleSet::poly`] that
//! return a proper [`TechError`] when a deck lacks the layer, instead of
//! resolving strings per call.
//!
//! For observability the kernel carries an optional rule-query counter
//! (see [`RuleSet::set_query_counting`]); it is off by default so the
//! per-query cost is a single relaxed load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::TechError;
use crate::layer::{Layer, LayerInfo, LayerKind};
use crate::tech::{CapCoeffs, Coord, Tech};

/// Sentinel in the dense spacing table for "no rule declared" (the pair
/// is unconstrained and may overlap freely). Distinct from an explicit
/// `space a b 0` rule, which compacts to abutment but forbids nothing.
const NO_SPACE_RULE: Coord = Coord::MIN;
/// Sentinel in the flat cut-size array for non-cut layers.
const NO_CUT_SIZE: Coord = -1;
/// Sentinel in the flat sheet-resistance array for "not declared".
const NO_SHEET_RES: i64 = i64::MIN;

/// The layer names interned at compile time for the module library.
const KNOWN_NAMES: [&str; 13] = [
    "poly", "metal1", "metal2", "contact", "via1", "ndiff", "pdiff", "nwell", "nplus", "pplus",
    "base", "emitter", "buried",
];

/// A compiled, immutable design-rule kernel.
///
/// Built once from a [`Tech`] via [`Tech::compile`] (or
/// [`Tech::compile_arc`] for sharing) and then consumed read-only by
/// every pipeline stage. All pair rules live in dense `n × n` tables
/// indexed by `a.index() * n + b.index()`; all per-layer rules live in
/// flat arrays.
#[derive(Debug)]
pub struct RuleSet {
    tech_id: u32,
    name: String,
    grid: Coord,
    latchup_distance: Coord,
    n: usize,
    infos: Vec<LayerInfo>,
    /// Name → index, used only by the front ends (dsl binding, tests).
    by_name: HashMap<String, u16>,
    min_width: Vec<Coord>,
    /// Symmetric; both `(a,b)` and `(b,a)` entries are filled.
    space: Vec<Coord>,
    /// Directional: `enclosure[outer * n + inner]`.
    enclosure: Vec<Coord>,
    /// Directional: `extension[a * n + b]`.
    extension: Vec<Coord>,
    cut_size: Vec<Coord>,
    cap: Vec<CapCoeffs>,
    sheet_res_mohm: Vec<i64>,
    min_area_um2: Vec<f64>,
    /// All declared `(cut, a, b)` connections, as resolved handles.
    connections: Vec<(Layer, Layer, Layer)>,
    /// Per-layer slice of conductor pairs connected by that cut layer.
    cut_pairs: Vec<Vec<(Layer, Layer)>>,
    /// Interned well-known handles, in [`KNOWN_NAMES`] order.
    known: [Option<Layer>; KNOWN_NAMES.len()],
    counting: AtomicBool,
    queries: AtomicU64,
}

impl Tech {
    /// Compiles this technology into a dense [`RuleSet`] kernel.
    pub fn compile(&self) -> RuleSet {
        let n = self.layers.len();
        let id = self.id;
        let at = |i: u16| Layer {
            tech_id: id,
            index: i,
        };

        let mut space = vec![NO_SPACE_RULE; n * n];
        for (&(a, b), &s) in &self.min_space {
            space[a as usize * n + b as usize] = s;
            space[b as usize * n + a as usize] = s;
        }
        let mut enclosure = vec![0; n * n];
        for (&(o, i), &e) in &self.enclosure {
            enclosure[o as usize * n + i as usize] = e;
        }
        let mut extension = vec![0; n * n];
        for (&(a, b), &e) in &self.extension {
            extension[a as usize * n + b as usize] = e;
        }
        let mut cut_pairs = vec![Vec::new(); n];
        for &(c, a, b) in &self.connections {
            cut_pairs[c as usize].push((at(a), at(b)));
        }
        let known = KNOWN_NAMES.map(|name| self.by_name.get(name).map(|&i| at(i)));

        RuleSet {
            tech_id: id,
            name: self.name.clone(),
            grid: self.grid,
            latchup_distance: self.latchup_distance,
            n,
            infos: self.layers.clone(),
            by_name: self.by_name.clone(),
            min_width: self.min_width.clone(),
            space,
            enclosure,
            extension,
            cut_size: self
                .cut_size
                .iter()
                .map(|c| c.unwrap_or(NO_CUT_SIZE))
                .collect(),
            cap: self.cap.clone(),
            sheet_res_mohm: self
                .sheet_res_mohm
                .iter()
                .map(|r| r.unwrap_or(NO_SHEET_RES))
                .collect(),
            min_area_um2: self.min_area_um2.clone(),
            connections: self
                .connections
                .iter()
                .map(|&(c, a, b)| (at(c), at(a), at(b)))
                .collect(),
            cut_pairs,
            known,
            counting: AtomicBool::new(false),
            queries: AtomicU64::new(0),
        }
    }

    /// Compiles into a shareable [`Arc<RuleSet>`] — the form every
    /// pipeline stage holds.
    pub fn compile_arc(&self) -> Arc<RuleSet> {
        Arc::new(self.compile())
    }
}

impl RuleSet {
    /// Parses tech-file text and compiles it in one step.
    pub fn parse(text: &str) -> Result<RuleSet, TechError> {
        Ok(Tech::parse(text)?.compile())
    }

    #[inline]
    fn count(&self) {
        if self.counting.load(Ordering::Relaxed) {
            self.queries.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    fn check(&self, l: Layer) -> usize {
        assert_eq!(
            l.tech_id, self.tech_id,
            "layer handle from technology {} used with technology {} ({})",
            l.tech_id, self.tech_id, self.name
        );
        l.index as usize
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Id of the technology this kernel was compiled from (brands
    /// [`Layer`] handles — they interchange with the source [`Tech`]).
    pub fn id(&self) -> u32 {
        self.tech_id
    }

    /// Manufacturing grid in du.
    #[inline]
    pub fn grid(&self) -> Coord {
        self.grid
    }

    /// Maximum distance a substrate contact "covers" for the latch-up
    /// rule.
    #[inline]
    pub fn latchup_distance(&self) -> Coord {
        self.latchup_distance
    }

    /// Looks a layer up by name. Front-end use only (dsl binding,
    /// tech-file tooling, tests); generators hold interned handles.
    pub fn layer(&self, name: &str) -> Result<Layer, TechError> {
        self.by_name
            .get(name)
            .map(|&index| Layer {
                tech_id: self.tech_id,
                index,
            })
            .ok_or_else(|| TechError::UnknownLayer(name.to_string()))
    }

    /// Number of layers.
    #[inline]
    pub fn layer_count(&self) -> usize {
        self.n
    }

    /// Iterates over all layer handles.
    pub fn layers(&self) -> impl Iterator<Item = Layer> + '_ {
        let id = self.tech_id;
        (0..self.n as u16).map(move |index| Layer { tech_id: id, index })
    }

    /// Static info of a layer.
    #[inline]
    pub fn info(&self, l: Layer) -> &LayerInfo {
        &self.infos[self.check(l)]
    }

    /// Layer name.
    #[inline]
    pub fn layer_name(&self, l: Layer) -> &str {
        &self.info(l).name
    }

    /// Layer kind.
    #[inline]
    pub fn kind(&self, l: Layer) -> LayerKind {
        self.info(l).kind
    }

    /// Minimum feature width of a layer (0 when unspecified).
    #[inline]
    pub fn min_width(&self, l: Layer) -> Coord {
        self.count();
        self.min_width[self.check(l)]
    }

    /// Minimum spacing between shapes on `a` and `b`; `None` when the
    /// pair is unconstrained.
    #[inline]
    pub fn min_spacing(&self, a: Layer, b: Layer) -> Option<Coord> {
        self.count();
        let s = self.space[self.check(a) * self.n + self.check(b)];
        (s != NO_SPACE_RULE).then_some(s)
    }

    /// Spacing required between *disconnected* shapes on `a` and `b`,
    /// defaulting to 0 when no rule exists.
    #[inline]
    pub fn clearance(&self, a: Layer, b: Layer) -> Coord {
        self.count();
        let s = self.space[self.check(a) * self.n + self.check(b)];
        if s == NO_SPACE_RULE {
            0
        } else {
            s
        }
    }

    /// Required enclosure of `inner` by `outer` on every side (0 when no
    /// rule exists).
    #[inline]
    pub fn enclosure(&self, outer: Layer, inner: Layer) -> Coord {
        self.count();
        self.enclosure[self.check(outer) * self.n + self.check(inner)]
    }

    /// Required extension of `a` beyond `b`; 0 when no rule exists.
    #[inline]
    pub fn extension(&self, a: Layer, b: Layer) -> Coord {
        self.count();
        self.extension[self.check(a) * self.n + self.check(b)]
    }

    /// Fixed square size of a cut layer.
    #[inline]
    pub fn cut_size(&self, l: Layer) -> Result<Coord, TechError> {
        self.count();
        let s = self.cut_size[self.check(l)];
        if s == NO_CUT_SIZE {
            Err(TechError::MissingRule(format!(
                "cutsize {}",
                self.layer_name(l)
            )))
        } else {
            Ok(s)
        }
    }

    /// True if cut layer `cut` connects conductors `a` and `b` (in
    /// either order).
    #[inline]
    pub fn connects(&self, cut: Layer, a: Layer, b: Layer) -> bool {
        self.count();
        let (ia, ib) = (self.check(a), self.check(b));
        self.cut_pairs[self.check(cut)].iter().any(|&(x, y)| {
            (x.index as usize == ia && y.index as usize == ib)
                || (x.index as usize == ib && y.index as usize == ia)
        })
    }

    /// The conductor pairs connected by `cut` — a borrowed slice; the
    /// compact/drc inner loops iterate this without allocating.
    #[inline]
    pub fn connected_pairs(&self, cut: Layer) -> &[(Layer, Layer)] {
        self.count();
        &self.cut_pairs[self.check(cut)]
    }

    /// All declared connections `(cut, a, b)`.
    pub fn connections(&self) -> &[(Layer, Layer, Layer)] {
        &self.connections
    }

    /// Parasitic capacitance coefficients of a layer (zero when unset).
    #[inline]
    pub fn cap_coeffs(&self, l: Layer) -> CapCoeffs {
        self.count();
        self.cap[self.check(l)]
    }

    /// Sheet resistance in mΩ/□, if declared.
    #[inline]
    pub fn sheet_res_mohm(&self, l: Layer) -> Option<i64> {
        self.count();
        let r = self.sheet_res_mohm[self.check(l)];
        (r != NO_SHEET_RES).then_some(r)
    }

    /// Minimum area of a merged region on this layer, in µm² (0 when no
    /// rule is declared).
    #[inline]
    pub fn min_area_um2(&self, l: Layer) -> f64 {
        self.count();
        self.min_area_um2[self.check(l)]
    }

    /// Snaps a coordinate down to the manufacturing grid.
    #[inline]
    pub fn snap_down(&self, v: Coord) -> Coord {
        v.div_euclid(self.grid) * self.grid
    }

    /// Snaps a coordinate up to the manufacturing grid.
    #[inline]
    pub fn snap_up(&self, v: Coord) -> Coord {
        -self.snap_down(-v)
    }

    // ---- query counting ------------------------------------------------

    /// Enables or disables the rule-query counter. Off by default, so the
    /// steady-state cost is a single relaxed boolean load per query.
    pub fn set_query_counting(&self, on: bool) {
        self.counting.store(on, Ordering::Relaxed);
    }

    /// Number of rule queries answered since the last reset (0 unless
    /// counting was enabled).
    pub fn rule_queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Resets the rule-query counter.
    pub fn reset_rule_queries(&self) {
        self.queries.store(0, Ordering::Relaxed);
    }

    // ---- interned well-known layers ------------------------------------

    #[inline]
    fn known(&self, slot: usize) -> Result<Layer, TechError> {
        self.known[slot].ok_or_else(|| TechError::UnknownLayer(KNOWN_NAMES[slot].to_string()))
    }

    /// The interned `poly` layer.
    pub fn poly(&self) -> Result<Layer, TechError> {
        self.known(0)
    }

    /// The interned `metal1` layer.
    pub fn metal1(&self) -> Result<Layer, TechError> {
        self.known(1)
    }

    /// The interned `metal2` layer.
    pub fn metal2(&self) -> Result<Layer, TechError> {
        self.known(2)
    }

    /// The interned `contact` layer.
    pub fn contact(&self) -> Result<Layer, TechError> {
        self.known(3)
    }

    /// The interned `via1` layer.
    pub fn via1(&self) -> Result<Layer, TechError> {
        self.known(4)
    }

    /// The interned `ndiff` layer.
    pub fn ndiff(&self) -> Result<Layer, TechError> {
        self.known(5)
    }

    /// The interned `pdiff` layer.
    pub fn pdiff(&self) -> Result<Layer, TechError> {
        self.known(6)
    }

    /// The interned `nwell` layer.
    pub fn nwell(&self) -> Result<Layer, TechError> {
        self.known(7)
    }

    /// The interned `nplus` implant layer.
    pub fn nplus(&self) -> Result<Layer, TechError> {
        self.known(8)
    }

    /// The interned `pplus` implant layer.
    pub fn pplus(&self) -> Result<Layer, TechError> {
        self.known(9)
    }

    /// The interned bipolar `base` layer.
    pub fn base(&self) -> Result<Layer, TechError> {
        self.known(10)
    }

    /// The interned bipolar `emitter` layer.
    pub fn emitter(&self) -> Result<Layer, TechError> {
        self.known(11)
    }

    /// The interned `buried` (subcollector) layer.
    pub fn buried(&self) -> Result<Layer, TechError> {
        self.known(12)
    }
}

/// Rule equivalence: every dense table element-wise equal, plus the layer
/// roster, grid and latch-up distance. Technology ids and the query
/// counter are deliberately ignored — two decks parsed from the same text
/// are equal even though their handles don't interchange.
impl PartialEq for RuleSet {
    fn eq(&self, other: &RuleSet) -> bool {
        let pairs_eq = |a: &[(Layer, Layer)], b: &[(Layer, Layer)]| {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|(x, y)| x.0.index == y.0.index && x.1.index == y.1.index)
        };
        self.name == other.name
            && self.grid == other.grid
            && self.latchup_distance == other.latchup_distance
            && self.n == other.n
            && self.infos == other.infos
            && self.min_width == other.min_width
            && self.space == other.space
            && self.enclosure == other.enclosure
            && self.extension == other.extension
            && self.cut_size == other.cut_size
            && self.cap == other.cap
            && self.sheet_res_mohm == other.sheet_res_mohm
            && self.min_area_um2 == other.min_area_um2
            && self
                .cut_pairs
                .iter()
                .zip(&other.cut_pairs)
                .all(|(a, b)| pairs_eq(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_queries_match_the_source_tech() {
        for t in [Tech::bicmos_1u(), Tech::cmos_08()] {
            let r = t.compile();
            assert_eq!(r.id(), t.id());
            assert_eq!(r.layer_count(), t.layer_count());
            for a in t.layers() {
                assert_eq!(r.min_width(a), t.min_width(a));
                assert_eq!(r.cut_size(a).ok(), t.cut_size(a).ok());
                assert_eq!(r.cap_coeffs(a), t.cap_coeffs(a));
                assert_eq!(r.sheet_res_mohm(a), t.sheet_res_mohm(a));
                assert_eq!(r.min_area_um2(a), t.min_area_um2(a));
                assert_eq!(r.kind(a), t.kind(a));
                assert_eq!(r.layer_name(a), t.layer_name(a));
                for b in t.layers() {
                    assert_eq!(r.min_spacing(a, b), t.min_spacing(a, b));
                    assert_eq!(r.clearance(a, b), t.clearance(a, b));
                    assert_eq!(r.enclosure(a, b), t.enclosure(a, b));
                    assert_eq!(r.extension(a, b), t.extension(a, b));
                    for c in t.layers() {
                        if t.kind(c).is_cut() {
                            assert_eq!(r.connects(c, a, b), t.connects(c, a, b));
                        }
                    }
                }
                if t.kind(a).is_cut() {
                    assert_eq!(r.connected_pairs(a), t.connected_pairs(a).as_slice());
                }
            }
        }
    }

    #[test]
    fn handles_interchange_with_the_source_tech() {
        let t = Tech::bicmos_1u();
        let r = t.compile();
        let poly = t.layer("poly").unwrap();
        assert_eq!(r.min_width(poly), t.min_width(poly));
        let poly2 = r.layer("poly").unwrap();
        assert_eq!(poly, poly2);
    }

    #[test]
    #[should_panic(expected = "layer handle from technology")]
    fn cross_tech_handle_panics() {
        let r = Tech::bicmos_1u().compile();
        let foreign = Tech::cmos_08().layer("poly").unwrap();
        let _ = r.min_width(foreign);
    }

    #[test]
    fn query_counter_is_gated() {
        let r = Tech::bicmos_1u().compile();
        let poly = r.poly().unwrap();
        let _ = r.min_width(poly);
        assert_eq!(r.rule_queries(), 0, "counting is off by default");
        r.set_query_counting(true);
        let _ = r.min_width(poly);
        let _ = r.min_spacing(poly, poly);
        assert_eq!(r.rule_queries(), 2);
        r.reset_rule_queries();
        assert_eq!(r.rule_queries(), 0);
    }

    #[test]
    fn well_known_layers_are_interned() {
        let r = Tech::bicmos_1u().compile();
        assert_eq!(r.poly().unwrap(), r.layer("poly").unwrap());
        assert_eq!(r.emitter().unwrap(), r.layer("emitter").unwrap());
        let c = Tech::cmos_08().compile();
        assert!(c.base().is_err(), "plain CMOS deck has no bipolar layers");
    }

    #[test]
    fn explicit_zero_space_differs_from_no_rule() {
        let t = Tech::bicmos_1u();
        let r = t.compile();
        let mut saw_zero = false;
        let mut saw_none = false;
        for a in t.layers() {
            for b in t.layers() {
                match r.min_spacing(a, b) {
                    Some(0) => saw_zero = true,
                    None => saw_none = true,
                    _ => {}
                }
                assert_eq!(r.min_spacing(a, b), t.min_spacing(a, b));
            }
        }
        assert!(saw_none, "deck has unconstrained pairs");
        let _ = saw_zero;
    }

    #[test]
    fn ruleset_equality_ignores_tech_id() {
        let a = Tech::bicmos_1u().compile();
        let b = Tech::bicmos_1u().compile();
        assert_ne!(a.id(), b.id());
        assert_eq!(a, b);
        let c = Tech::cmos_08().compile();
        assert_ne!(a, c);
    }
}

//! Technology description for the analog module generator environment.
//!
//! The paper stores all design rules in a *technology description file* so
//! that modules written in the layout description language stay
//! technology-independent: *"the design rules are stored in a technology
//! description file"* and *"the implemented language interpreter evaluates
//! and fulfills the design rules automatically"*.
//!
//! This crate provides:
//!
//! * [`Layer`] / [`LayerKind`] — mask layers with their electrical role,
//! * [`Tech`] — the rule database: minimum widths, intra- and inter-layer
//!   spacings, enclosures, extensions, cut sizes, connectivity through cut
//!   layers, parasitic coefficients and the latch-up coverage distance,
//! * a tiny line-oriented **tech-file format** ([`Tech::parse`] /
//!   [`Tech::to_tech_file`]) so decks are human-diffable like the paper's,
//! * two built-in decks: [`Tech::bicmos_1u`], a synthetic 1 µm BiCMOS
//!   process standing in for the proprietary Siemens process of the
//!   paper's §3, and [`Tech::cmos_08`], a plain 0.8 µm CMOS deck used to
//!   demonstrate technology independence.
//!
//! # Example
//!
//! ```
//! use amgen_tech::Tech;
//!
//! let tech = Tech::bicmos_1u();
//! let poly = tech.layer("poly").unwrap();
//! let contact = tech.layer("contact").unwrap();
//! let metal1 = tech.layer("metal1").unwrap();
//! assert!(tech.min_width(poly) > 0);
//! // A contact inside metal1 needs an enclosure on every side:
//! assert!(tech.enclosure(metal1, contact) > 0);
//! // Contacts connect poly to metal1:
//! assert!(tech.connects(contact, poly, metal1));
//! ```

pub mod builtin;
pub mod error;
pub mod file;
pub mod layer;
pub mod ruleset;
pub mod tech;

pub use error::TechError;
pub use layer::{Layer, LayerInfo, LayerKind};
pub use ruleset::RuleSet;
pub use tech::{CapCoeffs, Tech};

//! The tech-file format: a tiny line-oriented rule deck.
//!
//! The paper keeps design rules in a *technology description file* separate
//! from module code. The format here is deliberately minimal so decks stay
//! reviewable:
//!
//! ```text
//! tech bicmos_1u          # header, exactly once
//! grid 50                 # manufacturing grid, du
//! latchup 50000           # latch-up coverage distance, du
//! layer poly poly 10      # name kind gds-layer [gds-datatype]
//! width poly 1000
//! space poly poly 1500    # symmetric pair spacing
//! enclose metal1 contact 500
//! extend poly pdiff 1000
//! cutsize contact 1000
//! connect contact poly metal1
//! cap metal1 30 80        # aF/um^2  aF/um
//! sheetres poly 25000     # milliohm per square
//! ```
//!
//! `#` starts a comment; blank lines are ignored.

use crate::error::TechError;
use crate::layer::LayerKind;
use crate::tech::{Tech, TechBuilder};

impl Tech {
    /// Parses a technology from tech-file text.
    ///
    /// # Example
    /// ```
    /// use amgen_tech::Tech;
    /// let deck = "tech demo\nlayer poly poly 10\nwidth poly 1000\n";
    /// let t = Tech::parse(deck).unwrap();
    /// assert_eq!(t.name(), "demo");
    /// assert_eq!(t.min_width(t.layer("poly").unwrap()), 1000);
    /// ```
    pub fn parse(text: &str) -> Result<Tech, TechError> {
        let mut builder: Option<TechBuilder> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut it = content.split_whitespace();
            let keyword = it.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = it.collect();
            let err = |message: String| TechError::Parse { line, message };
            let int = |s: &str| -> Result<i64, TechError> {
                s.parse::<i64>()
                    .map_err(|_| err(format!("expected integer, got `{s}`")))
            };
            let float = |s: &str| -> Result<f64, TechError> {
                s.parse::<f64>()
                    .map_err(|_| err(format!("expected number, got `{s}`")))
            };
            if keyword == "tech" {
                if builder.is_some() {
                    return Err(err("duplicate `tech` header".into()));
                }
                let name = rest
                    .first()
                    .ok_or_else(|| err("`tech` needs a name".into()))?;
                builder = Some(Tech::builder(*name));
                continue;
            }
            let b = builder
                .take()
                .ok_or_else(|| err("first line must be `tech <name>`".into()))?;
            let b = match (keyword, rest.as_slice()) {
                ("grid", [g]) => b.grid(int(g)?),
                ("latchup", [d]) => b.latchup_distance(int(d)?),
                ("layer", [name, kind, gds]) => {
                    let k = LayerKind::parse(kind)
                        .ok_or_else(|| err(format!("unknown layer kind `{kind}`")))?;
                    b.layer(name, k, int(gds)? as i16)?
                }
                ("layer", [name, kind, gds, dt]) => {
                    let k = LayerKind::parse(kind)
                        .ok_or_else(|| err(format!("unknown layer kind `{kind}`")))?;
                    let mut b = b.layer(name, k, int(gds)? as i16)?;
                    // Patch the datatype of the just-added layer.
                    b.set_last_datatype(int(dt)? as i16);
                    b
                }
                ("width", [l, w]) => b.width(l, int(w)?)?,
                ("space", [a, bb, s]) => b.space(a, bb, int(s)?)?,
                ("enclose", [o, i, e]) => b.enclose(o, i, int(e)?)?,
                ("extend", [a, bb, e]) => b.extend(a, bb, int(e)?)?,
                ("cutsize", [l, s]) => b.cut_size(l, int(s)?)?,
                ("connect", [c, a, bb]) => b.connect(c, a, bb)?,
                ("cap", [l, area, fringe]) => b.cap(l, float(area)?, float(fringe)?)?,
                ("sheetres", [l, r]) => b.sheet_res(l, int(r)?)?,
                ("minarea", [l, a]) => b.min_area(l, float(a)?)?,
                _ => {
                    return Err(err(format!(
                        "unrecognised statement `{keyword}` with {} argument(s)",
                        rest.len()
                    )))
                }
            };
            builder = Some(b);
        }
        builder
            .ok_or(TechError::Parse {
                line: 0,
                message: "empty tech file".into(),
            })?
            .build()
    }

    /// Serialises the technology back to tech-file text.
    ///
    /// `Tech::parse(&t.to_tech_file())` reproduces an equivalent deck.
    pub fn to_tech_file(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("tech {}\n", self.name()));
        out.push_str(&format!("grid {}\n", self.grid()));
        if self.latchup_distance() > 0 {
            out.push_str(&format!("latchup {}\n", self.latchup_distance()));
        }
        for l in self.layers() {
            let info = self.info(l);
            if info.gds_datatype != 0 {
                out.push_str(&format!(
                    "layer {} {} {} {}\n",
                    info.name,
                    info.kind.keyword(),
                    info.gds_layer,
                    info.gds_datatype
                ));
            } else {
                out.push_str(&format!(
                    "layer {} {} {}\n",
                    info.name,
                    info.kind.keyword(),
                    info.gds_layer
                ));
            }
        }
        for l in self.layers() {
            let w = self.min_width(l);
            if w > 0 {
                out.push_str(&format!("width {} {}\n", self.layer_name(l), w));
            }
        }
        let layers: Vec<_> = self.layers().collect();
        for (i, &a) in layers.iter().enumerate() {
            for &b in &layers[i..] {
                if let Some(s) = self.min_spacing(a, b) {
                    out.push_str(&format!(
                        "space {} {} {}\n",
                        self.layer_name(a),
                        self.layer_name(b),
                        s
                    ));
                }
            }
        }
        for &o in &layers {
            for &i in &layers {
                let e = self.enclosure(o, i);
                if e > 0 {
                    out.push_str(&format!(
                        "enclose {} {} {}\n",
                        self.layer_name(o),
                        self.layer_name(i),
                        e
                    ));
                }
            }
        }
        for &a in &layers {
            for &b in &layers {
                let e = self.extension(a, b);
                if e > 0 {
                    out.push_str(&format!(
                        "extend {} {} {}\n",
                        self.layer_name(a),
                        self.layer_name(b),
                        e
                    ));
                }
            }
        }
        for &l in &layers {
            if let Ok(s) = self.cut_size(l) {
                out.push_str(&format!("cutsize {} {}\n", self.layer_name(l), s));
            }
        }
        for (c, a, b) in self.connections() {
            out.push_str(&format!(
                "connect {} {} {}\n",
                self.layer_name(c),
                self.layer_name(a),
                self.layer_name(b)
            ));
        }
        for &l in &layers {
            let cc = self.cap_coeffs(l);
            if cc.area_af_per_um2 != 0.0 || cc.fringe_af_per_um != 0.0 {
                out.push_str(&format!(
                    "cap {} {} {}\n",
                    self.layer_name(l),
                    cc.area_af_per_um2,
                    cc.fringe_af_per_um
                ));
            }
        }
        for &l in &layers {
            if let Some(r) = self.sheet_res_mohm(l) {
                out.push_str(&format!("sheetres {} {}\n", self.layer_name(l), r));
            }
        }
        for &l in &layers {
            let a = self.min_area_um2(l);
            if a > 0.0 {
                out.push_str(&format!("minarea {} {}\n", self.layer_name(l), a));
            }
        }
        out
    }
}

impl TechBuilder {
    /// Patches the GDS datatype of the most recently added layer (parser
    /// support for the 4-argument `layer` statement).
    fn set_last_datatype(&mut self, dt: i16) {
        if let Some(info) = self.last_layer_mut() {
            info.gds_datatype = dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = "\
# demo deck
tech demo
grid 50
latchup 40000
layer poly poly 10
layer metal1 metal 20 7
layer contact cut 15
width poly 1000
width metal1 1500
space poly poly 1500
space metal1 metal1 1500
enclose metal1 contact 500
enclose poly contact 500
extend poly metal1 250
cutsize contact 1000
connect contact poly metal1
cap metal1 30 80
sheetres poly 25000
";

    #[test]
    fn parses_full_deck() {
        let t = Tech::parse(DECK).unwrap();
        assert_eq!(t.name(), "demo");
        assert_eq!(t.grid(), 50);
        assert_eq!(t.latchup_distance(), 40_000);
        let m1 = t.layer("metal1").unwrap();
        assert_eq!(t.info(m1).gds_datatype, 7);
        assert_eq!(t.min_width(m1), 1_500);
        let ct = t.layer("contact").unwrap();
        assert_eq!(t.cut_size(ct).unwrap(), 1_000);
        let poly = t.layer("poly").unwrap();
        assert_eq!(t.extension(poly, m1), 250);
        assert!(t.connects(ct, poly, m1));
    }

    #[test]
    fn round_trip_is_equivalent() {
        let t = Tech::parse(DECK).unwrap();
        let text = t.to_tech_file();
        let t2 = Tech::parse(&text).unwrap();
        assert_eq!(t.name(), t2.name());
        assert_eq!(t.grid(), t2.grid());
        assert_eq!(t.latchup_distance(), t2.latchup_distance());
        assert_eq!(t.layer_count(), t2.layer_count());
        for (a, b) in t.layers().zip(t2.layers()) {
            assert_eq!(t.info(a), t2.info(b));
            assert_eq!(t.min_width(a), t2.min_width(b));
            assert_eq!(t.cap_coeffs(a), t2.cap_coeffs(b));
            assert_eq!(t.sheet_res_mohm(a), t2.sheet_res_mohm(b));
        }
        let pairs: Vec<_> = t.layers().collect();
        for &a in &pairs {
            let a2 = t2.layer(t.layer_name(a)).unwrap();
            for &b in &pairs {
                let b2 = t2.layer(t.layer_name(b)).unwrap();
                assert_eq!(t.min_spacing(a, b), t2.min_spacing(a2, b2));
                assert_eq!(t.enclosure(a, b), t2.enclosure(a2, b2));
                assert_eq!(t.extension(a, b), t2.extension(a2, b2));
            }
        }
    }

    #[test]
    fn missing_header_is_an_error() {
        let e = Tech::parse("grid 50\n").unwrap_err();
        assert!(matches!(e, TechError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(Tech::parse("# nothing here\n").is_err());
    }

    #[test]
    fn unknown_statement_reports_line() {
        let deck = "tech x\nfrobnicate a b\n";
        let e = Tech::parse(deck).unwrap_err();
        assert!(matches!(e, TechError::Parse { line: 2, .. }));
    }

    #[test]
    fn bad_integer_reports_line() {
        let deck = "tech x\nlayer poly poly ten\n";
        let e = Tech::parse(deck).unwrap_err();
        assert!(matches!(e, TechError::Parse { line: 2, .. }));
    }

    #[test]
    fn unknown_kind_reports_line() {
        let deck = "tech x\nlayer poly mystery 10\n";
        let e = Tech::parse(deck).unwrap_err();
        assert!(matches!(e, TechError::Parse { line: 2, .. }));
    }

    #[test]
    fn rule_for_undeclared_layer_fails() {
        let deck = "tech x\nwidth poly 100\n";
        assert!(matches!(Tech::parse(deck), Err(TechError::UnknownLayer(_))));
    }

    #[test]
    fn duplicate_header_rejected() {
        let deck = "tech x\ntech y\n";
        assert!(matches!(
            Tech::parse(deck),
            Err(TechError::Parse { line: 2, .. })
        ));
    }
}

//! The technology rule database.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::error::TechError;
use crate::layer::{Layer, LayerInfo, LayerKind};

/// Coordinate type re-declared locally (1 du = 1 nm) to keep this crate
/// free of a geometry dependency; it matches `amgen_geom::Coord`.
pub type Coord = i64;

static NEXT_TECH_ID: AtomicU32 = AtomicU32::new(1);

/// Parasitic capacitance coefficients of a conductor layer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CapCoeffs {
    /// Area capacitance to substrate, in aF/µm².
    pub area_af_per_um2: f64,
    /// Fringe (perimeter) capacitance, in aF/µm.
    pub fringe_af_per_um: f64,
}

/// A process technology: layers plus the design-rule tables.
///
/// Build one with [`Tech::builder`], [`Tech::parse`] (tech-file text) or
/// use the built-in decks [`Tech::bicmos_1u`] / [`Tech::cmos_08`].
#[derive(Debug, Clone)]
pub struct Tech {
    pub(crate) id: u32,
    pub(crate) name: String,
    pub(crate) grid: Coord,
    pub(crate) latchup_distance: Coord,
    pub(crate) layers: Vec<LayerInfo>,
    pub(crate) by_name: HashMap<String, u16>,
    pub(crate) min_width: Vec<Coord>,
    pub(crate) min_space: HashMap<(u16, u16), Coord>,
    pub(crate) enclosure: HashMap<(u16, u16), Coord>,
    pub(crate) extension: HashMap<(u16, u16), Coord>,
    pub(crate) cut_size: Vec<Option<Coord>>,
    pub(crate) connections: Vec<(u16, u16, u16)>,
    pub(crate) cap: Vec<CapCoeffs>,
    pub(crate) sheet_res_mohm: Vec<Option<i64>>,
    pub(crate) min_area_um2: Vec<f64>,
}

/// Incremental constructor for [`Tech`].
#[derive(Debug)]
pub struct TechBuilder {
    tech: Tech,
}

impl Tech {
    /// Starts building a technology with the given name.
    pub fn builder(name: impl Into<String>) -> TechBuilder {
        TechBuilder {
            tech: Tech {
                id: NEXT_TECH_ID.fetch_add(1, Ordering::Relaxed),
                name: name.into(),
                grid: 1,
                latchup_distance: 0,
                layers: Vec::new(),
                by_name: HashMap::new(),
                min_width: Vec::new(),
                min_space: HashMap::new(),
                enclosure: HashMap::new(),
                extension: HashMap::new(),
                cut_size: Vec::new(),
                connections: Vec::new(),
                cap: Vec::new(),
                sheet_res_mohm: Vec::new(),
                min_area_um2: Vec::new(),
            },
        }
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unique id of this technology instance (brands [`Layer`] handles).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Manufacturing grid in du.
    pub fn grid(&self) -> Coord {
        self.grid
    }

    /// Maximum distance a substrate contact "covers" for the latch-up rule
    /// (the half-size of the temporary rectangles of the paper's Fig. 1).
    pub fn latchup_distance(&self) -> Coord {
        self.latchup_distance
    }

    /// Looks a layer up by name.
    pub fn layer(&self, name: &str) -> Result<Layer, TechError> {
        self.by_name
            .get(name)
            .map(|&index| Layer {
                tech_id: self.id,
                index,
            })
            .ok_or_else(|| TechError::UnknownLayer(name.to_string()))
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Iterates over all layer handles.
    pub fn layers(&self) -> impl Iterator<Item = Layer> + '_ {
        let id = self.id;
        (0..self.layers.len() as u16).map(move |index| Layer { tech_id: id, index })
    }

    fn check(&self, l: Layer) -> usize {
        assert_eq!(
            l.tech_id, self.id,
            "layer handle from technology {} used with technology {} ({})",
            l.tech_id, self.id, self.name
        );
        l.index as usize
    }

    /// Static info of a layer.
    pub fn info(&self, l: Layer) -> &LayerInfo {
        &self.layers[self.check(l)]
    }

    /// Layer name.
    pub fn layer_name(&self, l: Layer) -> &str {
        &self.info(l).name
    }

    /// Layer kind.
    pub fn kind(&self, l: Layer) -> LayerKind {
        self.info(l).kind
    }

    /// Minimum feature width of a layer (0 when unspecified).
    pub fn min_width(&self, l: Layer) -> Coord {
        self.min_width[self.check(l)]
    }

    /// Minimum spacing between shapes on `a` and `b`; `None` when the pair
    /// is unconstrained (shapes may overlap freely, e.g. implant over
    /// diffusion).
    pub fn min_spacing(&self, a: Layer, b: Layer) -> Option<Coord> {
        let (ia, ib) = (self.check(a) as u16, self.check(b) as u16);
        let key = (ia.min(ib), ia.max(ib));
        self.min_space.get(&key).copied()
    }

    /// Spacing required between *disconnected* shapes on `a` and `b`,
    /// defaulting to 0 when no rule exists (the compactor may abut them).
    pub fn clearance(&self, a: Layer, b: Layer) -> Coord {
        self.min_spacing(a, b).unwrap_or(0)
    }

    /// Required enclosure of `inner` by `outer` on every side (0 when no
    /// rule exists).
    pub fn enclosure(&self, outer: Layer, inner: Layer) -> Coord {
        let key = (self.check(outer) as u16, self.check(inner) as u16);
        self.enclosure.get(&key).copied().unwrap_or(0)
    }

    /// Required extension of `a` beyond `b` (e.g. poly gate past
    /// diffusion); 0 when no rule exists.
    pub fn extension(&self, a: Layer, b: Layer) -> Coord {
        let key = (self.check(a) as u16, self.check(b) as u16);
        self.extension.get(&key).copied().unwrap_or(0)
    }

    /// Fixed square size of a cut layer.
    pub fn cut_size(&self, l: Layer) -> Result<Coord, TechError> {
        self.cut_size[self.check(l)]
            .ok_or_else(|| TechError::MissingRule(format!("cutsize {}", self.layer_name(l))))
    }

    /// True if cut layer `cut` connects conductors `a` and `b` (in either
    /// order).
    pub fn connects(&self, cut: Layer, a: Layer, b: Layer) -> bool {
        let (ic, ia, ib) = (
            self.check(cut) as u16,
            self.check(a) as u16,
            self.check(b) as u16,
        );
        self.connections
            .iter()
            .any(|&(c, x, y)| c == ic && ((x == ia && y == ib) || (x == ib && y == ia)))
    }

    /// The conductor pairs connected by `cut`.
    pub fn connected_pairs(&self, cut: Layer) -> Vec<(Layer, Layer)> {
        let ic = self.check(cut) as u16;
        self.connections
            .iter()
            .filter(|&&(c, _, _)| c == ic)
            .map(|&(_, a, b)| {
                (
                    Layer {
                        tech_id: self.id,
                        index: a,
                    },
                    Layer {
                        tech_id: self.id,
                        index: b,
                    },
                )
            })
            .collect()
    }

    /// All declared connections `(cut, a, b)`.
    pub fn connections(&self) -> Vec<(Layer, Layer, Layer)> {
        self.connections
            .iter()
            .map(|&(c, a, b)| {
                (
                    Layer {
                        tech_id: self.id,
                        index: c,
                    },
                    Layer {
                        tech_id: self.id,
                        index: a,
                    },
                    Layer {
                        tech_id: self.id,
                        index: b,
                    },
                )
            })
            .collect()
    }

    /// Parasitic capacitance coefficients of a layer (zero when unset).
    pub fn cap_coeffs(&self, l: Layer) -> CapCoeffs {
        self.cap[self.check(l)]
    }

    /// Sheet resistance in mΩ/□, if declared.
    pub fn sheet_res_mohm(&self, l: Layer) -> Option<i64> {
        self.sheet_res_mohm[self.check(l)]
    }

    /// Minimum area of a merged region on this layer, in µm² (0 when no
    /// rule is declared).
    pub fn min_area_um2(&self, l: Layer) -> f64 {
        self.min_area_um2[self.check(l)]
    }

    /// Snaps a coordinate down to the manufacturing grid.
    pub fn snap_down(&self, v: Coord) -> Coord {
        v.div_euclid(self.grid) * self.grid
    }

    /// Snaps a coordinate up to the manufacturing grid.
    pub fn snap_up(&self, v: Coord) -> Coord {
        -self.snap_down(-v)
    }
}

impl TechBuilder {
    /// Sets the manufacturing grid (du).
    pub fn grid(mut self, g: Coord) -> TechBuilder {
        self.tech.grid = g.max(1);
        self
    }

    /// Sets the latch-up coverage distance (du).
    pub fn latchup_distance(mut self, d: Coord) -> TechBuilder {
        self.tech.latchup_distance = d;
        self
    }

    /// Declares a layer; errors on duplicates.
    pub fn layer(
        mut self,
        name: &str,
        kind: LayerKind,
        gds_layer: i16,
    ) -> Result<TechBuilder, TechError> {
        if self.tech.by_name.contains_key(name) {
            return Err(TechError::DuplicateLayer(name.to_string()));
        }
        let index = self.tech.layers.len() as u16;
        self.tech.layers.push(LayerInfo::new(name, kind, gds_layer));
        self.tech.by_name.insert(name.to_string(), index);
        self.tech.min_width.push(0);
        self.tech.cut_size.push(None);
        self.tech.cap.push(CapCoeffs::default());
        self.tech.sheet_res_mohm.push(None);
        self.tech.min_area_um2.push(0.0);
        Ok(self)
    }

    fn idx(&self, name: &str) -> Result<u16, TechError> {
        self.tech
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| TechError::UnknownLayer(name.to_string()))
    }

    fn positive(rule: &str, v: Coord) -> Result<Coord, TechError> {
        if v < 0 {
            Err(TechError::InvalidValue {
                rule: rule.to_string(),
                value: v,
            })
        } else {
            Ok(v)
        }
    }

    /// Sets a minimum width rule.
    pub fn width(mut self, layer: &str, w: Coord) -> Result<TechBuilder, TechError> {
        let i = self.idx(layer)?;
        self.tech.min_width[i as usize] = Self::positive(&format!("width {layer}"), w)?;
        Ok(self)
    }

    /// Sets a (symmetric) minimum spacing rule between two layers.
    pub fn space(mut self, a: &str, b: &str, s: Coord) -> Result<TechBuilder, TechError> {
        let (ia, ib) = (self.idx(a)?, self.idx(b)?);
        let s = Self::positive(&format!("space {a} {b}"), s)?;
        self.tech.min_space.insert((ia.min(ib), ia.max(ib)), s);
        Ok(self)
    }

    /// Sets a required enclosure of `inner` by `outer`.
    pub fn enclose(mut self, outer: &str, inner: &str, e: Coord) -> Result<TechBuilder, TechError> {
        let (io, ii) = (self.idx(outer)?, self.idx(inner)?);
        let e = Self::positive(&format!("enclose {outer} {inner}"), e)?;
        self.tech.enclosure.insert((io, ii), e);
        Ok(self)
    }

    /// Sets a required extension of `a` beyond `b`.
    pub fn extend(mut self, a: &str, b: &str, e: Coord) -> Result<TechBuilder, TechError> {
        let (ia, ib) = (self.idx(a)?, self.idx(b)?);
        let e = Self::positive(&format!("extend {a} {b}"), e)?;
        self.tech.extension.insert((ia, ib), e);
        Ok(self)
    }

    /// Sets the fixed square size of a cut layer.
    pub fn cut_size(mut self, layer: &str, s: Coord) -> Result<TechBuilder, TechError> {
        let i = self.idx(layer)?;
        if s <= 0 {
            return Err(TechError::InvalidValue {
                rule: format!("cutsize {layer}"),
                value: s,
            });
        }
        self.tech.cut_size[i as usize] = Some(s);
        Ok(self)
    }

    /// Declares that `cut` connects conductors `a` and `b`.
    pub fn connect(mut self, cut: &str, a: &str, b: &str) -> Result<TechBuilder, TechError> {
        let (ic, ia, ib) = (self.idx(cut)?, self.idx(a)?, self.idx(b)?);
        self.tech.connections.push((ic, ia, ib));
        Ok(self)
    }

    /// Sets capacitance coefficients (aF/µm², aF/µm).
    pub fn cap(mut self, layer: &str, area: f64, fringe: f64) -> Result<TechBuilder, TechError> {
        let i = self.idx(layer)?;
        self.tech.cap[i as usize] = CapCoeffs {
            area_af_per_um2: area,
            fringe_af_per_um: fringe,
        };
        Ok(self)
    }

    /// Sets sheet resistance in mΩ/□.
    pub fn sheet_res(mut self, layer: &str, mohm: i64) -> Result<TechBuilder, TechError> {
        let i = self.idx(layer)?;
        self.tech.sheet_res_mohm[i as usize] = Some(mohm);
        Ok(self)
    }

    /// Sets a minimum-area rule in µm².
    pub fn min_area(mut self, layer: &str, um2: f64) -> Result<TechBuilder, TechError> {
        let i = self.idx(layer)?;
        if um2 < 0.0 {
            return Err(TechError::InvalidValue {
                rule: format!("minarea {layer}"),
                value: um2 as i64,
            });
        }
        self.tech.min_area_um2[i as usize] = um2;
        Ok(self)
    }

    /// Mutable access to the most recently declared layer (tech-file
    /// parser support).
    pub(crate) fn last_layer_mut(&mut self) -> Option<&mut LayerInfo> {
        self.tech.layers.last_mut()
    }

    /// Validates and returns the technology.
    ///
    /// Every cut layer must have a cut size, and every connection's cut
    /// must actually be a cut layer joining two conductors.
    pub fn build(self) -> Result<Tech, TechError> {
        let t = &self.tech;
        for (i, info) in t.layers.iter().enumerate() {
            if info.kind.is_cut() && t.cut_size[i].is_none() {
                return Err(TechError::MissingRule(format!("cutsize {}", info.name)));
            }
        }
        for &(c, a, b) in &t.connections {
            if !t.layers[c as usize].kind.is_cut() {
                return Err(TechError::InvalidValue {
                    rule: format!("connect {}", t.layers[c as usize].name),
                    value: c as i64,
                });
            }
            for side in [a, b] {
                if !t.layers[side as usize].kind.is_conductor() {
                    return Err(TechError::InvalidValue {
                        rule: format!(
                            "connect {} {} {}",
                            t.layers[c as usize].name,
                            t.layers[a as usize].name,
                            t.layers[b as usize].name
                        ),
                        value: side as i64,
                    });
                }
            }
        }
        Ok(self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tech {
        Tech::builder("tiny")
            .grid(10)
            .latchup_distance(5_000)
            .layer("poly", LayerKind::Poly, 10)
            .unwrap()
            .layer("metal1", LayerKind::Metal, 20)
            .unwrap()
            .layer("contact", LayerKind::Cut, 15)
            .unwrap()
            .width("poly", 1_000)
            .unwrap()
            .space("poly", "poly", 1_500)
            .unwrap()
            .space("poly", "metal1", 0)
            .unwrap()
            .enclose("metal1", "contact", 500)
            .unwrap()
            .cut_size("contact", 1_000)
            .unwrap()
            .connect("contact", "poly", "metal1")
            .unwrap()
            .cap("metal1", 30.0, 80.0)
            .unwrap()
            .sheet_res("poly", 25_000)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn lookups() {
        let t = tiny();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        assert_eq!(t.min_width(poly), 1_000);
        assert_eq!(t.min_spacing(poly, poly), Some(1_500));
        assert_eq!(t.min_spacing(poly, m1), Some(0));
        assert_eq!(t.min_spacing(m1, ct), None);
        assert_eq!(t.clearance(m1, ct), 0);
        assert_eq!(t.enclosure(m1, ct), 500);
        assert_eq!(t.enclosure(ct, m1), 0, "enclosure is directional");
        assert_eq!(t.cut_size(ct).unwrap(), 1_000);
        assert!(t.connects(ct, poly, m1));
        assert!(t.connects(ct, m1, poly), "connection is symmetric");
        assert_eq!(t.cap_coeffs(m1).area_af_per_um2, 30.0);
        assert_eq!(t.sheet_res_mohm(poly), Some(25_000));
        assert_eq!(t.sheet_res_mohm(m1), None);
    }

    #[test]
    fn unknown_layer_is_an_error() {
        let t = tiny();
        assert!(matches!(t.layer("metal9"), Err(TechError::UnknownLayer(_))));
    }

    #[test]
    fn duplicate_layer_rejected() {
        let r = Tech::builder("x")
            .layer("poly", LayerKind::Poly, 1)
            .unwrap()
            .layer("poly", LayerKind::Poly, 2);
        assert!(matches!(r, Err(TechError::DuplicateLayer(_))));
    }

    #[test]
    fn cut_layer_requires_cut_size() {
        let r = Tech::builder("x")
            .layer("contact", LayerKind::Cut, 1)
            .unwrap()
            .build();
        assert!(matches!(r, Err(TechError::MissingRule(_))));
    }

    #[test]
    fn connect_through_non_cut_rejected() {
        let r = Tech::builder("x")
            .layer("poly", LayerKind::Poly, 1)
            .unwrap()
            .layer("metal1", LayerKind::Metal, 2)
            .unwrap()
            .connect("poly", "poly", "metal1")
            .unwrap()
            .build();
        assert!(matches!(r, Err(TechError::InvalidValue { .. })));
    }

    #[test]
    fn negative_rule_value_rejected() {
        let r = Tech::builder("x")
            .layer("poly", LayerKind::Poly, 1)
            .unwrap()
            .width("poly", -5);
        assert!(matches!(r, Err(TechError::InvalidValue { .. })));
    }

    #[test]
    fn grid_snapping() {
        let t = tiny();
        assert_eq!(t.snap_down(1_234), 1_230);
        assert_eq!(t.snap_up(1_234), 1_240);
        assert_eq!(t.snap_down(-15), -20);
        assert_eq!(t.snap_up(-15), -10);
        assert_eq!(t.snap_up(1_240), 1_240);
    }

    #[test]
    #[should_panic(expected = "layer handle from technology")]
    fn cross_tech_handle_panics() {
        let t1 = tiny();
        let t2 = tiny();
        let foreign = t2.layer("poly").unwrap();
        let _ = t1.min_width(foreign);
    }

    #[test]
    fn layers_iterator_visits_all() {
        let t = tiny();
        let names: Vec<&str> = t.layers().map(|l| t.layer_name(l)).collect();
        assert_eq!(names, ["poly", "metal1", "contact"]);
    }
}

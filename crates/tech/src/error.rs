//! Error type for technology construction and parsing.

/// Errors raised while building or parsing a technology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechError {
    /// A rule or query referenced a layer name that does not exist.
    UnknownLayer(String),
    /// Two layers were declared with the same name.
    DuplicateLayer(String),
    /// A tech-file line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A required rule is missing from the deck.
    MissingRule(String),
    /// A rule value is out of range (negative width etc.).
    InvalidValue {
        /// The offending rule.
        rule: String,
        /// The value given.
        value: i64,
    },
}

impl std::fmt::Display for TechError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechError::UnknownLayer(n) => write!(f, "unknown layer `{n}`"),
            TechError::DuplicateLayer(n) => write!(f, "layer `{n}` declared twice"),
            TechError::Parse { line, message } => {
                write!(f, "tech file line {line}: {message}")
            }
            TechError::MissingRule(r) => write!(f, "technology is missing rule `{r}`"),
            TechError::InvalidValue { rule, value } => {
                write!(f, "rule `{rule}` has invalid value {value}")
            }
        }
    }
}

impl std::error::Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TechError::UnknownLayer("metal9".into());
        assert!(e.to_string().contains("metal9"));
        let e = TechError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("12"));
        let e = TechError::InvalidValue {
            rule: "width poly".into(),
            value: -5,
        };
        assert!(e.to_string().contains("-5"));
    }
}

//! Built-in technology decks.
//!
//! The paper's amplifier was laid out in a proprietary *1 µm
//! Siemens-BiCMOS* process. The [`BICMOS_1U`] deck below is a **synthetic
//! substitute** with public-domain-typical values (λ ≈ 0.5 µm scalable
//! rules): every algorithm consumes rules only through the [`Tech`] API,
//! so absolute rule values shift absolute areas but not the qualitative
//! behaviour the paper demonstrates. [`CMOS_08`] is a second, plain-CMOS
//! deck used to exercise technology independence (the same module source
//! generates rule-clean layouts in either deck).

use crate::tech::Tech;

/// Synthetic 1 µm BiCMOS rule deck (stand-in for the Siemens process of
/// the paper's §3). Distances in nanometres.
pub const BICMOS_1U: &str = "\
tech bicmos_1u
grid 50
latchup 50000
# ---- layers: name kind gds ----
layer nwell well 1
layer buried buried 2
layer pdiff diffusion 3
layer ndiff diffusion 4
layer base diffusion 5
layer emitter diffusion 6
layer nplus implant 7
layer pplus implant 8
layer poly poly 10
layer contact cut 15
layer metal1 metal 20
layer via1 cut 25
layer metal2 metal 30
# ---- minimum widths ----
width nwell 5000
width buried 4000
width pdiff 1500
width ndiff 1500
width base 2000
width emitter 1500
width poly 1000
width metal1 1500
width metal2 1500
# ---- spacings ----
space nwell nwell 4000
space buried buried 5000
space pdiff pdiff 1500
space ndiff ndiff 1500
space pdiff ndiff 2000
space base base 2000
space emitter emitter 1500
space poly poly 1500
space poly pdiff 500
space poly ndiff 500
space poly base 1000
space contact contact 1000
space metal1 metal1 1500
space via1 via1 1500
space metal2 metal2 2000
space base pdiff 2000
space base ndiff 2000
space buried pdiff 3000
space buried ndiff 3000
# ---- enclosures ----
enclose metal1 contact 500
enclose poly contact 500
enclose pdiff contact 500
enclose ndiff contact 500
enclose base contact 750
enclose emitter contact 500
enclose metal1 via1 500
enclose metal2 via1 500
enclose nwell pdiff 2500
enclose nwell ndiff 1500
enclose buried base 2000
enclose base emitter 1000
enclose buried contact 750
enclose nplus ndiff 500
enclose pplus pdiff 500
# ---- extensions ----
extend poly pdiff 1000
extend poly ndiff 1000
extend pdiff poly 1500
extend ndiff poly 1500
# ---- cuts ----
cutsize contact 1000
cutsize via1 1000
connect contact poly metal1
connect contact pdiff metal1
connect contact ndiff metal1
connect contact base metal1
connect contact emitter metal1
connect contact buried metal1
connect via1 metal1 metal2
# ---- parasitics: cap <layer> <aF/um^2> <aF/um>, sheetres in mohm/sq ----
cap poly 58 44
cap metal1 31 44
cap metal2 15 50
cap pdiff 350 250
cap ndiff 250 200
cap base 400 300
cap emitter 500 350
cap buried 100 80
sheetres poly 25000
sheetres metal1 70
sheetres metal2 40
sheetres pdiff 50000
sheetres ndiff 40000
sheetres base 150000
sheetres emitter 30000
sheetres buried 20000
minarea metal1 4
minarea metal2 4
";

/// Plain 0.8 µm CMOS rule deck, used to demonstrate that module sources
/// are technology independent. Distances in nanometres.
pub const CMOS_08: &str = "\
tech cmos_08
grid 50
latchup 40000
layer nwell well 1
layer pdiff diffusion 3
layer ndiff diffusion 4
layer nplus implant 7
layer pplus implant 8
layer poly poly 10
layer contact cut 15
layer metal1 metal 20
layer via1 cut 25
layer metal2 metal 30
width nwell 4000
width pdiff 1200
width ndiff 1200
width poly 800
width metal1 1200
width metal2 1200
space nwell nwell 3200
space pdiff pdiff 1200
space ndiff ndiff 1200
space pdiff ndiff 1600
space poly poly 1200
space poly pdiff 400
space poly ndiff 400
space contact contact 800
space metal1 metal1 1200
space via1 via1 1200
space metal2 metal2 1600
enclose metal1 contact 400
enclose poly contact 400
enclose pdiff contact 400
enclose ndiff contact 400
enclose metal1 via1 400
enclose metal2 via1 400
enclose nwell pdiff 2000
enclose nwell ndiff 1200
enclose nplus ndiff 400
enclose pplus pdiff 400
extend poly pdiff 800
extend poly ndiff 800
extend pdiff poly 1200
extend ndiff poly 1200
cutsize contact 800
cutsize via1 800
connect contact poly metal1
connect contact pdiff metal1
connect contact ndiff metal1
connect via1 metal1 metal2
cap poly 72 55
cap metal1 38 55
cap metal2 19 62
cap pdiff 430 310
cap ndiff 310 250
sheetres poly 22000
sheetres metal1 60
sheetres metal2 35
sheetres pdiff 45000
sheetres ndiff 36000
minarea metal1 3
minarea metal2 3
";

impl Tech {
    /// The synthetic 1 µm BiCMOS technology (see [`BICMOS_1U`]).
    ///
    /// # Panics
    ///
    /// Never — the deck is validated by tests.
    pub fn bicmos_1u() -> Tech {
        Tech::parse(BICMOS_1U).expect("built-in bicmos_1u deck is valid")
    }

    /// The 0.8 µm CMOS technology (see [`CMOS_08`]).
    pub fn cmos_08() -> Tech {
        Tech::parse(CMOS_08).expect("built-in cmos_08 deck is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn bicmos_deck_parses() {
        let t = Tech::bicmos_1u();
        assert_eq!(t.name(), "bicmos_1u");
        assert_eq!(t.layer_count(), 13);
        assert_eq!(t.latchup_distance(), 50_000);
    }

    #[test]
    fn cmos_deck_parses() {
        let t = Tech::cmos_08();
        assert_eq!(t.name(), "cmos_08");
        assert!(
            t.layer("buried").is_err(),
            "plain CMOS has no bipolar layers"
        );
    }

    #[test]
    fn bicmos_has_bipolar_layers() {
        let t = Tech::bicmos_1u();
        for name in ["buried", "base", "emitter"] {
            let l = t.layer(name).unwrap();
            assert!(t.kind(l).is_conductor(), "{name}");
        }
    }

    #[test]
    fn conductors_have_widths_and_caps() {
        for t in [Tech::bicmos_1u(), Tech::cmos_08()] {
            for l in t.layers() {
                if t.kind(l).is_conductor() {
                    assert!(t.min_width(l) > 0, "{}: {}", t.name(), t.layer_name(l));
                    let cc = t.cap_coeffs(l);
                    assert!(cc.area_af_per_um2 > 0.0, "{}", t.layer_name(l));
                }
            }
        }
    }

    #[test]
    fn cut_layers_have_sizes_and_connections() {
        for t in [Tech::bicmos_1u(), Tech::cmos_08()] {
            for l in t.layers() {
                if t.kind(l) == LayerKind::Cut {
                    assert!(t.cut_size(l).unwrap() > 0);
                    assert!(
                        !t.connected_pairs(l).is_empty(),
                        "{}: cut {} connects nothing",
                        t.name(),
                        t.layer_name(l)
                    );
                }
            }
        }
    }

    #[test]
    fn contact_enclosures_present_for_all_contacted_conductors() {
        let t = Tech::bicmos_1u();
        let ct = t.layer("contact").unwrap();
        for (a, b) in t.connected_pairs(ct) {
            for side in [a, b] {
                assert!(
                    t.enclosure(side, ct) > 0,
                    "{} must enclose contact",
                    t.layer_name(side)
                );
            }
        }
    }

    #[test]
    fn cmos_rules_are_tighter_than_bicmos() {
        let b = Tech::bicmos_1u();
        let c = Tech::cmos_08();
        let bp = b.layer("poly").unwrap();
        let cp = c.layer("poly").unwrap();
        assert!(c.min_width(cp) < b.min_width(bp));
    }

    #[test]
    fn round_trip_built_in_decks() {
        for t in [Tech::bicmos_1u(), Tech::cmos_08()] {
            let t2 = Tech::parse(&t.to_tech_file()).unwrap();
            assert_eq!(t.layer_count(), t2.layer_count());
            assert_eq!(t.latchup_distance(), t2.latchup_distance());
        }
    }
}

//! Mask layers and their electrical roles.

/// A handle to a layer in a [`crate::Tech`] database.
///
/// Layers are cheap copyable indices; all rule lookups go through the
/// owning [`crate::Tech`]. Handles from different technologies must not be
/// mixed (rule queries would silently use the wrong table); the database
/// therefore brands each handle with its technology id and panics on
/// mismatch in debug lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Layer {
    pub(crate) tech_id: u32,
    pub(crate) index: u16,
}

impl Layer {
    /// The index of this layer within its technology's layer table.
    #[inline]
    pub fn index(self) -> usize {
        self.index as usize
    }
}

/// The electrical/process role of a layer.
///
/// The role drives defaults: cut layers get a fixed square size, conductor
/// layers take part in connectivity and parasitic extraction, implants and
/// wells are non-conducting decoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Diffusion / active area (conducting, forms MOS source/drain).
    Diffusion,
    /// Polysilicon (conducting, forms MOS gates).
    Poly,
    /// A metal routing layer (conducting).
    Metal,
    /// A cut layer: contact or via (connects two conductor layers).
    Cut,
    /// A dopant implant (non-conducting decoration).
    Implant,
    /// A well or tub.
    Well,
    /// Buried layer / subcollector (bipolar).
    Buried,
    /// Anything else (text, boundary, ...).
    Other,
}

impl LayerKind {
    /// True for layers that carry signal (take part in connectivity).
    pub fn is_conductor(self) -> bool {
        matches!(
            self,
            LayerKind::Diffusion | LayerKind::Poly | LayerKind::Metal | LayerKind::Buried
        )
    }

    /// True for contact/via layers.
    pub fn is_cut(self) -> bool {
        matches!(self, LayerKind::Cut)
    }

    /// Parses the kind keyword used in tech files.
    pub fn parse(s: &str) -> Option<LayerKind> {
        match s {
            "diffusion" | "diff" => Some(LayerKind::Diffusion),
            "poly" => Some(LayerKind::Poly),
            "metal" => Some(LayerKind::Metal),
            "cut" | "contact" | "via" => Some(LayerKind::Cut),
            "implant" => Some(LayerKind::Implant),
            "well" => Some(LayerKind::Well),
            "buried" => Some(LayerKind::Buried),
            "other" => Some(LayerKind::Other),
            _ => None,
        }
    }

    /// The canonical tech-file keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            LayerKind::Diffusion => "diffusion",
            LayerKind::Poly => "poly",
            LayerKind::Metal => "metal",
            LayerKind::Cut => "cut",
            LayerKind::Implant => "implant",
            LayerKind::Well => "well",
            LayerKind::Buried => "buried",
            LayerKind::Other => "other",
        }
    }
}

/// Static information about one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// Name used by the layout description language (e.g. `"metal1"`).
    pub name: String,
    /// Electrical role.
    pub kind: LayerKind,
    /// GDSII layer number for export.
    pub gds_layer: i16,
    /// GDSII datatype for export.
    pub gds_datatype: i16,
}

impl LayerInfo {
    /// Creates layer info with datatype 0.
    pub fn new(name: impl Into<String>, kind: LayerKind, gds_layer: i16) -> LayerInfo {
        LayerInfo {
            name: name.into(),
            kind,
            gds_layer,
            gds_datatype: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(LayerKind::Metal.is_conductor());
        assert!(LayerKind::Poly.is_conductor());
        assert!(LayerKind::Buried.is_conductor());
        assert!(!LayerKind::Cut.is_conductor());
        assert!(!LayerKind::Well.is_conductor());
        assert!(LayerKind::Cut.is_cut());
        assert!(!LayerKind::Metal.is_cut());
    }

    #[test]
    fn kind_keyword_round_trip() {
        for k in [
            LayerKind::Diffusion,
            LayerKind::Poly,
            LayerKind::Metal,
            LayerKind::Cut,
            LayerKind::Implant,
            LayerKind::Well,
            LayerKind::Buried,
            LayerKind::Other,
        ] {
            assert_eq!(LayerKind::parse(k.keyword()), Some(k));
        }
        assert_eq!(LayerKind::parse("plutonium"), None);
    }

    #[test]
    fn layer_info_construction() {
        let li = LayerInfo::new("metal1", LayerKind::Metal, 20);
        assert_eq!(li.name, "metal1");
        assert_eq!(li.gds_layer, 20);
        assert_eq!(li.gds_datatype, 0);
    }
}

//! Round-trip guarantee for the compiled rule kernel: serialising a deck
//! with `to_tech_file`, reparsing it and recompiling must reproduce an
//! element-wise identical [`RuleSet`] — the dense tables, not just the
//! front-end accessors. `RuleSet`'s `PartialEq` compares every table and
//! deliberately ignores technology ids, which is exactly the equivalence
//! wanted here (the two decks' handles never interchange).

use amgen_tech::{Tech, TechError};
use proptest::prelude::*;

fn round_trip(t: &Tech) -> Result<Tech, TechError> {
    Tech::parse(&t.to_tech_file())
}

#[test]
fn bicmos_deck_round_trips_to_equal_ruleset() {
    let t = Tech::bicmos_1u();
    let t2 = round_trip(&t).unwrap();
    assert_eq!(t.compile(), t2.compile());
}

#[test]
fn cmos_deck_round_trips_to_equal_ruleset() {
    let t = Tech::cmos_08();
    let t2 = round_trip(&t).unwrap();
    assert_eq!(t.compile(), t2.compile());
}

#[test]
fn reserialised_deck_is_a_fixed_point() {
    // Printing the reparsed deck reproduces the same text, so one round
    // trip is enough to establish the loop closed.
    for t in [Tech::bicmos_1u(), Tech::cmos_08()] {
        let text = t.to_tech_file();
        let again = round_trip(&t).unwrap().to_tech_file();
        assert_eq!(text, again);
    }
}

// ---- random small decks ------------------------------------------------

/// Specification for one random deck: a handful of layers with random
/// kinds and a random subset of rule statements among them.
#[derive(Debug, Clone)]
struct DeckSpec {
    grid: i64,
    latchup: i64,
    layers: Vec<(usize, i64)>, // (kind index, min width)
    spaces: Vec<(usize, usize, i64)>,
    encloses: Vec<(usize, usize, i64)>,
    extends: Vec<(usize, usize, i64)>,
    caps: Vec<(usize, i64, i64)>,
    sheet: Vec<(usize, i64)>,
}

const KINDS: [&str; 6] = ["poly", "metal", "diff", "cut", "implant", "well"];

fn arb_deck() -> impl Strategy<Value = DeckSpec> {
    (
        (
            1i64..100,
            0i64..60_000,
            prop::collection::vec((0usize..KINDS.len(), 100i64..5_000), 2..7),
            prop::collection::vec((0usize..6, 0usize..6, 100i64..4_000), 0..8),
        ),
        (
            prop::collection::vec((0usize..6, 0usize..6, 100i64..2_000), 0..6),
            prop::collection::vec((0usize..6, 0usize..6, 100i64..2_000), 0..6),
            prop::collection::vec((0usize..6, 1i64..100, 1i64..200), 0..4),
            prop::collection::vec((0usize..6, 1_000i64..90_000), 0..4),
        ),
    )
        .prop_map(
            |((grid, latchup, layers, spaces), (encloses, extends, caps, sheet))| DeckSpec {
                grid,
                latchup,
                layers,
                spaces,
                encloses,
                extends,
                caps,
                sheet,
            },
        )
}

/// Renders the spec as tech-file text. Layer indices in the rule lists
/// are taken modulo the layer count, so every spec is valid by
/// construction.
fn deck_text(spec: &DeckSpec) -> String {
    let n = spec.layers.len();
    let name = |i: usize| format!("l{}", i % n);
    let mut out = String::new();
    out.push_str("tech random\n");
    out.push_str(&format!("grid {}\n", spec.grid));
    if spec.latchup > 0 {
        out.push_str(&format!("latchup {}\n", spec.latchup));
    }
    for (i, (kind, _)) in spec.layers.iter().enumerate() {
        out.push_str(&format!("layer l{} {} {}\n", i, KINDS[*kind], 10 + i));
    }
    for (i, (_, w)) in spec.layers.iter().enumerate() {
        out.push_str(&format!("width l{i} {w}\n"));
    }
    for (a, b, s) in &spec.spaces {
        out.push_str(&format!("space {} {} {}\n", name(*a), name(*b), s));
    }
    for (o, i, e) in &spec.encloses {
        out.push_str(&format!("enclose {} {} {}\n", name(*o), name(*i), e));
    }
    for (a, b, e) in &spec.extends {
        out.push_str(&format!("extend {} {} {}\n", name(*a), name(*b), e));
    }
    // Cut layers need a size or compilation is still fine — cutsize is
    // optional — but exercise the statement for every cut in the roster.
    for (i, (kind, _)) in spec.layers.iter().enumerate() {
        if KINDS[*kind] == "cut" {
            out.push_str(&format!("cutsize l{} {}\n", i, 500 + 50 * i as i64));
        }
    }
    for (l, area, fringe) in &spec.caps {
        out.push_str(&format!("cap {} {} {}\n", name(*l), area, fringe));
    }
    for (l, r) in &spec.sheet {
        out.push_str(&format!("sheetres {} {}\n", name(*l), r));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any parseable random deck survives serialise → reparse → compile
    /// with an element-wise identical rule kernel.
    #[test]
    fn random_decks_round_trip(spec in arb_deck()) {
        let text = deck_text(&spec);
        // Duplicate rule statements may legitimately be rejected by the
        // builder; only accepted decks must round-trip.
        let Ok(t) = Tech::parse(&text) else { return };
        let t2 = round_trip(&t).unwrap();
        prop_assert_eq!(t.compile(), t2.compile());
    }
}

//! The parallel branch-and-bound engine behind
//! [`Optimizer::optimize_order`](crate::Optimizer::optimize_order).
//!
//! # How the search works
//!
//! The permutation tree over compaction steps is explored by `workers`
//! threads pulling frames from a shared LIFO deque:
//!
//! * **Branch and bound** — the bounding-box area of a partial layout is a
//!   lower bound on every completion's score (boxes only grow, and the
//!   electrical term is non-negative). The bound is applied **at push
//!   time**, so pruned subtrees are never materialized on the deque, and
//!   re-checked at pop time because the incumbent may have improved while
//!   the frame was queued. The incumbent score is shared through an
//!   [`AtomicU64`] holding the `f64` bit pattern, so every worker prunes
//!   against the global best without locking.
//! * **Subset-dominance memoization** — a table keyed by the bitmask of
//!   placed steps plus the [`LayoutSignature`] of the partial layout.
//!   Different orders of the same subset frequently produce the *same*
//!   geometry; every arrival after the first is redundant (identical
//!   layouts have identical completions) and is cut as `dominated`. The
//!   signature makes the check O(1).
//! * **Determinism** — among equal-scoring complete orders the
//!   lexicographically smallest wins. Bound pruning is strict (`>`), so an
//!   equal-score order is never pruned, and the dominance table keeps the
//!   lexicographically smallest prefix per (subset, signature) class, so
//!   the winning representative of every geometry class is always
//!   explored. The result is identical for any worker count or thread
//!   schedule.
//! * **Budget exhaustion** — when `max_nodes` runs out before any complete
//!   order was found, the deepest remaining partial frame is completed
//!   greedily (cheapest next step first) and returned as a best-effort
//!   result with [`OptResult::complete`] `== false`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, LockResult, Mutex};
use std::time::Instant;

use amgen_compact::{CompactError, Compactor};
use amgen_core::{
    FaultSite, GenError, GenErrorKind, PlacementVariant, Resource, Stage, VariantTable,
};
use amgen_db::{LayoutObject, LayoutSignature};

use crate::{OptResult, Optimizer, Rating, SearchOptions, Step};

/// Complete orders kept in a stored variant table.
const TOP_K: usize = 6;

/// Sorts variants best-first: by score, ties broken by the
/// lexicographically smallest order — the same total order `offer`
/// uses for the incumbent, so `variants[0]` is always the winner.
fn sort_variants(vs: &mut Vec<PlacementVariant>) {
    vs.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then_with(|| a.order.cmp(&b.order))
    });
    vs.dedup_by(|a, b| a.order == b.order);
}

/// Recovers the guard from a possibly poisoned lock. A worker that
/// panicked mid-frame (see the `catch_unwind` in the worker loop) poisons
/// whatever mutex it held; the shared state itself stays consistent —
/// every update is a single push/insert — so the search keeps going
/// instead of cascading panics through every other worker.
fn unpoison<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(|p| p.into_inner())
}

/// True when a compaction error is the wall deadline expiring mid-step.
/// The deadline is soft for the optimizer — it degrades the result rather
/// than failing it — so this error is folded into the degraded flow
/// wherever a worker or the seeding loop encounters it.
fn is_wall_expiry(e: &CompactError) -> bool {
    matches!(e, CompactError::Gen(g)
        if g.kind == GenErrorKind::BudgetExhausted(Resource::Wall))
}

/// Best-effort text of a caught panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One node of the permutation tree.
struct Frame {
    /// The partial layout after compacting `order`.
    main: LayoutObject,
    /// Bitmask of placed step indices.
    mask: u64,
    /// The placement order so far.
    order: Vec<usize>,
    /// Area lower bound of this partial layout (memoized).
    lb: f64,
}

/// The current best complete solution.
struct Incumbent {
    rating: Rating,
    order: Vec<usize>,
    layout: LayoutObject,
}

struct Deque {
    frames: Vec<Frame>,
    /// Number of frames currently being processed by workers.
    active: usize,
}

/// Shared search state; everything workers touch.
struct Shared<'a> {
    opt: &'a Optimizer,
    steps: &'a [Step],
    max_nodes: usize,
    dominance: bool,
    deque: Mutex<Deque>,
    work: Condvar,
    /// Bit pattern of the incumbent score (`f64::INFINITY` when none).
    best_bits: AtomicU64,
    best: Mutex<Option<Incumbent>>,
    /// (mask, signature) → lexicographically smallest prefix that reached
    /// this geometry class.
    dom: Mutex<HashMap<(u64, LayoutSignature), Vec<usize>>>,
    /// Complete orders seen so far (bounded; see `process`), collected
    /// only when a variant table will be stored (`collect`).
    collect: bool,
    variants: Mutex<Vec<PlacementVariant>>,
    explored: AtomicUsize,
    pruned: AtomicUsize,
    dominated: AtomicUsize,
    stop: AtomicBool,
    exhausted: AtomicBool,
    /// Set when the wall-clock deadline expired mid-search: the result is
    /// the best incumbent found so far, flagged rather than an error.
    degraded: AtomicBool,
    error: Mutex<Option<CompactError>>,
}

impl<'a> Shared<'a> {
    /// The partial-layout lower bound: bounding-box area weighted by the
    /// area term. Sound whenever `area_per_um2 >= 0` (bounding boxes only
    /// grow and the capacitance term is non-negative).
    fn lower_bound(&self, sig: &LayoutSignature) -> f64 {
        sig.bbox.area() as f64 / 1e6 * self.opt.weights.area_per_um2
    }

    /// Strictly-worse check against the incumbent. Strict so that
    /// equal-score orders survive for the lexicographic tie-break.
    fn bound_prunes(&self, lb: f64) -> bool {
        lb > f64::from_bits(self.best_bits.load(Ordering::Relaxed))
    }

    /// Records a complete order if it beats the incumbent (score first,
    /// then lexicographically smallest order).
    fn offer(&self, rating: Rating, order: Vec<usize>, layout: LayoutObject) {
        let mut best = unpoison(self.best.lock());
        let better = match &*best {
            None => true,
            Some(b) => match rating.score.total_cmp(&b.rating.score) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => order < b.order,
                std::cmp::Ordering::Greater => false,
            },
        };
        if better {
            self.opt.ctx.trace.instant_args(
                "opt",
                || "incumbent",
                || {
                    vec![
                        ("score", rating.score.into()),
                        ("area_um2", rating.area_um2.into()),
                        ("depth", order.len().into()),
                    ]
                },
            );
            // Publish the score for lock-free pruning reads. A CAS loop
            // (not `fetch_min` on bits) so negative scores order correctly.
            let mut cur = self.best_bits.load(Ordering::Relaxed);
            loop {
                if rating.score >= f64::from_bits(cur) {
                    break;
                }
                match self.best_bits.compare_exchange_weak(
                    cur,
                    rating.score.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
            *best = Some(Incumbent {
                rating,
                order,
                layout,
            });
        }
    }

    /// True if this (subset, geometry) class was already reached by a
    /// lexicographically smaller prefix. Otherwise records `order` as the
    /// class representative.
    fn dominated(&self, mask: u64, sig: LayoutSignature, order: &[usize]) -> bool {
        let mut dom = unpoison(self.dom.lock());
        match dom.entry((mask, sig)) {
            Entry::Occupied(mut e) => {
                if e.get().as_slice() <= order {
                    drop(dom);
                    self.dominated.fetch_add(1, Ordering::Relaxed);
                    self.opt.ctx.trace.instant_fine("opt", || "dominated");
                    true
                } else {
                    // A smaller prefix arrived late (parallel schedules can
                    // do that): let it through so the lexicographic winner
                    // is always explored.
                    e.insert(order.to_vec());
                    false
                }
            }
            Entry::Vacant(v) => {
                v.insert(order.to_vec());
                false
            }
        }
    }

    fn record_error(&self, e: CompactError) {
        if is_wall_expiry(&e) {
            self.enter_degraded();
            return;
        }
        unpoison(self.error.lock()).get_or_insert(e);
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Switches the search into deadline-degraded shutdown: stop
    /// expanding, flag the result, let the incumbent (or the greedy
    /// completion) stand.
    fn enter_degraded(&self) {
        self.degraded.store(true, Ordering::Relaxed);
        self.exhausted.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Builds a child frame (compacts step `i` onto `frame`), applying the
    /// bound and dominance checks at push time. Returns `None` when the
    /// child is cut.
    fn make_child(&self, c: &Compactor, frame: &Frame, i: usize) -> Option<Frame> {
        let step = &self.steps[i];
        let mut main = frame.main.clone();
        if let Err(e) = c.compact(&mut main, &step.obj, step.side, &step.opts) {
            self.record_error(e);
            return None;
        }
        let sig = main.signature();
        let lb = self.lower_bound(&sig);
        if self.bound_prunes(lb) {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            self.opt.ctx.trace.instant_fine("opt", || "prune:push");
            return None;
        }
        let mut order = Vec::with_capacity(frame.order.len() + 1);
        order.extend_from_slice(&frame.order);
        order.push(i);
        let mask = frame.mask | (1 << i);
        if self.dominance && self.dominated(mask, sig, &order) {
            return None;
        }
        Some(Frame {
            main,
            mask,
            order,
            lb,
        })
    }

    /// Processes one frame. Returns the frame back when the node budget or
    /// the wall-clock deadline is exhausted so it stays available for the
    /// best-effort completion.
    fn process(&self, c: &Compactor, frame: Frame) -> Option<Frame> {
        // Cooperative cancellation is a hard, typed error; the deadline is
        // soft — stop expanding, keep the frame for the greedy completion
        // and flag the result as degraded instead of erroring.
        let limits = &self.opt.ctx.limits;
        if limits.cancel_token().is_cancelled() {
            self.record_error(CompactError::Gen(GenError::cancelled(Stage::Opt)));
            return None;
        }
        if limits.deadline_expired() {
            self.enter_degraded();
            return Some(frame);
        }
        if let Err(e) = self.opt.ctx.fault_check(FaultSite::OptWorker, "process") {
            self.record_error(CompactError::Gen(e));
            return None;
        }
        // Re-check the bound: the incumbent may have improved while this
        // frame sat on the deque.
        if self.bound_prunes(frame.lb) {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            self.opt.ctx.trace.instant_fine("opt", || "prune:pop");
            return None;
        }
        // Claim a node from the budget.
        if self.explored.fetch_add(1, Ordering::Relaxed) + 1 > self.max_nodes {
            self.explored.fetch_sub(1, Ordering::Relaxed);
            self.exhausted.store(true, Ordering::Relaxed);
            self.stop.store(true, Ordering::Relaxed);
            return Some(frame);
        }
        if frame.order.len() == self.steps.len() {
            let rating = self.opt.rate(&frame.main);
            if self.collect {
                let mut vs = unpoison(self.variants.lock());
                vs.push(PlacementVariant {
                    order: frame.order.clone(),
                    score: rating.score,
                    area_um2: rating.area_um2,
                    cap_af: rating.cap_af,
                    signature: frame.main.signature(),
                });
                // Keep the buffer bounded: compacting to the best
                // TOP_K can never drop a final top-k member (anything
                // dropped is already beaten by TOP_K better orders).
                if vs.len() > TOP_K * 8 {
                    sort_variants(&mut vs);
                    vs.truncate(TOP_K);
                }
            }
            self.offer(rating, frame.order, frame.main);
            return None;
        }
        // One span per node expansion; named by depth so the track stays
        // readable (per-node names would be millions of unique strings).
        let mut span = self.opt.ctx.trace.span_fine("opt", || {
            amgen_core::name!("expand:depth{}", frame.order.len())
        });
        let mut children = Vec::new();
        for i in 0..self.steps.len() {
            if frame.mask & (1 << i) != 0 {
                continue;
            }
            if let Some(child) = self.make_child(c, &frame, i) {
                children.push(child);
            }
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
        }
        span.arg("children", children.len());
        drop(span);
        if !children.is_empty() {
            let mut q = unpoison(self.deque.lock());
            // LIFO: reversed push so the lowest step index is popped first
            // (depth-first, left-to-right — matches the sequential order).
            for ch in children.into_iter().rev() {
                q.frames.push(ch);
            }
            drop(q);
            self.work.notify_all();
        }
        None
    }

    /// The worker loop: pull a frame, process it, repeat until the tree is
    /// drained or the search stopped. `index` is `Some` for spawned
    /// workers, which get their own named trace track.
    fn worker(&self, index: Option<usize>) {
        if let Some(w) = index {
            // No-op unless tracing is on; names this worker's track in
            // the Chrome export (`opt-worker-0`, `opt-worker-1`, ...).
            self.opt
                .ctx
                .trace
                .set_thread_name(format!("opt-worker-{w}"));
        }
        // Workers share the compiled rule kernel by bumping the `Arc`
        // refcount — no per-worker recompilation or `Tech` clone.
        let c = Compactor::new(&self.opt.ctx);
        debug_assert!(
            std::sync::Arc::ptr_eq(&c.ctx().rules, &self.opt.ctx.rules),
            "worker must share the optimizer's rule kernel allocation"
        );
        loop {
            let frame = {
                let mut q = unpoison(self.deque.lock());
                loop {
                    if self.stop.load(Ordering::Relaxed) {
                        break None;
                    }
                    if let Some(f) = q.frames.pop() {
                        q.active += 1;
                        break Some(f);
                    }
                    if q.active == 0 {
                        break None;
                    }
                    q = unpoison(self.work.wait(q));
                }
            };
            let Some(frame) = frame else {
                // Wake everyone so idle workers re-check the exit
                // condition.
                self.work.notify_all();
                return;
            };
            // A panicking frame — an injected fault or a genuine bug in one
            // permutation's compaction — is recorded and pruned; the other
            // workers and the incumbent are unaffected. The `active`
            // bookkeeping below runs regardless, so a panic can never
            // leave the exit condition (`active == 0`) unreachable.
            let requeue = match catch_unwind(AssertUnwindSafe(|| self.process(&c, frame))) {
                Ok(r) => r,
                Err(payload) => {
                    let message = panic_text(payload.as_ref());
                    self.opt.ctx.metrics.add_opt_panic();
                    self.opt.ctx.trace.instant_args(
                        "opt",
                        || "worker_panic",
                        || vec![("message", message.clone().into())],
                    );
                    self.pruned.fetch_add(1, Ordering::Relaxed);
                    None
                }
            };
            let mut q = unpoison(self.deque.lock());
            q.active -= 1;
            if let Some(f) = requeue {
                q.frames.push(f);
            }
            let done = q.active == 0 && q.frames.is_empty();
            drop(q);
            if done || self.stop.load(Ordering::Relaxed) {
                self.work.notify_all();
            }
        }
    }
}

/// Greedily completes a partial frame: repeatedly appends the unused step
/// whose compaction yields the smallest partial layout (ties broken by
/// lowest step index). Used as the best-effort answer when `max_nodes`
/// expires before any complete order was found.
fn greedy_complete(
    opt: &Optimizer,
    steps: &[Step],
    mut frame: Frame,
) -> Result<(LayoutObject, Vec<usize>), CompactError> {
    // The completion runs under a grace context with the budget disarmed:
    // it exists precisely because the node budget or wall deadline already
    // expired, and it is bounded (O(steps²) compactions), so letting the
    // expired deadline veto it would turn every timeout into an error
    // instead of a best-effort result.
    let mut grace = opt.ctx.clone();
    grace.limits = std::sync::Arc::new(amgen_core::Budget::unlimited().arm());
    let c = Compactor::new(&grace);
    debug_assert!(
        std::sync::Arc::ptr_eq(&c.ctx().rules, &opt.ctx.rules),
        "greedy completion must share the optimizer's rule kernel allocation"
    );
    while frame.order.len() < steps.len() {
        let mut choice: Option<(f64, usize, LayoutObject)> = None;
        for (i, step) in steps.iter().enumerate() {
            if frame.mask & (1 << i) != 0 {
                continue;
            }
            let mut cand = frame.main.clone();
            c.compact(&mut cand, &step.obj, step.side, &step.opts)?;
            let score = cand.bbox().area() as f64 / 1e6 * opt.weights.area_per_um2;
            // Strict `<` keeps the lowest index among ties.
            if choice.as_ref().is_none_or(|(s, _, _)| score < *s) {
                choice = Some((score, i, cand));
            }
        }
        let (_, i, cand) = choice.expect("an unused step remains");
        frame.main = cand;
        frame.mask |= 1 << i;
        frame.order.push(i);
    }
    Ok((frame.main, frame.order))
}

/// Runs the order search. See the module docs for the algorithm.
pub(crate) fn run(
    opt: &Optimizer,
    steps: &[Step],
    search: SearchOptions,
) -> Result<OptResult, CompactError> {
    let t0 = Instant::now();
    if steps.is_empty() {
        return Ok(OptResult {
            order: Vec::new(),
            layout: LayoutObject::new("module"),
            rating: Rating {
                area_um2: 0.0,
                cap_af: 0.0,
                score: 0.0,
            },
            explored: 0,
            pruned: 0,
            dominated: 0,
            workers: 0,
            wall: t0.elapsed(),
            complete: true,
            degraded: false,
            cached: false,
            variants: Vec::new(),
            metrics: opt.ctx.snapshot(),
        });
    }
    if steps.len() > 64 {
        return Err(CompactError::Gen(GenError::stage_msg(
            Stage::Opt,
            format!(
                "optimize_order supports at most 64 steps ({} given); a {}-step \
                 permutation search would not terminate anyway",
                steps.len(),
                steps.len()
            ),
        )));
    }
    // Pre-flight: surface an already cancelled run before any thread is
    // spawned. An already-expired deadline is NOT an error here — the
    // search below degrades to a greedy best-effort result instead.
    if opt.ctx.limits.cancel_token().is_cancelled() {
        return Err(CompactError::Gen(GenError::cancelled(Stage::Opt)));
    }
    let workers = match search.workers {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .min(64);

    let mut search_span = opt.ctx.span(Stage::Opt, || "search");
    search_span.arg("steps", steps.len());
    search_span.arg("workers", workers);

    // The effective node budget is the search option capped by the
    // context-wide budget, so a `Budget::with_max_opt_nodes` bound applies
    // even to callers that never touch `SearchOptions`.
    let budget_nodes = opt.ctx.limits.budget().max_opt_nodes;
    let max_nodes = search
        .max_nodes
        .min(usize::try_from(budget_nodes).unwrap_or(usize::MAX));

    // Warm path: a previous search with an identical key left its top-k
    // variant table in the generation cache — instantiate the winner in
    // O(1) instead of re-searching. Only proven-complete, undegraded,
    // panic-free searches are ever stored, so a warm result is exactly
    // the cold result.
    let key = opt.variant_key(steps, &search, max_nodes);
    if let Some(k) = &key {
        if let Some(table) = opt.ctx.cache_variants_get(Stage::Opt, k) {
            let best = &table.variants[0];
            search_span.arg("cached", 1u64);
            return Ok(OptResult {
                order: best.order.clone(),
                layout: table.layout.clone(),
                rating: Rating {
                    area_um2: best.area_um2,
                    cap_af: best.cap_af,
                    score: best.score,
                },
                explored: 0,
                pruned: 0,
                dominated: 0,
                workers: 0,
                wall: t0.elapsed(),
                complete: true,
                degraded: false,
                cached: true,
                variants: table.variants.clone(),
                metrics: opt.ctx.snapshot(),
            });
        }
    }
    let panics_before = opt.ctx.snapshot().opt_panics;

    let shared = Shared {
        opt,
        steps,
        max_nodes,
        dominance: search.dominance,
        collect: key.is_some(),
        variants: Mutex::new(Vec::new()),
        deque: Mutex::new(Deque {
            frames: Vec::new(),
            active: 0,
        }),
        work: Condvar::new(),
        best_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        best: Mutex::new(None),
        dom: Mutex::new(HashMap::new()),
        explored: AtomicUsize::new(0),
        pruned: AtomicUsize::new(0),
        dominated: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        exhausted: AtomicBool::new(false),
        degraded: AtomicBool::new(false),
        error: Mutex::new(None),
    };

    // Seed the deque with the allowed first steps (reversed so index 0 is
    // popped first).
    {
        let c = Compactor::new(&opt.ctx);
        let first_choices: Vec<usize> = if search.keep_first {
            vec![0]
        } else {
            (0..steps.len()).collect()
        };
        let mut q = unpoison(shared.deque.lock());
        for &f in first_choices.iter().rev() {
            let mut main = LayoutObject::new("module");
            if let Err(e) = c.compact(&mut main, &steps[f].obj, steps[f].side, &steps[f].opts) {
                if is_wall_expiry(&e) {
                    // Deadline hit while seeding: degrade to the greedy
                    // best-effort completion over whatever got seeded.
                    shared.enter_degraded();
                    break;
                }
                return Err(e);
            }
            let sig = main.signature();
            let lb = shared.lower_bound(&sig);
            q.frames.push(Frame {
                main,
                mask: 1 << f,
                order: vec![f],
                lb,
            });
        }
    }

    if workers <= 1 {
        shared.worker(None);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                scope.spawn(move || shared.worker(Some(w)));
            }
        });
    }

    if let Some(e) = unpoison(shared.error.lock()).take() {
        return Err(e);
    }

    let explored = shared.explored.load(Ordering::Relaxed);
    let pruned = shared.pruned.load(Ordering::Relaxed);
    let dominated = shared.dominated.load(Ordering::Relaxed);
    let complete = !shared.exhausted.load(Ordering::Relaxed);
    let degraded = shared.degraded.load(Ordering::Relaxed);
    // The search statistics also live in the shared metrics so the run
    // report and `OptResult` read the same numbers.
    opt.ctx.metrics.add_opt_explored(explored as u64);
    opt.ctx.metrics.add_opt_pruned(pruned as u64);
    opt.ctx.metrics.add_opt_dominated(dominated as u64);
    search_span.arg("explored", explored);
    search_span.arg("pruned", pruned);
    search_span.arg("dominated", dominated);
    let best = unpoison(shared.best.into_inner());
    let mut variants = unpoison(shared.variants.into_inner());
    sort_variants(&mut variants);
    variants.truncate(TOP_K);

    let (order, layout, rating) = match best {
        Some(b) => (b.order, b.layout, b.rating),
        None => {
            // Node budget ran out before any complete order: finish the
            // deepest remaining frame greedily (best-effort).
            let frames = unpoison(shared.deque.into_inner()).frames;
            let deepest = frames.into_iter().max_by(|a, b| {
                a.order
                    .len()
                    .cmp(&b.order.len())
                    .then_with(|| b.order.cmp(&a.order))
            });
            let (layout, order) = match deepest {
                Some(f) => greedy_complete(opt, steps, f)?,
                // Defensive: the deque should never drain without a best,
                // but if it does, greedy-complete from scratch (placing the
                // pinned first step when `keep_first`).
                None => {
                    let mut start = Frame {
                        main: LayoutObject::new("module"),
                        mask: 0,
                        order: Vec::new(),
                        lb: 0.0,
                    };
                    if search.keep_first {
                        // Seed under the same disarmed-budget grace the
                        // greedy completion uses (see `greedy_complete`):
                        // this path only runs because a budget expired.
                        let mut grace = opt.ctx.clone();
                        grace.limits = std::sync::Arc::new(amgen_core::Budget::unlimited().arm());
                        let c = Compactor::new(&grace);
                        c.compact(
                            &mut start.main,
                            &steps[0].obj,
                            steps[0].side,
                            &steps[0].opts,
                        )?;
                        start.mask = 1;
                        start.order.push(0);
                    }
                    greedy_complete(opt, steps, start)?
                }
            };
            let rating = opt.rate(&layout);
            (order, layout, rating)
        }
    };

    // Store the variant table for warm reuse — but only when the search
    // is a proven, clean optimum: complete (node budget never expired),
    // undegraded (deadline never expired), no worker panicked mid-search
    // (a panicked permutation was pruned, so the "optimum" is suspect),
    // and the collected winner agrees with the incumbent.
    if let Some(k) = key {
        let clean = complete
            && !degraded
            && opt.ctx.snapshot().opt_panics == panics_before
            && variants.first().is_some_and(|v| v.order == order);
        if clean {
            opt.ctx.cache_variants_put(
                k,
                std::sync::Arc::new(VariantTable {
                    layout: layout.clone(),
                    variants: variants.clone(),
                }),
            );
        }
    }

    opt.ctx
        .metrics
        .add_stage_nanos(Stage::Opt, t0.elapsed().as_nanos() as u64);
    Ok(OptResult {
        order,
        layout,
        rating,
        explored,
        pruned,
        dominated,
        workers,
        wall: t0.elapsed(),
        complete,
        degraded,
        cached: false,
        variants,
        metrics: opt.ctx.snapshot(),
    })
}

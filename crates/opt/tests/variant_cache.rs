//! The precomputed-variant table: a warm `optimize_order` with an
//! identical key is served from the generation cache in O(1), and only
//! clean, proven-complete searches are ever stored.

use amgen_compact::CompactOptions;
use amgen_core::{GenCtx, IntoGenCtx};
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{um, Dir, Rect};
use amgen_opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen_tech::Tech;

fn stripe(ctx: &GenCtx, w: i64, h: i64) -> LayoutObject {
    let poly = ctx.layer("poly").unwrap();
    let mut o = LayoutObject::new("s");
    o.push(Shape::new(poly, Rect::new(0, 0, w, h)));
    o
}

fn steps(ctx: &GenCtx) -> Vec<Step> {
    vec![
        Step::new(stripe(ctx, um(1), um(8)), Dir::East, CompactOptions::new()),
        Step::new(stripe(ctx, um(4), um(1)), Dir::North, CompactOptions::new()),
        Step::new(stripe(ctx, um(1), um(8)), Dir::East, CompactOptions::new()),
        Step::new(stripe(ctx, um(2), um(2)), Dir::East, CompactOptions::new()),
    ]
}

fn cached_ctx() -> GenCtx {
    (&Tech::bicmos_1u()).into_gen_ctx().with_default_cache()
}

#[test]
fn warm_search_is_served_from_the_variant_table() {
    let ctx = cached_ctx();
    let opt = Optimizer::new(&ctx, RatingWeights::default());
    let s = steps(&ctx);
    let cold = opt.optimize_order(&s, SearchOptions::default()).unwrap();
    assert!(!cold.cached);
    assert!(cold.complete);
    assert!(cold.explored > 0);
    assert!(
        !cold.variants.is_empty(),
        "cached contexts collect variants"
    );
    assert_eq!(
        cold.variants[0].order, cold.order,
        "variants[0] is the winner"
    );

    let warm = opt.optimize_order(&s, SearchOptions::default()).unwrap();
    assert!(warm.cached, "identical key must hit the variant table");
    assert_eq!(warm.explored, 0, "a warm result does no search work");
    assert_eq!(warm.order, cold.order);
    assert_eq!(warm.layout, cold.layout);
    assert_eq!(warm.rating.score, cold.rating.score);
    assert_eq!(warm.variants, cold.variants);
    assert!(warm.complete && !warm.degraded);
    assert!(opt.ctx().snapshot().cache_hits >= 1);
}

#[test]
fn variants_are_sorted_best_first() {
    let ctx = cached_ctx();
    let opt = Optimizer::new(&ctx, RatingWeights::default());
    let r = opt
        .optimize_order(
            &steps(&ctx),
            SearchOptions {
                keep_first: false,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(
        r.variants.len() >= 2,
        "a 4-step search rates several orders"
    );
    for w in r.variants.windows(2) {
        assert!(
            w[0].score < w[1].score || (w[0].score == w[1].score && w[0].order < w[1].order),
            "variants must be sorted by (score, order): {:?}",
            r.variants
        );
    }
    assert_eq!(r.rating.score, r.variants[0].score);
}

#[test]
fn different_keys_do_not_collide() {
    let ctx = cached_ctx();
    let opt = Optimizer::new(&ctx, RatingWeights::default());
    let s = steps(&ctx);
    let pinned = opt.optimize_order(&s, SearchOptions::default()).unwrap();
    // Same steps, different search option: a distinct key, so no hit.
    let free = opt
        .optimize_order(
            &s,
            SearchOptions {
                keep_first: false,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!free.cached, "keep_first is part of the key");
    assert!(free.rating.score <= pinned.rating.score + 1e-9);
    // Different weights: also a distinct key.
    let heavy = Optimizer::new(
        &ctx,
        RatingWeights {
            area_per_um2: 2.0,
            cap_per_af: 0.01,
        },
    );
    assert!(
        !heavy
            .optimize_order(&s, SearchOptions::default())
            .unwrap()
            .cached
    );
}

#[test]
fn incomplete_searches_are_never_stored() {
    let ctx = cached_ctx();
    let opt = Optimizer::new(&ctx, RatingWeights::default());
    let s = steps(&ctx);
    let capped = SearchOptions {
        keep_first: false,
        max_nodes: 3,
        ..Default::default()
    };
    let first = opt.optimize_order(&s, capped).unwrap();
    assert!(!first.complete, "3 nodes cannot complete a 4-step search");
    let second = opt.optimize_order(&s, capped).unwrap();
    assert!(
        !second.cached,
        "a best-effort result must never be served as a proven optimum"
    );
}

#[test]
fn uncached_contexts_are_unaffected() {
    let tech = Tech::bicmos_1u();
    let ctx = (&tech).into_gen_ctx();
    let opt = Optimizer::new(&ctx, RatingWeights::default());
    let s = steps(&ctx);
    let a = opt.optimize_order(&s, SearchOptions::default()).unwrap();
    let b = opt.optimize_order(&s, SearchOptions::default()).unwrap();
    assert!(!a.cached && !b.cached);
    assert!(a.variants.is_empty() && b.variants.is_empty());
    assert!(b.explored > 0);
    let snap = opt.ctx().snapshot();
    assert_eq!((snap.cache_hits, snap.cache_misses), (0, 0));
}

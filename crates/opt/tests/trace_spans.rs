//! Tracing correctness under the parallel optimizer: every worker's
//! span stream is balanced and properly nested (no cross-thread
//! corruption in the per-thread shards), and instrumenting a search
//! never changes its result.

use amgen_compact::CompactOptions;
use amgen_core::GenCtx;
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Dir, Rect};
use amgen_opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen_tech::Tech;
use amgen_trace::{Phase, Trace};
use proptest::prelude::*;

fn steps_from(spec: &[(i64, i64, usize)], tech: &Tech) -> Vec<Step> {
    let poly = tech.layer("poly").unwrap();
    spec.iter()
        .map(|&(w, h, side)| {
            let mut o = LayoutObject::new("s");
            o.push(Shape::new(poly, Rect::new(0, 0, w * 1_000, h * 1_000)));
            Step::new(o, Dir::ALL[side], CompactOptions::new())
        })
        .collect()
}

/// Replays each thread's events against a span stack: every `End` must
/// close the innermost open `Begin` with the same category (sink-made
/// end events carry an empty name; a non-empty one must match too),
/// and every stack must be empty afterwards. Returns spans per tid.
fn check_balanced(trace: &Trace) -> Vec<(u32, usize)> {
    let mut tids: Vec<u32> = trace.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    tids.iter()
        .map(|&tid| {
            let mut stack: Vec<(&str, String)> = Vec::new();
            let mut spans = 0usize;
            for e in trace.events.iter().filter(|e| e.tid == tid) {
                match e.phase {
                    Phase::Begin => stack.push((e.cat, e.name.to_string())),
                    Phase::End => {
                        let top = stack.pop().unwrap_or_else(|| {
                            panic!("tid {tid}: End {:?} with empty stack", e.name)
                        });
                        assert_eq!(top.0, e.cat, "tid {tid}: End cat mismatch");
                        if !e.name.is_empty() {
                            assert_eq!(
                                top.1,
                                e.name.as_ref(),
                                "tid {tid}: End does not match innermost Begin"
                            );
                        }
                        spans += 1;
                    }
                    Phase::Instant => {}
                }
            }
            assert!(stack.is_empty(), "tid {tid}: unclosed spans {stack:?}");
            (tid, spans)
        })
        .collect()
}

/// A 6-object search on 4 pinned workers floods the shards from
/// several threads at once; the drained trace must still be balanced
/// per track, with one named track per spawned worker.
#[test]
fn parallel_search_spans_balance_per_worker() {
    let tech = Tech::bicmos_1u();
    let ctx = GenCtx::from_tech(&tech).with_tracing(true);
    let opt = Optimizer::new(&ctx, RatingWeights::default());
    let spec = [
        (1, 8, 0),
        (8, 1, 0),
        (2, 2, 0),
        (3, 1, 1),
        (1, 3, 0),
        (2, 4, 2),
    ];
    let steps = steps_from(&spec, &tech);
    let res = opt
        .optimize_order(
            &steps,
            SearchOptions {
                keep_first: false,
                max_nodes: 1_000_000,
                workers: 4,
                ..SearchOptions::parallel()
            },
        )
        .unwrap();
    assert!(res.complete);

    let trace = ctx.trace.drain();
    let per_tid = check_balanced(&trace);
    assert!(
        !per_tid.is_empty() && per_tid.iter().map(|&(_, n)| n).sum::<usize>() > 0,
        "no spans recorded"
    );
    // Each of the 4 spawned workers registered its own named track.
    let workers: Vec<&str> = trace
        .threads
        .iter()
        .filter_map(|t| t.name.as_deref())
        .filter(|n| n.starts_with("opt-worker-"))
        .collect();
    assert_eq!(workers.len(), 4, "tracks: {:?}", trace.threads);
    for w in 0..4 {
        assert!(workers.contains(&format!("opt-worker-{w}").as_str()));
    }
    // Draining emptied the shards.
    assert!(ctx.trace.drain().events.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Instrumentation is observation only: the same search run with
    /// tracing enabled and disabled returns the identical order, score,
    /// and node counts (and the traced run's spans are balanced).
    #[test]
    fn tracing_does_not_change_the_search(
        spec in prop::collection::vec((1i64..8, 1i64..8, 0usize..4), 2..6),
        workers in 1usize..4,
    ) {
        let tech = Tech::bicmos_1u();
        let run = |traced: bool| {
            let ctx = GenCtx::from_tech(&tech).with_tracing(traced);
            let opt = Optimizer::new(&ctx, RatingWeights::default());
            let steps = steps_from(&spec, &tech);
            let res = opt
                .optimize_order(
                    &steps,
                    SearchOptions {
                        keep_first: false,
                        max_nodes: 1_000_000,
                        workers,
                        ..SearchOptions::parallel()
                    },
                )
                .unwrap();
            (res, ctx.trace.drain())
        };
        let (plain, silent) = run(false);
        let (traced, trace) = run(true);
        prop_assert!(silent.events.is_empty(), "disabled sink recorded events");
        prop_assert_eq!(&plain.order, &traced.order);
        prop_assert_eq!(plain.rating.score.to_bits(), traced.rating.score.to_bits());
        // (`explored` is schedule-dependent under parallel pruning, so
        // it can differ between two runs with or without tracing.)
        prop_assert_eq!(plain.complete, traced.complete);
        check_balanced(&trace);
    }
}

//! Property tests for the order optimizer: the search result is never
//! worse than any specific permutation it explored against, the parallel
//! search agrees with the sequential one, and results are deterministic.

use amgen_compact::CompactOptions;
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Dir, Rect};
use amgen_opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen_tech::Tech;
use proptest::prelude::*;

fn steps_from(spec: &[(i64, i64, usize)], tech: &Tech) -> Vec<Step> {
    let poly = tech.layer("poly").unwrap();
    spec.iter()
        .map(|&(w, h, side)| {
            let mut o = LayoutObject::new("s");
            o.push(Shape::new(poly, Rect::new(0, 0, w * 1_000, h * 1_000)));
            Step::new(o, Dir::ALL[side], CompactOptions::new())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer's score is a lower bound over every permutation
    /// (sampled via a shuffle seed) of the same steps.
    #[test]
    fn optimum_beats_any_permutation(
        spec in prop::collection::vec((1i64..8, 1i64..8, 0usize..4), 2..5),
        shuffle in prop::collection::vec(0usize..100, 2..5),
    ) {
        let tech = Tech::bicmos_1u();
        let opt = Optimizer::new(&tech, RatingWeights::default());
        let steps = steps_from(&spec, &tech);
        let best = opt
            .optimize_order(
                &steps,
                SearchOptions { keep_first: false, max_nodes: 100_000, ..Default::default() },
            )
            .unwrap();
        // Build one specific permutation derived from the shuffle values.
        let mut order: Vec<usize> = (0..steps.len()).collect();
        for (i, &s) in shuffle.iter().enumerate() {
            let j = s % steps.len();
            order.swap(i % steps.len(), j);
        }
        let permuted: Vec<Step> = order.iter().map(|&i| steps[i].clone()).collect();
        let (_, perm_rating) = opt.build(&permuted).unwrap();
        prop_assert!(
            best.rating.score <= perm_rating.score + 1e-9,
            "optimizer {} > permutation {} (order {order:?})",
            best.rating.score,
            perm_rating.score
        );
    }

    /// The reported best order reproduces the reported rating exactly.
    #[test]
    fn reported_order_reproduces_rating(
        spec in prop::collection::vec((1i64..8, 1i64..8, 0usize..4), 2..5),
    ) {
        let tech = Tech::bicmos_1u();
        let opt = Optimizer::new(&tech, RatingWeights::default());
        let steps = steps_from(&spec, &tech);
        let best = opt.optimize_order(&steps, SearchOptions::default()).unwrap();
        let reordered: Vec<Step> = best.order.iter().map(|&i| steps[i].clone()).collect();
        let (_, rating) = opt.build(&reordered).unwrap();
        prop_assert!((rating.score - best.rating.score).abs() < 1e-9);
    }

    /// The parallel search returns the same best score — and, through the
    /// lexicographic tie-break, the same best order — as the sequential
    /// search, on random 3–6-step workloads.
    #[test]
    fn parallel_matches_sequential(
        spec in prop::collection::vec((1i64..8, 1i64..8, 0usize..4), 3..7),
    ) {
        let tech = Tech::bicmos_1u();
        let opt = Optimizer::new(&tech, RatingWeights::default());
        let steps = steps_from(&spec, &tech);
        let base = SearchOptions { keep_first: false, max_nodes: 1_000_000, ..Default::default() };
        let seq = opt.optimize_order(&steps, base).unwrap();
        let par = opt
            .optimize_order(&steps, SearchOptions { workers: 4, ..base })
            .unwrap();
        prop_assert_eq!(seq.rating.score, par.rating.score);
        prop_assert_eq!(&seq.order, &par.order);
        // Dominance off must not change the answer either (it may only
        // explore more).
        let plain = opt
            .optimize_order(&steps, SearchOptions { dominance: false, ..base })
            .unwrap();
        prop_assert_eq!(seq.rating.score, plain.rating.score);
        prop_assert_eq!(&seq.order, &plain.order);
        prop_assert!(seq.explored <= plain.explored);
    }

    /// Two runs with the same parallel configuration give identical
    /// results, bit for bit — thread scheduling must not leak into the
    /// answer.
    #[test]
    fn parallel_search_is_deterministic(
        spec in prop::collection::vec((1i64..8, 1i64..8, 0usize..4), 3..7),
    ) {
        let tech = Tech::bicmos_1u();
        let opt = Optimizer::new(&tech, RatingWeights::default());
        let steps = steps_from(&spec, &tech);
        let opts = SearchOptions {
            keep_first: false,
            max_nodes: 1_000_000,
            workers: 4,
            ..Default::default()
        };
        let a = opt.optimize_order(&steps, opts).unwrap();
        let b = opt.optimize_order(&steps, opts).unwrap();
        prop_assert_eq!(a.rating.score, b.rating.score);
        prop_assert_eq!(a.order, b.order);
    }
}

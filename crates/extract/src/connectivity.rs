//! Geometric connectivity extraction (union-find over shapes).

use amgen_core::{GenCtx, IntoGenCtx, Stage};
use amgen_db::LayoutObject;
use amgen_tech::{LayerKind, RuleSet};

/// One electrically connected component of a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedNet {
    /// Indices of the member shapes.
    pub shapes: Vec<usize>,
    /// Declared net names found on the members (deduplicated).
    ///
    /// A rule-clean layout has at most one entry; more than one means
    /// geometry shorted two declared potentials, none means the component
    /// is undeclared (internal wiring).
    pub declared: Vec<String>,
}

impl ExtractedNet {
    /// True if the component shorts two declared potentials.
    pub fn is_conflict(&self) -> bool {
        self.declared.len() > 1
    }
}

/// Connectivity/parasitic extractor bound to one generation context.
#[derive(Debug, Clone)]
pub struct Extractor {
    pub(crate) ctx: GenCtx,
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let r = self.find(self.parent[i]);
            self.parent[i] = r;
        }
        self.parent[i]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

impl Extractor {
    /// Binds the extractor to a generation context (or anything that
    /// converts into one, e.g. `&Tech`).
    pub fn new(ctx: impl IntoGenCtx) -> Extractor {
        Extractor {
            ctx: ctx.into_gen_ctx(),
        }
    }

    /// The shared generation context.
    pub fn ctx(&self) -> &GenCtx {
        &self.ctx
    }

    /// The compiled rule kernel.
    pub fn rules(&self) -> &RuleSet {
        &self.ctx
    }

    /// Extracts the electrically connected components.
    ///
    /// Rules:
    ///
    /// * **diffusion is split by gates**: every diffusion shape is first
    ///   fragmented against the overlapping poly shapes — the channel
    ///   under a gate separates source from drain even though the drawn
    ///   diffusion is one rectangle;
    /// * two fragments on the same **conductor** layer connect when they
    ///   touch or overlap;
    /// * a **cut** connects to the overlapping fragments of its
    ///   connectable layers — all routing-metal fragments, but on the
    ///   device side only the **most specific** layer (the one with the
    ///   smallest overlapping fragment). A contact over an
    ///   emitter-in-base stack therefore contacts the emitter, not the
    ///   base beneath it;
    /// * distinct conductor layers never connect by bare overlap (stacks
    ///   are junction-isolated);
    /// * non-conductor, non-cut layers (wells, implants) are left out.
    ///
    /// A diffusion shape crossed by a gate belongs to every component one
    /// of its fragments joined (its two halves are different nets).
    ///
    /// The gate-fragmentation, same-layer-contact and cut passes all run
    /// on packed [`RectTree`](amgen_geom::RectTree)s over the fragment
    /// rectangles — window queries instead of per-bucket all-pairs scans.
    /// Queries return candidates in ascending order and every exact
    /// predicate is re-applied, so the union-find sees the same unions in
    /// the same order as the scan and the extracted nets are
    /// byte-identical ([`connectivity_scan`](Extractor::connectivity_scan)
    /// is the parity baseline).
    pub fn connectivity(&self, obj: &LayoutObject) -> Vec<ExtractedNet> {
        self.connectivity_impl(obj, true)
    }

    /// The pre-index all-pairs connectivity pass, kept as the baseline
    /// the indexed pass is parity-tested against.
    #[doc(hidden)]
    pub fn connectivity_scan(&self, obj: &LayoutObject) -> Vec<ExtractedNet> {
        self.connectivity_impl(obj, false)
    }

    fn connectivity_impl(&self, obj: &LayoutObject, indexed: bool) -> Vec<ExtractedNet> {
        use amgen_geom::RectTree;
        let t0 = std::time::Instant::now();
        let mut span = self
            .ctx
            .span(Stage::Extract, || format!("connectivity:{}", obj.name()));
        span.arg("shapes", obj.len());
        let shapes = obj.shapes();
        // Gate regions that cut diffusion.
        let gates: Vec<amgen_geom::Rect> = shapes
            .iter()
            .filter(|s| self.ctx.kind(s.layer) == LayerKind::Poly)
            .map(|s| s.rect)
            .collect();
        let gate_tree =
            indexed.then(|| RectTree::build(gates.iter().enumerate().map(|(i, r)| (*r, i as u32))));
        // Fragment table.
        struct Frag {
            shape: usize,
            rect: amgen_geom::Rect,
        }
        let mut frags: Vec<Frag> = Vec::new();
        let mut cand: Vec<u32> = Vec::new();
        let mut ids: Vec<usize> = Vec::new();
        for (i, s) in shapes.iter().enumerate() {
            let k = self.ctx.kind(s.layer);
            if !(k.is_conductor() || k == LayerKind::Cut) {
                continue;
            }
            if k == LayerKind::Diffusion {
                let mut pieces = vec![s.rect];
                // The candidate set (sorted ascending) filtered by the
                // exact overlap test is the scan's gate subsequence.
                ids.clear();
                match &gate_tree {
                    Some(t) => {
                        t.query_into(&s.rect, &mut cand);
                        ids.extend(cand.iter().map(|&g| g as usize));
                    }
                    None => ids.extend(0..gates.len()),
                }
                for &gi in &ids {
                    let g = &gates[gi];
                    if !g.overlaps(&s.rect) {
                        continue;
                    }
                    pieces = pieces.into_iter().flat_map(|p| p.subtract(g)).collect();
                }
                for rect in pieces {
                    frags.push(Frag { shape: i, rect });
                }
            } else {
                frags.push(Frag {
                    shape: i,
                    rect: s.rect,
                });
            }
        }
        let mut uf = UnionFind::new(frags.len());
        // Same-layer conductor contact. Only same-layer pairs can touch,
        // so bucket the fragments per layer first (the amplifier has
        // thousands of fragments; all-pairs across layers would dominate).
        let mut by_layer: std::collections::BTreeMap<amgen_tech::Layer, Vec<usize>> =
            Default::default();
        for (fi, f) in frags.iter().enumerate() {
            by_layer.entry(shapes[f.shape].layer).or_default().push(fi);
        }
        // One tree per layer bucket; payloads are *positions* in the
        // bucket's member list (ascending position = ascending fragment).
        let trees: Option<std::collections::BTreeMap<amgen_tech::Layer, RectTree>> =
            indexed.then(|| {
                by_layer
                    .iter()
                    .map(|(&l, members)| {
                        (
                            l,
                            RectTree::build(
                                members
                                    .iter()
                                    .enumerate()
                                    .map(|(p, &fi)| (frags[fi].rect, p as u32)),
                            ),
                        )
                    })
                    .collect()
            });
        for (layer, members) in &by_layer {
            if !self.ctx.kind(*layer).is_conductor() {
                continue;
            }
            for (p, &i) in members.iter().enumerate() {
                let ri = frags[i].rect;
                ids.clear();
                match &trees {
                    Some(tm) => {
                        tm[layer].query_into(&ri, &mut cand);
                        ids.extend(cand.iter().map(|&q| q as usize).filter(|&q| q > p));
                    }
                    None => ids.extend((p + 1)..members.len()),
                }
                for &q in &ids {
                    let j = members[q];
                    if ri.overlaps(&frags[j].rect) || ri.abuts(&frags[j].rect) {
                        uf.union(i, j);
                    }
                }
            }
        }
        // Cuts.
        for ci in 0..frags.len() {
            let cut_layer = shapes[frags[ci].shape].layer;
            if self.ctx.kind(cut_layer) != LayerKind::Cut {
                continue;
            }
            let cut_rect = frags[ci].rect;
            let mut metal_side: Vec<usize> = Vec::new();
            let mut device_side: Vec<usize> = Vec::new();
            // Only fragments on layers this cut can connect matter.
            for &(a, b) in self.ctx.connected_pairs(cut_layer) {
                for ol in [a, b] {
                    let Some(members) = by_layer.get(&ol) else {
                        continue;
                    };
                    ids.clear();
                    match &trees {
                        Some(tm) => {
                            tm[&ol].query_into(&cut_rect, &mut cand);
                            ids.extend(cand.iter().map(|&q| members[q as usize]));
                        }
                        None => ids.extend(members.iter().copied()),
                    }
                    for &oi in &ids {
                        if oi == ci || !cut_rect.overlaps(&frags[oi].rect) {
                            continue;
                        }
                        if self.ctx.kind(ol) == LayerKind::Metal {
                            if !metal_side.contains(&oi) {
                                metal_side.push(oi);
                            }
                        } else if !device_side.contains(&oi) {
                            device_side.push(oi);
                        }
                    }
                }
            }
            for &oi in &metal_side {
                uf.union(ci, oi);
            }
            if !device_side.is_empty() {
                // Most specific device layer: smallest overlapping fragment.
                let best_layer = device_side
                    .iter()
                    .min_by_key(|&&oi| frags[oi].rect.area())
                    .map(|&oi| shapes[frags[oi].shape].layer)
                    .expect("non-empty");
                for &oi in &device_side {
                    if shapes[frags[oi].shape].layer == best_layer {
                        uf.union(ci, oi);
                    }
                }
            }
        }
        // Collect components (shape indices, deduplicated).
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (fi, f) in frags.iter().enumerate() {
            by_root.entry(uf.find(fi)).or_default().push(f.shape);
        }
        let mut nets: Vec<ExtractedNet> = by_root
            .into_values()
            .map(|mut members| {
                members.sort_unstable();
                members.dedup();
                let mut declared: Vec<String> = members
                    .iter()
                    .filter_map(|&i| shapes[i].net)
                    .map(|n| obj.net_name(n).to_string())
                    .collect();
                declared.sort();
                declared.dedup();
                ExtractedNet {
                    shapes: members,
                    declared,
                }
            })
            .collect();
        nets.sort_by(|a, b| a.shapes.cmp(&b.shapes));
        self.ctx
            .metrics
            .add_stage_nanos(Stage::Extract, t0.elapsed().as_nanos() as u64);
        nets
    }

    /// Extracted components that short two declared potentials — the
    /// connectivity audit used by integration tests.
    pub fn conflicts(&self, obj: &LayoutObject) -> Vec<ExtractedNet> {
        self.connectivity(obj)
            .into_iter()
            .filter(ExtractedNet::is_conflict)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::Shape;
    use amgen_geom::{um, Rect};
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn touching_same_layer_connects() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(m1, Rect::new(um(2), 0, um(4), um(2))));
        let nets = Extractor::new(&t).connectivity(&obj);
        assert_eq!(nets.len(), 1);
        assert_eq!(nets[0].shapes, vec![0, 1]);
    }

    #[test]
    fn separated_same_layer_does_not_connect() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(m1, Rect::new(um(4), 0, um(6), um(2))));
        assert_eq!(Extractor::new(&t).connectivity(&obj).len(), 2);
    }

    #[test]
    fn stacked_conductors_need_a_cut() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))));
        let e = Extractor::new(&t);
        assert_eq!(e.connectivity(&obj).len(), 2, "no cut: two nets");
        obj.push(Shape::new(ct, Rect::new(500, 500, 1_500, 1_500)));
        let nets = e.connectivity(&obj);
        assert_eq!(nets.len(), 1, "the contact bridges poly and metal1");
        assert_eq!(nets[0].shapes, vec![0, 1, 2]);
    }

    #[test]
    fn via_does_not_connect_poly() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let m2 = t.layer("metal2").unwrap();
        let via = t.layer("via1").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(m2, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(via, Rect::new(500, 500, 1_500, 1_500)));
        // via1 connects metal1-metal2 only: poly stays separate.
        let nets = Extractor::new(&t).connectivity(&obj);
        assert_eq!(nets.len(), 2);
    }

    #[test]
    fn wells_are_ignored() {
        let t = tech();
        let nwell = t.layer("nwell").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(nwell, Rect::new(0, 0, um(20), um(20))));
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(m1, Rect::new(um(10), 0, um(12), um(2))));
        // The well touches both metals but connects nothing.
        assert_eq!(Extractor::new(&t).connectivity(&obj).len(), 2);
    }

    #[test]
    fn conflict_detection() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let a = obj.net("vdd");
        let b = obj.net("gnd");
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))).with_net(a));
        obj.push(Shape::new(m1, Rect::new(um(1), 0, um(3), um(2))).with_net(b));
        let conflicts = Extractor::new(&t).conflicts(&obj);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(
            conflicts[0].declared,
            vec!["gnd".to_string(), "vdd".to_string()]
        );
    }

    #[test]
    fn clean_layout_has_no_conflicts() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let a = obj.net("vdd");
        let b = obj.net("gnd");
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))).with_net(a));
        obj.push(Shape::new(m1, Rect::new(um(4), 0, um(6), um(2))).with_net(b));
        assert!(Extractor::new(&t).conflicts(&obj).is_empty());
    }

    /// The tree-backed passes must reproduce the all-pairs scan byte for
    /// byte — including gate-split diffusion fragments and the
    /// most-specific-layer cut resolution.
    #[test]
    fn indexed_matches_scan_byte_for_byte() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let pdiff = t.layer("pdiff").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let e = Extractor::new(&t);
        let mut obj = LayoutObject::new("x");
        let d = obj.net("drain");
        // A transistor-ish stack: diffusion crossed by two gates, with
        // contacts and metal straps, plus a disconnected metal chain.
        obj.push(Shape::new(pdiff, Rect::new(0, 0, um(12), um(4))).with_net(d));
        obj.push(Shape::new(poly, Rect::new(um(3), -um(1), um(4), um(5))));
        obj.push(Shape::new(poly, Rect::new(um(7), -um(1), um(8), um(5))));
        obj.push(Shape::new(ct, Rect::new(um(1), um(1), um(2), um(2))));
        obj.push(Shape::new(ct, Rect::new(um(9), um(1), um(10), um(2))));
        obj.push(Shape::new(m1, Rect::new(0, um(1), um(3), um(2))));
        obj.push(Shape::new(m1, Rect::new(um(8), um(1), um(12), um(2))));
        for i in 0..6 {
            obj.push(Shape::new(
                m1,
                Rect::new(i * um(2), um(8), (i + 1) * um(2), um(10)),
            ));
        }
        let indexed = e.connectivity(&obj);
        let scan = e.connectivity_scan(&obj);
        assert!(indexed.len() > 1);
        assert_eq!(indexed, scan);
        assert_eq!(e.parasitics(&obj), e.parasitics_scan(&obj));
    }

    #[test]
    fn chain_of_touches_is_one_net() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        for i in 0..5 {
            obj.push(Shape::new(
                m1,
                Rect::new(i * um(2), 0, (i + 1) * um(2), um(2)),
            ));
        }
        let nets = Extractor::new(&t).connectivity(&obj);
        assert_eq!(nets.len(), 1);
        assert_eq!(nets[0].shapes.len(), 5);
    }
}

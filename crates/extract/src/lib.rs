//! Connectivity extraction and parasitic estimation.
//!
//! The paper's optimizer rates layouts by *"the area and electrical
//! conditions"*, and the amplifier's quality is judged by *"parasitic
//! capacitances of the internal nodes"*. This crate supplies those
//! numbers:
//!
//! * [`Extractor::connectivity`] — groups shapes into electrical nets by
//!   geometric contact (same-layer touch/overlap) and through cut layers,
//!   and cross-checks the result against the declared potentials,
//! * [`Extractor::parasitics`] — per-net capacitance from the technology's
//!   area/fringe coefficients over the **merged** geometry (overlaps
//!   counted once) and a series wire-resistance estimate from sheet
//!   resistances.
//!
//! # Example
//!
//! ```
//! use amgen_db::{LayoutObject, Shape};
//! use amgen_extract::Extractor;
//! use amgen_geom::Rect;
//! use amgen_tech::Tech;
//!
//! let tech = Tech::bicmos_1u();
//! let m1 = tech.layer("metal1").unwrap();
//! let mut obj = LayoutObject::new("wire");
//! let net = obj.net("sig");
//! obj.push(Shape::new(m1, Rect::new(0, 0, 10_000, 1_500)).with_net(net));
//! let nets = Extractor::new(&tech).parasitics(&obj);
//! assert_eq!(nets.len(), 1);
//! assert!(nets[0].cap_af > 0.0);
//! ```

pub mod connectivity;
pub mod parasitics;

pub use connectivity::{ExtractedNet, Extractor};
pub use parasitics::NetParasitics;

//! Per-net parasitic estimation.

use amgen_core::Stage;
use amgen_db::LayoutObject;
use amgen_geom::Region;
use amgen_tech::LayerKind;

use crate::connectivity::Extractor;

/// Parasitics of one extracted net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetParasitics {
    /// Declared name, when the net carries exactly one.
    pub name: Option<String>,
    /// Member shape indices.
    pub shapes: Vec<usize>,
    /// Total capacitance to substrate in attofarads (area + fringe over
    /// the merged geometry of each conductor layer).
    pub cap_af: f64,
    /// Crude series wire resistance estimate in milliohms: for every
    /// conductor shape, `sheet × (long dimension / short dimension)`,
    /// summed. Cut layers contribute nothing.
    pub res_mohm: f64,
}

impl Extractor {
    /// Extracts connectivity and computes parasitics for every net.
    ///
    /// Overlapping same-layer geometry is merged before the capacitance
    /// integral, so abutting rectangles are not double counted.
    pub fn parasitics(&self, obj: &LayoutObject) -> Vec<NetParasitics> {
        let nets = self.connectivity(obj);
        self.parasitics_of(obj, nets)
    }

    /// [`parasitics`](Extractor::parasitics) over the linear-scan
    /// connectivity pass, for the byte-identity parity baseline.
    #[doc(hidden)]
    pub fn parasitics_scan(&self, obj: &LayoutObject) -> Vec<NetParasitics> {
        let nets = self.connectivity_scan(obj);
        self.parasitics_of(obj, nets)
    }

    fn parasitics_of(
        &self,
        obj: &LayoutObject,
        nets: Vec<crate::ExtractedNet>,
    ) -> Vec<NetParasitics> {
        let _span = self
            .ctx
            .span(Stage::Extract, || format!("parasitics:{}", obj.name()));
        let tech = self.rules();
        nets.into_iter()
            .map(|net| {
                let mut cap = 0.0f64;
                let mut res = 0.0f64;
                // Group the member shapes per layer.
                let mut layers: Vec<amgen_tech::Layer> =
                    net.shapes.iter().map(|&i| obj.shapes()[i].layer).collect();
                layers.sort_unstable();
                layers.dedup();
                for layer in layers {
                    if !tech.kind(layer).is_conductor() {
                        continue;
                    }
                    let region: Region = net
                        .shapes
                        .iter()
                        .map(|&i| &obj.shapes()[i])
                        .filter(|s| s.layer == layer)
                        .map(|s| s.rect)
                        .collect();
                    let cc = tech.cap_coeffs(layer);
                    // Convert du² (nm²) to µm² and du (nm) to µm.
                    let area_um2 = region.area() as f64 / 1e6;
                    let perim_um = region.perimeter() as f64 / 1e3;
                    cap += area_um2 * cc.area_af_per_um2 + perim_um * cc.fringe_af_per_um;
                    if let Some(sheet) = tech.sheet_res_mohm(layer) {
                        for &i in &net.shapes {
                            let s = &obj.shapes()[i];
                            if s.layer != layer {
                                continue;
                            }
                            let (w, h) = (s.rect.width().max(1), s.rect.height().max(1));
                            let squares = w.max(h) as f64 / w.min(h) as f64;
                            res += sheet as f64 * squares;
                        }
                    }
                }
                let name = if net.declared.len() == 1 {
                    Some(net.declared[0].clone())
                } else {
                    None
                };
                NetParasitics {
                    name,
                    shapes: net.shapes,
                    cap_af: cap,
                    res_mohm: res,
                }
            })
            .collect()
    }

    /// Total parasitic capacitance of the layout in attofarads —
    /// the scalar "electrical conditions" term of the paper's rating
    /// function, optionally weighted per net name.
    ///
    /// `weight` receives the declared net name (or `None`) and returns a
    /// multiplier; sensitive signal nets can be weighted above supplies.
    pub fn weighted_cap_af<F>(&self, obj: &LayoutObject, weight: F) -> f64
    where
        F: Fn(Option<&str>) -> f64,
    {
        self.parasitics(obj)
            .iter()
            .map(|n| n.cap_af * weight(n.name.as_deref()))
            .sum()
    }
}

/// Capacitance of a single isolated rectangle on a layer (helper for
/// tests and quick estimates), in attofarads.
pub fn rect_cap_af(
    ctx: impl amgen_core::IntoGenCtx,
    layer: amgen_tech::Layer,
    rect: amgen_geom::Rect,
) -> f64 {
    let ctx = ctx.into_gen_ctx();
    if ctx.kind(layer) == LayerKind::Cut {
        return 0.0;
    }
    let cc = ctx.cap_coeffs(layer);
    let area_um2 = rect.area() as f64 / 1e6;
    let perim_um = 2.0 * (rect.width() + rect.height()) as f64 / 1e3;
    area_um2 * cc.area_af_per_um2 + perim_um * cc.fringe_af_per_um
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::Shape;
    use amgen_geom::{um, Rect};
    use amgen_tech::Tech;

    #[test]
    fn single_wire_matches_hand_calculation() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let n = obj.net("sig");
        // 10 um x 1.5 um metal1: area 15 um^2, perimeter 23 um.
        obj.push(Shape::new(m1, Rect::new(0, 0, um(10), 1_500)).with_net(n));
        let nets = Extractor::new(&t).parasitics(&obj);
        assert_eq!(nets.len(), 1);
        let cc = t.cap_coeffs(m1);
        let expected = 15.0 * cc.area_af_per_um2 + 23.0 * cc.fringe_af_per_um;
        assert!(
            (nets[0].cap_af - expected).abs() < 1e-9,
            "{}",
            nets[0].cap_af
        );
        assert_eq!(nets[0].name.as_deref(), Some("sig"));
        // Resistance: 10/1.5 squares at 70 mohm.
        let squares = um(10) as f64 / 1_500.0;
        assert!((nets[0].res_mohm - 70.0 * squares).abs() < 1e-9);
    }

    #[test]
    fn overlapping_geometry_is_not_double_counted() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut single = LayoutObject::new("a");
        single.push(Shape::new(m1, Rect::new(0, 0, um(10), um(2))));
        let mut split = LayoutObject::new("b");
        // The same footprint as two overlapping halves.
        split.push(Shape::new(m1, Rect::new(0, 0, um(6), um(2))));
        split.push(Shape::new(m1, Rect::new(um(4), 0, um(10), um(2))));
        let e = Extractor::new(&t);
        let ca = e.parasitics(&single)[0].cap_af;
        let cb = e.parasitics(&split)[0].cap_af;
        assert!((ca - cb).abs() < 1e-9, "{ca} vs {cb}");
    }

    #[test]
    fn poly_wire_has_higher_resistance_than_metal() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let e = Extractor::new(&t);
        let wire = |layer| {
            let mut obj = LayoutObject::new("w");
            obj.push(Shape::new(layer, Rect::new(0, 0, um(20), um(1))));
            e.parasitics(&obj)[0].res_mohm
        };
        assert!(wire(poly) > 100.0 * wire(m1));
    }

    #[test]
    fn weighted_cap_can_emphasise_signal_nets() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let sig = obj.net("sig");
        let vdd = obj.net("vdd");
        obj.push(Shape::new(m1, Rect::new(0, 0, um(10), um(2))).with_net(sig));
        obj.push(Shape::new(m1, Rect::new(0, um(5), um(10), um(7))).with_net(vdd));
        let e = Extractor::new(&t);
        let flat = e.weighted_cap_af(&obj, |_| 1.0);
        let weighted = e.weighted_cap_af(&obj, |n| if n == Some("sig") { 10.0 } else { 1.0 });
        assert!(weighted > flat);
    }

    #[test]
    fn rect_cap_helper_matches_extractor() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let r = Rect::new(0, 0, um(4), um(2));
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(m1, r));
        let via_extractor = Extractor::new(&t).parasitics(&obj)[0].cap_af;
        assert!((rect_cap_af(&t, m1, r) - via_extractor).abs() < 1e-9);
    }

    #[test]
    fn cut_layers_contribute_no_cap() {
        let t = Tech::bicmos_1u();
        let ct = t.layer("contact").unwrap();
        assert_eq!(rect_cap_af(&t, ct, Rect::new(0, 0, 1_000, 1_000)), 0.0);
    }
}

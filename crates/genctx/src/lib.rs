//! The shared generation context threaded through every pipeline stage.
//!
//! Every stage of the module generator — primitive shape functions,
//! the successive compactor and its rebuild hooks, DRC, extraction,
//! routing, the module library, the language interpreter and the order
//! optimizer — is design-rule driven: rule lookup is the innermost loop
//! of the whole system. [`GenCtx`] packages the compiled, immutable
//! [`RuleSet`] kernel together with generation options and cheap atomic
//! [`Metrics`] so that all stages consume *one* shared context:
//!
//! * `rules` is an [`Arc<RuleSet>`] — cloning a `GenCtx` (for a parallel
//!   search worker, say) bumps a reference count instead of deep-cloning
//!   the rule database;
//! * `GenCtx` derefs to [`RuleSet`], so `ctx.min_spacing(a, b)` works
//!   anywhere a `&Tech` query used to;
//! * `metrics` carries relaxed atomic per-stage counters (objects
//!   placed, group rebuilds, DRC checks, optimizer search statistics,
//!   wall time per stage) plus the kernel's rule-query counter,
//!   surfaced via [`GenCtx::snapshot`];
//! * `trace` carries a shared [`TraceSink`] recording structured span /
//!   instant events per stage — disabled by default (one branch per
//!   call site), switched on with [`GenCtx::with_tracing`] and drained
//!   into a Chrome-trace JSON or the [`GenCtx::run_report`] text.
//!
//! Construction is cheap to write at every call site thanks to the
//! [`IntoGenCtx`] compat shim: APIs accept `impl IntoGenCtx`, so a
//! `&Tech` (compiled on the spot), a `&GenCtx` (shared) or an owned
//! `GenCtx` all work.
//!
//! ```
//! use amgen_core::GenCtx;
//! use amgen_tech::Tech;
//!
//! let tech = Tech::bicmos_1u();
//! let ctx = GenCtx::from_tech(&tech);
//! let poly = ctx.poly().unwrap();
//! assert_eq!(ctx.min_width(poly), tech.min_width(poly));
//! let worker = ctx.clone(); // Arc bump, not a rule-table copy
//! assert!(std::sync::Arc::ptr_eq(&ctx.rules, &worker.rules));
//! ```

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use amgen_tech::{RuleSet, Tech};
pub use amgen_trace::Detail;
pub use amgen_trace::{name, Name};
use amgen_trace::{Span, TraceSink};

pub mod cache;
pub use cache::{CachedModule, CanonParam, GenCache, GenKey, PlacementVariant, VariantTable};
pub mod robust;
pub mod snapshot;
pub use robust::{
    Budget, CancelToken, CostEstimate, FaultAction, FaultHook, FaultSite, GenError, GenErrorKind,
    GenResult, Limits, Resource,
};
pub use snapshot::{SnapshotError, SnapshotStats};

/// Options that apply to a whole generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenOptions {
    /// Count every rule query in the kernel (off by default; the counter
    /// costs one relaxed atomic add per query when enabled).
    pub count_rule_queries: bool,
}

/// The pipeline stages instrumented by [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Primitive shape functions.
    Prim,
    /// The successive compactor.
    Compact,
    /// Design-rule checking (incl. latch-up).
    Drc,
    /// Connectivity / parasitic extraction.
    Extract,
    /// Wiring routines.
    Route,
    /// The module library generators.
    Modgen,
    /// The language interpreter.
    Dsl,
    /// The compaction-order optimizer.
    Opt,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Prim,
        Stage::Compact,
        Stage::Drc,
        Stage::Extract,
        Stage::Route,
        Stage::Modgen,
        Stage::Dsl,
        Stage::Opt,
    ];

    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Prim => "prim",
            Stage::Compact => "compact",
            Stage::Drc => "drc",
            Stage::Extract => "extract",
            Stage::Route => "route",
            Stage::Modgen => "modgen",
            Stage::Dsl => "dsl",
            Stage::Opt => "opt",
        }
    }
}

/// Cheap per-stage counters, shared by all clones of a [`GenCtx`].
///
/// All counters are relaxed atomics: incrementing from parallel search
/// workers is safe and nearly free, and a torn read can at worst lag a
/// concurrent writer by a few events.
#[derive(Debug, Default)]
pub struct Metrics {
    objects_placed: AtomicU64,
    shapes_generated: AtomicU64,
    rebuilds: AtomicU64,
    drc_checks: AtomicU64,
    opt_explored: AtomicU64,
    opt_pruned: AtomicU64,
    opt_dominated: AtomicU64,
    opt_panics: AtomicU64,
    faults_injected: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evicted: AtomicU64,
    admission_refused: AtomicU64,
    stage_nanos: [AtomicU64; Stage::ALL.len()],
}

impl Metrics {
    /// A fresh, all-zero metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records `n` objects placed into a layout.
    #[inline]
    pub fn add_objects_placed(&self, n: u64) {
        self.objects_placed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` shapes appended by geometry builtins. The language
    /// interpreter charges the exact per-call delta, so the counter is
    /// directly comparable to the shape bound of a static
    /// `CostCertificate` (amgen-lint).
    #[inline]
    pub fn add_shapes_generated(&self, n: u64) {
        self.shapes_generated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one contact-array group rebuild.
    #[inline]
    pub fn add_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` individual DRC checks.
    #[inline]
    pub fn add_drc_checks(&self, n: u64) {
        self.drc_checks.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` search nodes expanded by the order optimizer.
    #[inline]
    pub fn add_opt_explored(&self, n: u64) {
        self.opt_explored.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` search nodes cut by the optimizer's bound.
    #[inline]
    pub fn add_opt_pruned(&self, n: u64) {
        self.opt_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` search nodes cut by the optimizer's dominance memo.
    #[inline]
    pub fn add_opt_dominated(&self, n: u64) {
        self.opt_dominated.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one optimizer worker panic that was caught and isolated.
    #[inline]
    pub fn add_opt_panic(&self) {
        self.opt_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one injected fault that fired (testing only).
    #[inline]
    pub fn add_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one generation-cache hit.
    #[inline]
    pub fn add_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one generation-cache miss.
    #[inline]
    pub fn add_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` generation-cache evictions.
    #[inline]
    pub fn add_cache_evicted(&self, n: u64) {
        self.cache_evicted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one run refused at static admission (a cost certificate
    /// proved the budget insufficient before anything executed).
    #[inline]
    pub fn add_admission_refused(&self) {
        self.admission_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds wall time to a stage's bucket.
    #[inline]
    pub fn add_stage_nanos(&self, stage: Stage, nanos: u64) {
        self.stage_nanos[stage as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Runs `f`, charging its wall time to `stage`.
    pub fn time<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add_stage_nanos(stage, t0.elapsed().as_nanos() as u64);
        r
    }

    /// Wall nanoseconds charged to a stage so far.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage as usize].load(Ordering::Relaxed)
    }

    /// Reads every counter into a [`MetricsSnapshot`]. The kernel's
    /// `rule_queries` counter lives on the `RuleSet`, not here, so it
    /// stays 0 — [`GenCtx::snapshot`] fills it in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut stage_nanos = [0u64; Stage::ALL.len()];
        for (slot, stage) in stage_nanos.iter_mut().zip(Stage::ALL) {
            *slot = self.stage_nanos(stage);
        }
        MetricsSnapshot {
            rule_queries: 0,
            objects_placed: self.objects_placed.load(Ordering::Relaxed),
            shapes_generated: self.shapes_generated.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            drc_checks: self.drc_checks.load(Ordering::Relaxed),
            opt_explored: self.opt_explored.load(Ordering::Relaxed),
            opt_pruned: self.opt_pruned.load(Ordering::Relaxed),
            opt_dominated: self.opt_dominated.load(Ordering::Relaxed),
            opt_panics: self.opt_panics.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evicted: self.cache_evicted.load(Ordering::Relaxed),
            admission_refused: self.admission_refused.load(Ordering::Relaxed),
            stage_nanos,
        }
    }

    /// Adds every counter of `snap` into this block — the aggregation
    /// primitive for a serving front-end that meters each request on a
    /// fresh `Metrics` (so the response carries per-request numbers) and
    /// folds the deltas into a long-lived per-tenant block afterwards.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        self.objects_placed
            .fetch_add(snap.objects_placed, Ordering::Relaxed);
        self.shapes_generated
            .fetch_add(snap.shapes_generated, Ordering::Relaxed);
        self.rebuilds.fetch_add(snap.rebuilds, Ordering::Relaxed);
        self.drc_checks
            .fetch_add(snap.drc_checks, Ordering::Relaxed);
        self.opt_explored
            .fetch_add(snap.opt_explored, Ordering::Relaxed);
        self.opt_pruned
            .fetch_add(snap.opt_pruned, Ordering::Relaxed);
        self.opt_dominated
            .fetch_add(snap.opt_dominated, Ordering::Relaxed);
        self.opt_panics
            .fetch_add(snap.opt_panics, Ordering::Relaxed);
        self.faults_injected
            .fetch_add(snap.faults_injected, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(snap.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(snap.cache_misses, Ordering::Relaxed);
        self.cache_evicted
            .fetch_add(snap.cache_evicted, Ordering::Relaxed);
        self.admission_refused
            .fetch_add(snap.admission_refused, Ordering::Relaxed);
        for (slot, &ns) in self.stage_nanos.iter().zip(snap.stage_nanos.iter()) {
            slot.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// An RAII guard that charges the wall time from its creation to its
    /// drop against `stage` — the ergonomic form of [`Metrics::time`] for
    /// functions with early returns.
    pub fn stage_timer(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer {
            metrics: self,
            stage,
            start: Instant::now(),
        }
    }
}

/// Guard returned by [`Metrics::stage_timer`]; adds the elapsed wall time
/// to the stage bucket when dropped.
#[derive(Debug)]
pub struct StageTimer<'m> {
    metrics: &'m Metrics,
    stage: Stage,
    start: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.metrics
            .add_stage_nanos(self.stage, self.start.elapsed().as_nanos() as u64);
    }
}

/// A point-in-time copy of all counters, for reports.
///
/// ```
/// use amgen_core::GenCtx;
/// use amgen_tech::Tech;
///
/// let ctx = GenCtx::from_tech(&Tech::bicmos_1u());
/// ctx.metrics.add_rebuild();
/// ctx.metrics.add_opt_explored(3);
/// let snap = ctx.snapshot();
/// assert_eq!((snap.rebuilds, snap.opt_explored), (1, 3));
/// assert!(snap.to_string().contains("rebuilds=1"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Rule queries answered by the kernel (0 unless counting was on).
    pub rule_queries: u64,
    /// Objects placed into layouts.
    pub objects_placed: u64,
    /// Shapes appended by interpreter geometry builtins.
    pub shapes_generated: u64,
    /// Contact-array group rebuilds performed by the compactor.
    pub rebuilds: u64,
    /// Individual DRC checks run.
    pub drc_checks: u64,
    /// Search nodes expanded by the order optimizer.
    pub opt_explored: u64,
    /// Optimizer nodes cut by the incumbent bound.
    pub opt_pruned: u64,
    /// Optimizer nodes cut by the dominance memo.
    pub opt_dominated: u64,
    /// Optimizer worker panics caught and isolated.
    pub opt_panics: u64,
    /// Injected faults that fired (always 0 outside chaos testing).
    pub faults_injected: u64,
    /// Generation-cache hits (modules or variant tables served).
    pub cache_hits: u64,
    /// Generation-cache misses (lookups that fell through to a build).
    pub cache_misses: u64,
    /// Generation-cache entries evicted to stay within capacity.
    pub cache_evicted: u64,
    /// Runs refused at static admission (certified cost over budget).
    pub admission_refused: u64,
    /// Wall nanoseconds per stage, in [`Stage::ALL`] order.
    pub stage_nanos: [u64; Stage::ALL.len()],
}

impl MetricsSnapshot {
    /// Wall nanoseconds charged to one stage.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage as usize]
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rule_queries={} objects_placed={} rebuilds={} drc_checks={}",
            self.rule_queries, self.objects_placed, self.rebuilds, self.drc_checks
        )?;
        if self.shapes_generated > 0 {
            write!(f, " shapes_generated={}", self.shapes_generated)?;
        }
        if self.opt_explored + self.opt_pruned + self.opt_dominated > 0 {
            write!(
                f,
                " opt_explored={} opt_pruned={} opt_dominated={}",
                self.opt_explored, self.opt_pruned, self.opt_dominated
            )?;
        }
        if self.opt_panics > 0 {
            write!(f, " opt_panics={}", self.opt_panics)?;
        }
        if self.faults_injected > 0 {
            write!(f, " faults_injected={}", self.faults_injected)?;
        }
        if self.cache_hits + self.cache_misses + self.cache_evicted > 0 {
            write!(
                f,
                " cache_hits={} cache_misses={}",
                self.cache_hits, self.cache_misses
            )?;
            if self.cache_evicted > 0 {
                write!(f, " cache_evicted={}", self.cache_evicted)?;
            }
        }
        if self.admission_refused > 0 {
            write!(f, " admission_refused={}", self.admission_refused)?;
        }
        for stage in Stage::ALL {
            let ns = self.stage_nanos(stage);
            if ns > 0 {
                write!(f, " {}={:.3}ms", stage.name(), ns as f64 / 1e6)?;
            }
        }
        Ok(())
    }
}

/// The shared generation context: compiled rules + options + metrics.
///
/// Clone freely — both heavy members sit behind [`Arc`]s, so a clone is
/// two reference-count bumps. Rule queries go straight through
/// [`Deref`] to the [`RuleSet`] kernel.
#[derive(Debug, Clone)]
pub struct GenCtx {
    /// The compiled, immutable design-rule kernel.
    pub rules: Arc<RuleSet>,
    /// Run-wide options.
    pub options: GenOptions,
    /// Shared counters.
    pub metrics: Arc<Metrics>,
    /// Shared structured-event sink (disabled until
    /// [`with_tracing`](GenCtx::with_tracing) / `trace.set_enabled`).
    pub trace: Arc<TraceSink>,
    /// Shared resource budget, wall deadline and cancellation flag
    /// (unlimited by default; armed with [`GenCtx::with_budget`]).
    pub limits: Arc<Limits>,
    /// Optional fault-injection hook — `None` in production (one branch
    /// per probed site); installed by chaos tests via
    /// [`GenCtx::with_faults`].
    pub faults: Option<Arc<dyn FaultHook>>,
    /// Optional content-addressed generation cache — `None` by default
    /// (every build runs fresh); enabled with [`GenCtx::with_cache`] /
    /// [`GenCtx::with_default_cache`]. Automatically bypassed while a
    /// fault hook is installed so chaos tests observe every probe.
    pub cache: Option<Arc<GenCache>>,
}

impl GenCtx {
    /// Wraps an already-compiled kernel.
    pub fn new(rules: Arc<RuleSet>) -> GenCtx {
        GenCtx {
            rules,
            options: GenOptions::default(),
            metrics: Arc::new(Metrics::new()),
            trace: Arc::new(TraceSink::new()),
            limits: Arc::new(Limits::default()),
            faults: None,
            cache: None,
        }
    }

    /// Compiles `tech` and wraps the result.
    pub fn from_tech(tech: &Tech) -> GenCtx {
        GenCtx::new(tech.compile_arc())
    }

    /// Applies options (enabling the kernel's query counter when asked).
    #[must_use]
    pub fn with_options(mut self, options: GenOptions) -> GenCtx {
        self.options = options;
        self.rules.set_query_counting(options.count_rule_queries);
        self
    }

    /// Switches structured-event tracing on (or off) for this context
    /// and every clone sharing its sink.
    ///
    /// ```
    /// use amgen_core::{GenCtx, Stage};
    /// use amgen_tech::Tech;
    ///
    /// let ctx = GenCtx::from_tech(&Tech::bicmos_1u()).with_tracing(true);
    /// {
    ///     let mut span = ctx.span(Stage::Compact, || "step:row");
    ///     span.arg("shrunk_edges", 2i64);
    /// }
    /// let trace = ctx.trace.drain();
    /// assert_eq!(trace.events.len(), 2); // begin + end
    /// assert_eq!(trace.events[0].cat, "compact");
    /// ```
    #[must_use]
    pub fn with_tracing(self, on: bool) -> GenCtx {
        self.trace.set_enabled(on);
        self
    }

    /// Like [`with_tracing`](GenCtx::with_tracing) but with an explicit
    /// recording depth — [`Detail::Fine`] adds per-primitive-call and
    /// per-search-node events on top of the stage-level spans.
    #[must_use]
    pub fn with_tracing_at(self, detail: Detail) -> GenCtx {
        self.trace.set_detail(detail);
        self
    }

    /// Opens a trace span charged to `stage` (the stage name becomes the
    /// event category). The name closure runs only when tracing is on,
    /// so formatted names are free on the disabled path.
    #[inline]
    pub fn span<N, F>(&self, stage: Stage, name: F) -> Span<'_>
    where
        N: Into<amgen_trace::Name>,
        F: FnOnce() -> N,
    {
        self.trace.span(stage.name(), name)
    }

    /// Records a point event charged to `stage`.
    #[inline]
    pub fn trace_instant<N, F>(&self, stage: Stage, name: F)
    where
        N: Into<amgen_trace::Name>,
        F: FnOnce() -> N,
    {
        self.trace.instant(stage.name(), name)
    }

    /// Opens a span recorded only at [`Detail::Fine`] — for interior
    /// events frequent enough that recording them rivals the traced
    /// work itself (one primitive call, one optimizer node).
    #[inline]
    pub fn span_fine<N, F>(&self, stage: Stage, name: F) -> Span<'_>
    where
        N: Into<amgen_trace::Name>,
        F: FnOnce() -> N,
    {
        self.trace.span_fine(stage.name(), name)
    }

    /// Records a point event only at [`Detail::Fine`].
    #[inline]
    pub fn trace_instant_fine<N, F>(&self, stage: Stage, name: F)
    where
        N: Into<amgen_trace::Name>,
        F: FnOnce() -> N,
    {
        self.trace.instant_fine(stage.name(), name)
    }

    /// Arms a resource [`Budget`] for this context and every clone made
    /// from it. The wall deadline (if any) starts counting immediately;
    /// a fresh [`CancelToken`] is created — fetch it with
    /// [`cancel_token`](GenCtx::cancel_token) *after* this call.
    ///
    /// ```
    /// use amgen_core::{Budget, GenCtx, Resource, Stage};
    /// use amgen_tech::Tech;
    ///
    /// let ctx = GenCtx::from_tech(&Tech::bicmos_1u())
    ///     .with_budget(Budget::unlimited().with_dsl_fuel(10));
    /// assert!(ctx.charge_fuel(10, Stage::Dsl).is_ok());
    /// let e = ctx.charge_fuel(1, Stage::Dsl).unwrap_err();
    /// assert!(e.is_budget_exhausted());
    /// ```
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> GenCtx {
        self.limits = Arc::new(budget.arm());
        self
    }

    /// Installs a fault-injection hook (chaos testing; see the
    /// `amgen-faults` crate). Production contexts leave this `None` and
    /// pay one branch per probed site.
    #[must_use]
    pub fn with_faults(mut self, hook: Arc<dyn FaultHook>) -> GenCtx {
        self.faults = Some(hook);
        self
    }

    /// Removes any installed fault hook.
    #[must_use]
    pub fn without_faults(mut self) -> GenCtx {
        self.faults = None;
        self
    }

    /// Shares a content-addressed [`GenCache`] with this context and
    /// every clone made from it: repeated builds of the same module
    /// (same entity, canonical parameters, technology and source) are
    /// served from the cache instead of re-running the pipeline.
    ///
    /// ```
    /// use amgen_core::{GenCache, GenCtx};
    /// use amgen_tech::Tech;
    /// use std::sync::Arc;
    ///
    /// let cache = Arc::new(GenCache::new());
    /// let ctx = GenCtx::from_tech(&Tech::bicmos_1u()).with_cache(Arc::clone(&cache));
    /// assert!(ctx.cache_active());
    /// ```
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<GenCache>) -> GenCtx {
        self.cache = Some(cache);
        self
    }

    /// Enables caching with a fresh, default-capacity [`GenCache`].
    #[must_use]
    pub fn with_default_cache(self) -> GenCtx {
        self.with_cache(Arc::new(GenCache::new()))
    }

    /// Removes the generation cache (builds run fresh again).
    #[must_use]
    pub fn without_cache(mut self) -> GenCtx {
        self.cache = None;
        self
    }

    /// True when cached generation is in effect: a cache is installed
    /// *and* no fault hook is — injected faults must fire on every
    /// probed build, so a chaos context never serves (or stores)
    /// memoized results.
    #[inline]
    pub fn cache_active(&self) -> bool {
        self.cache.is_some() && self.faults.is_none()
    }

    /// Looks up a memoized module, counting the hit/miss in
    /// [`Metrics`] and emitting a Coarse-tier `cache.hit` /
    /// `cache.miss` trace instant charged to `stage`. Returns `None`
    /// (with no accounting) when caching is inactive.
    pub fn cache_get(&self, stage: Stage, key: &GenKey) -> Option<Arc<CachedModule>> {
        if !self.cache_active() {
            return None;
        }
        let cache = self.cache.as_ref().unwrap();
        match cache.get(key) {
            Some(hit) => {
                self.metrics.add_cache_hit();
                self.trace_instant(stage, || "cache.hit");
                Some(hit)
            }
            None => {
                self.metrics.add_cache_miss();
                self.trace_instant(stage, || "cache.miss");
                None
            }
        }
    }

    /// Stores a successfully built module, counting evictions. No-op
    /// when caching is inactive.
    pub fn cache_put(&self, key: GenKey, value: Arc<CachedModule>) {
        if !self.cache_active() {
            return;
        }
        let evicted = self.cache.as_ref().unwrap().put(key, value);
        if evicted > 0 {
            self.metrics.add_cache_evicted(evicted);
        }
    }

    /// Looks up a precomputed optimizer variant table (same accounting
    /// as [`cache_get`](GenCtx::cache_get)).
    pub fn cache_variants_get(&self, stage: Stage, key: &GenKey) -> Option<Arc<VariantTable>> {
        if !self.cache_active() {
            return None;
        }
        let cache = self.cache.as_ref().unwrap();
        match cache.variants_get(key) {
            Some(hit) => {
                self.metrics.add_cache_hit();
                self.trace_instant(stage, || "cache.hit");
                Some(hit)
            }
            None => {
                self.metrics.add_cache_miss();
                self.trace_instant(stage, || "cache.miss");
                None
            }
        }
    }

    /// Stores an optimizer variant table. No-op when caching is
    /// inactive.
    pub fn cache_variants_put(&self, key: GenKey, value: Arc<VariantTable>) {
        if !self.cache_active() {
            return;
        }
        let evicted = self.cache.as_ref().unwrap().variants_put(key, value);
        if evicted > 0 {
            self.metrics.add_cache_evicted(evicted);
        }
    }

    /// Runs `build` through the cache: a hit returns the stored module
    /// (after a cancellation/deadline checkpoint, so cached serving
    /// still honours the run's limits); a miss builds, stores on
    /// success, and never stores errors — budget-exhausted, cancelled
    /// or faulted builds always re-run.
    ///
    /// `key = None` (caching inactive, or a non-canonicalizable
    /// parameter) falls straight through to `build` with no accounting.
    /// On a hit the stored module is cloned out, and none of the
    /// build's interior per-stage metrics recur — only the
    /// `cache_hits` counter moves.
    pub fn generate_cached_full<E: From<GenError>>(
        &self,
        stage: Stage,
        key: Option<GenKey>,
        build: impl FnOnce() -> Result<CachedModule, E>,
    ) -> Result<CachedModule, E> {
        let Some(key) = key else {
            return build();
        };
        self.checkpoint(stage)?;
        if let Some(hit) = self.cache_get(stage, &key) {
            return Ok((*hit).clone());
        }
        let built = build()?;
        self.cache_put(key, Arc::new(built.clone()));
        Ok(built)
    }

    /// Layout-only convenience over
    /// [`generate_cached_full`](GenCtx::generate_cached_full).
    pub fn generate_cached<E: From<GenError>>(
        &self,
        stage: Stage,
        key: Option<GenKey>,
        build: impl FnOnce() -> Result<amgen_db::LayoutObject, E>,
    ) -> Result<amgen_db::LayoutObject, E> {
        self.generate_cached_full(stage, key, || build().map(CachedModule::layout))
            .map(|m| m.layout)
    }

    /// A clone of the run's cancellation token: hand it to a supervisor
    /// thread and call [`CancelToken::cancel`] to stop the run at the
    /// next checkpoint of any stage.
    pub fn cancel_token(&self) -> CancelToken {
        self.limits.cancel_token()
    }

    /// Charges interpreter fuel (and observes cancellation/deadline).
    #[inline]
    pub fn charge_fuel(&self, n: u64, stage: Stage) -> Result<(), GenError> {
        self.limits.charge_fuel(n, stage)
    }

    /// Charges one compaction step (and observes cancellation/deadline).
    #[inline]
    pub fn charge_compact_step(&self) -> Result<(), GenError> {
        self.limits.charge_compact_step()
    }

    /// Cancellation + deadline probe for stages without a metered
    /// resource of their own.
    #[inline]
    pub fn checkpoint(&self, stage: Stage) -> Result<(), GenError> {
        self.limits.checkpoint(stage)
    }

    /// Probes the fault hook at `site`. `Ok(())` with no installed hook
    /// (the production fast path — one branch); a firing hook returns a
    /// typed [`GenErrorKind::Fault`] or panics (for
    /// [`FaultAction::Panic`] plans exercising isolation), and is
    /// counted in [`Metrics`] and the trace.
    #[inline]
    pub fn fault_check(&self, site: FaultSite, detail: &str) -> Result<(), GenError> {
        let Some(hook) = &self.faults else {
            return Ok(());
        };
        self.fault_check_slow(hook.clone(), site, detail)
    }

    #[cold]
    fn fault_check_slow(
        &self,
        hook: Arc<dyn FaultHook>,
        site: FaultSite,
        detail: &str,
    ) -> Result<(), GenError> {
        match hook.decide(site, detail) {
            FaultAction::Proceed => Ok(()),
            FaultAction::Fail => {
                self.metrics.add_fault_injected();
                self.trace_instant(site.stage(), || name!("fault:{}", site.name()));
                Err(GenError::fault(site.stage(), site, detail))
            }
            FaultAction::Panic => {
                self.metrics.add_fault_injected();
                self.trace_instant(site.stage(), || name!("fault_panic:{}", site.name()));
                panic!("injected fault panic at {} ({detail})", site.name());
            }
        }
    }

    /// Reads all counters into a report-ready snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.rule_queries = self.rules.rule_queries();
        snap
    }

    /// The combined run report: the recorded trace rendered as the
    /// hierarchical text report (per-stage self/total time, hottest
    /// entities, instant counters), followed by the [`MetricsSnapshot`]
    /// counter line — both read from this context, so the numbers come
    /// from one source of truth. Does not clear the trace buffers.
    pub fn run_report(&self) -> String {
        let mut out = self.trace.snapshot_events().report(10);
        out.push_str(&format!("\nmetrics: {}\n", self.snapshot()));
        out
    }
}

impl Deref for GenCtx {
    type Target = RuleSet;

    #[inline]
    fn deref(&self) -> &RuleSet {
        &self.rules
    }
}

/// Compat shim: lets every stage constructor accept a `&Tech` (compiled
/// on the spot — convenient in tests and one-shot tools), a `&GenCtx`
/// (the cheap, shared hot path) or an owned `GenCtx`/`Arc<RuleSet>`.
pub trait IntoGenCtx {
    /// Converts into an owned context.
    fn into_gen_ctx(self) -> GenCtx;
}

impl IntoGenCtx for GenCtx {
    fn into_gen_ctx(self) -> GenCtx {
        self
    }
}

impl IntoGenCtx for &GenCtx {
    fn into_gen_ctx(self) -> GenCtx {
        self.clone()
    }
}

impl IntoGenCtx for &Tech {
    fn into_gen_ctx(self) -> GenCtx {
        GenCtx::from_tech(self)
    }
}

impl IntoGenCtx for Arc<RuleSet> {
    fn into_gen_ctx(self) -> GenCtx {
        GenCtx::new(self)
    }
}

impl IntoGenCtx for &Arc<RuleSet> {
    fn into_gen_ctx(self) -> GenCtx {
        GenCtx::new(Arc::clone(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_rules_and_metrics() {
        let ctx = GenCtx::from_tech(&Tech::bicmos_1u());
        let clone = ctx.clone();
        assert!(Arc::ptr_eq(&ctx.rules, &clone.rules));
        assert!(Arc::ptr_eq(&ctx.metrics, &clone.metrics));
        clone.metrics.add_rebuild();
        assert_eq!(ctx.snapshot().rebuilds, 1);
    }

    #[test]
    fn deref_reaches_the_kernel() {
        let tech = Tech::bicmos_1u();
        let ctx = GenCtx::from_tech(&tech);
        let poly = ctx.layer("poly").unwrap();
        assert_eq!(ctx.min_width(poly), tech.min_width(poly));
        assert_eq!(ctx.grid(), tech.grid());
    }

    #[test]
    fn query_counting_flows_into_snapshots() {
        let ctx = GenCtx::from_tech(&Tech::bicmos_1u()).with_options(GenOptions {
            count_rule_queries: true,
        });
        let poly = ctx.poly().unwrap();
        let _ = ctx.min_width(poly);
        let _ = ctx.clearance(poly, poly);
        assert_eq!(ctx.snapshot().rule_queries, 2);
    }

    #[test]
    fn stage_timing_accumulates() {
        let ctx = GenCtx::from_tech(&Tech::bicmos_1u());
        let out = ctx.metrics.time(Stage::Compact, || 7);
        assert_eq!(out, 7);
        ctx.metrics.add_stage_nanos(Stage::Compact, 1);
        let snap = ctx.snapshot();
        assert!(snap.stage_nanos(Stage::Compact) >= 1);
        assert_eq!(snap.stage_nanos(Stage::Route), 0);
        let line = snap.to_string();
        assert!(line.contains("compact="), "{line}");
    }

    #[test]
    fn tracing_is_shared_and_reported() {
        let ctx = GenCtx::from_tech(&Tech::bicmos_1u()).with_tracing(true);
        let clone = ctx.clone();
        assert!(Arc::ptr_eq(&ctx.trace, &clone.trace));
        {
            let mut span = clone.span(Stage::Opt, || "expand");
            span.arg("node", 4u64);
        }
        ctx.trace_instant(Stage::Opt, || "prune");
        ctx.metrics.add_opt_pruned(1);
        let report = ctx.run_report();
        assert!(report.contains("opt:expand"), "{report}");
        assert!(report.contains("opt:prune"), "{report}");
        assert!(report.contains("opt_pruned=1"), "{report}");
        // run_report is non-destructive; the drain empties the buffers.
        assert_eq!(ctx.trace.drain().events.len(), 3);
        assert!(ctx.trace.drain().events.is_empty());
    }

    #[test]
    fn absorb_folds_request_deltas_into_an_aggregate() {
        let request = Metrics::new();
        request.add_cache_hit();
        request.add_cache_miss();
        request.add_admission_refused();
        request.add_objects_placed(3);
        request.add_stage_nanos(Stage::Dsl, 42);
        let tenant = Metrics::new();
        tenant.absorb(&request.snapshot());
        tenant.absorb(&request.snapshot());
        let snap = tenant.snapshot();
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.admission_refused, 2);
        assert_eq!(snap.objects_placed, 6);
        assert_eq!(snap.stage_nanos(Stage::Dsl), 84);
    }

    #[test]
    fn stats_line_is_self_describing() {
        // The serving daemon prints one MetricsSnapshot per tenant; the
        // cache and admission counters must be visible in that line.
        let m = Metrics::new();
        m.add_cache_hit();
        m.add_cache_miss();
        m.add_admission_refused();
        let line = m.snapshot().to_string();
        assert!(line.contains("cache_hits=1"), "{line}");
        assert!(line.contains("cache_misses=1"), "{line}");
        assert!(line.contains("admission_refused=1"), "{line}");
        // Quiet counters stay out of the line.
        assert!(!line.contains("cache_evicted"), "{line}");
        assert!(!Metrics::new().snapshot().to_string().contains("cache_"));
    }

    #[test]
    fn into_gen_ctx_accepts_all_forms() {
        fn take(ctx: impl IntoGenCtx) -> GenCtx {
            ctx.into_gen_ctx()
        }
        let tech = Tech::bicmos_1u();
        let a = take(&tech);
        let b = take(&a);
        assert!(Arc::ptr_eq(&a.rules, &b.rules));
        let rules = tech.compile_arc();
        let c = take(&rules);
        let d = take(rules);
        assert!(Arc::ptr_eq(&c.rules, &d.rules));
        let _ = take(c);
    }
}

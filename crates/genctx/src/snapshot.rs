//! Warm-restart snapshots of the generation cache.
//!
//! A restarted daemon starts with a cold [`GenCache`] and re-generates
//! every module the previous process already proved and built.
//! [`GenCache::snapshot`] serializes the module entries into a
//! versioned, checksummed byte image; [`GenCache::restore`] loads one
//! back — *best-effort and never trusted*: a short, corrupt,
//! wrong-version or stale-stdlib image is rejected with a typed
//! [`SnapshotError`] and the cache simply stays cold.
//!
//! # The `tech_id` remap
//!
//! Cache keys carry the [`RuleSet`] compile brand (`tech_id`), and that
//! brand is a *process-local* counter — the same technology compiles to
//! a different id in every process. A snapshot therefore stores the
//! technology **name** per entry and `restore` remaps every key (and
//! every [`Layer`] brand inside the stored layouts) onto the restoring
//! process's own compiled [`RuleSet`], looked up through the caller's
//! `resolve` function. Entries for technologies the restoring process
//! does not know, or whose layer table changed size, are skipped and
//! counted — a snapshot can never smuggle geometry onto the wrong
//! rule kernel.
//!
//! # Trust model
//!
//! The image is integrity-checked (FNV-1a checksum over the payload),
//! not authenticated: it protects against torn writes and bit rot, not
//! against an attacker with write access to the snapshot path — the
//! file must live where only the operator can write, exactly like the
//! server binary itself. The stdlib hash in the header is a fast
//! staleness gate; the per-entry `source` hash inside each key remains
//! the actual correctness guard.
//!
//! ```
//! use amgen_core::cache::{CachedModule, CanonParam, GenCache, GenKey};
//! use amgen_core::Stage;
//! use amgen_tech::Tech;
//! use std::sync::Arc;
//!
//! let rules = Tech::bicmos_1u().compile_arc();
//! let cache = GenCache::new();
//! let mut key = GenKey::module("row", rules.id());
//! key.push(CanonParam::num(Stage::Modgen, 2.0).unwrap());
//! cache.put(key, Arc::new(CachedModule::layout(Default::default())));
//!
//! let image = cache.snapshot(7, &[("bicmos_1u", Arc::clone(&rules))]);
//! let warm = GenCache::new();
//! // A "restarted process": remap onto (here, the same) compiled rules.
//! let stats = warm
//!     .restore(&image, 7, |name| (name == "bicmos_1u").then(|| Arc::clone(&rules)))
//!     .unwrap();
//! assert_eq!(stats.restored, 1);
//! assert_eq!(warm.len(), 1);
//! ```

use std::sync::Arc;

use amgen_db::{EdgeFlags, LayoutObject, Port, RebuildKind, Shape, ShapeRole};
use amgen_geom::{Dir, Rect};
use amgen_tech::{Layer, RuleSet};

use crate::cache::{CachedModule, CanonParam, GenCache, GenKey};

/// Leading bytes of every snapshot image.
const MAGIC: &[u8; 8] = b"AMGCACHE";

/// Current image format revision. Bumped on any layout change; old
/// revisions are rejected (a warm start is never worth a parse gamble).
const VERSION: u32 = 1;

/// Why a snapshot image was rejected. Every variant means "start
/// cold" — none of them is a server error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The image does not start with the snapshot magic (wrong file, or
    /// a torn write destroyed the header).
    BadMagic,
    /// The image is a different format revision.
    BadVersion(u32),
    /// The stdlib hash in the header differs from the restoring
    /// process's — the entity library changed, so every DSL entry would
    /// miss anyway.
    StaleStdlib {
        /// Hash the restoring process expects.
        expected: u64,
        /// Hash recorded in the image.
        found: u64,
    },
    /// The payload checksum does not match (bit rot or a torn write).
    ChecksumMismatch,
    /// The payload structure is invalid; the message names the first
    /// inconsistency.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a cache snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "snapshot format revision {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::StaleStdlib { expected, found } => write!(
                f,
                "snapshot taken under a different stdlib (hash {found:#x}, expected {expected:#x})"
            ),
            SnapshotError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What a successful [`GenCache::restore`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Entries inserted into the cache.
    pub restored: usize,
    /// Entries skipped because their technology is unknown to the
    /// restoring process or its layer table changed.
    pub skipped: usize,
}

// ----- little-endian primitives -----------------------------------------

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// FNV-1a over the payload — the integrity check, not authentication.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| SnapshotError::Corrupt("payload ends mid-field".into()))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        // An honest string is never longer than the payload that
        // carries it — reject a hostile length before allocating.
        if n > self.bytes.len() - self.pos {
            return Err(SnapshotError::Corrupt(
                "string length exceeds payload".into(),
            ));
        }
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string is not UTF-8".into()))
    }
}

// ----- layout (de)serialization ----------------------------------------

/// Edge-mobility bits, defined by this format (not the db-internal
/// representation): N=1, S=2, E=4, W=8.
const EDGE_DIRS: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

fn edges_to_bits(e: EdgeFlags) -> u8 {
    EDGE_DIRS
        .iter()
        .enumerate()
        .filter(|(_, d)| e.is_variable(**d))
        .fold(0, |acc, (i, _)| acc | (1 << i))
}

fn edges_from_bits(bits: u8) -> EdgeFlags {
    EDGE_DIRS
        .iter()
        .enumerate()
        .filter(|(i, _)| bits & (1 << i) != 0)
        .fold(EdgeFlags::FIXED, |acc, (_, d)| acc.with_variable(*d))
}

fn role_to_byte(r: ShapeRole) -> u8 {
    match r {
        ShapeRole::Normal => 0,
        ShapeRole::DeviceActive => 1,
        ShapeRole::SubstrateContact => 2,
    }
}

fn role_from_byte(b: u8) -> Result<ShapeRole, SnapshotError> {
    match b {
        0 => Ok(ShapeRole::Normal),
        1 => Ok(ShapeRole::DeviceActive),
        2 => Ok(ShapeRole::SubstrateContact),
        other => Err(SnapshotError::Corrupt(format!(
            "unknown shape role {other}"
        ))),
    }
}

fn write_rect(out: &mut Vec<u8>, r: Rect) {
    for c in [r.x0, r.y0, r.x1, r.y1] {
        w_u64(out, c as u64);
    }
}

fn read_rect(r: &mut Reader<'_>) -> Result<Rect, SnapshotError> {
    let (x0, y0, x1, y1) = (r.i64()?, r.i64()?, r.i64()?, r.i64()?);
    Ok(Rect::new(x0, y0, x1, y1))
}

fn write_layout(out: &mut Vec<u8>, obj: &LayoutObject) {
    w_str(out, obj.name());
    let nets = obj.net_names();
    w_u32(out, nets.len() as u32);
    for n in nets {
        w_str(out, n);
    }
    w_u32(out, obj.shapes().len() as u32);
    for s in obj.shapes() {
        w_u32(out, s.layer.index() as u32);
        write_rect(out, s.rect);
        w_u32(out, s.net.map_or(u32::MAX, |n| n.index() as u32));
        out.push(edges_to_bits(s.edges));
        out.push(role_to_byte(s.role));
        out.push(u8::from(s.keepout));
    }
    w_u32(out, obj.ports().len() as u32);
    for p in obj.ports() {
        w_str(out, &p.name);
        w_u32(out, p.layer.index() as u32);
        write_rect(out, p.rect);
        w_u32(out, p.net.map_or(u32::MAX, |n| n.index() as u32));
    }
    w_u32(out, obj.groups().len() as u32);
    for g in obj.groups() {
        w_str(out, &g.name);
        w_u32(out, g.shapes.len() as u32);
        for &i in &g.shapes {
            w_u32(out, i as u32);
        }
        match g.rebuild {
            Some(RebuildKind::ContactArray { cut }) => {
                out.push(1);
                w_u32(out, cut.index() as u32);
            }
            None => {
                out.push(0);
                w_u32(out, 0);
            }
        }
    }
}

/// Decodes one layout, rebranding every layer index onto `layers` (the
/// restoring process's compiled layer table for this technology).
fn read_layout(r: &mut Reader<'_>, layers: &[Layer]) -> Result<LayoutObject, SnapshotError> {
    let layer_at = |idx: u32| -> Result<Layer, SnapshotError> {
        layers
            .get(idx as usize)
            .copied()
            .ok_or_else(|| SnapshotError::Corrupt(format!("layer index {idx} out of range")))
    };
    let name = r.str()?;
    let mut obj = LayoutObject::new(name);
    let n_nets = r.u32()? as usize;
    let mut nets = Vec::with_capacity(n_nets.min(1024));
    for _ in 0..n_nets {
        let net_name = r.str()?;
        nets.push(obj.net(&net_name));
    }
    let net_at = |idx: u32| -> Result<Option<amgen_db::NetId>, SnapshotError> {
        if idx == u32::MAX {
            return Ok(None);
        }
        nets.get(idx as usize)
            .copied()
            .map(Some)
            .ok_or_else(|| SnapshotError::Corrupt(format!("net index {idx} out of range")))
    };
    let n_shapes = r.u32()? as usize;
    for _ in 0..n_shapes {
        let layer = layer_at(r.u32()?)?;
        let rect = read_rect(r)?;
        let net = net_at(r.u32()?)?;
        let edges = edges_from_bits(r.u8()?);
        let role = role_from_byte(r.u8()?)?;
        let keepout = r.u8()? != 0;
        obj.push(Shape {
            rect,
            layer,
            net,
            edges,
            role,
            keepout,
        });
    }
    let n_ports = r.u32()? as usize;
    for _ in 0..n_ports {
        let name = r.str()?;
        let layer = layer_at(r.u32()?)?;
        let rect = read_rect(r)?;
        let net = net_at(r.u32()?)?;
        obj.push_port(Port {
            name,
            layer,
            rect,
            net,
        });
    }
    let n_groups = r.u32()? as usize;
    for _ in 0..n_groups {
        let name = r.str()?;
        let n_idx = r.u32()? as usize;
        let mut indices = Vec::with_capacity(n_idx.min(1024));
        for _ in 0..n_idx {
            let i = r.u32()? as usize;
            if i >= n_shapes {
                return Err(SnapshotError::Corrupt(format!(
                    "group shape index {i} out of range"
                )));
            }
            indices.push(i);
        }
        let rebuild = match (r.u8()?, r.u32()?) {
            (0, _) => None,
            (1, cut) => Some(RebuildKind::ContactArray {
                cut: layer_at(cut)?,
            }),
            (other, _) => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown rebuild kind {other}"
                )))
            }
        };
        obj.add_group(name, indices, rebuild);
    }
    Ok(obj)
}

fn write_param(out: &mut Vec<u8>, p: &CanonParam) {
    match p {
        CanonParam::Int(v) => {
            out.push(0);
            w_u64(out, *v as u64);
        }
        CanonParam::UInt(v) => {
            out.push(1);
            w_u64(out, *v);
        }
        CanonParam::Bits(v) => {
            out.push(2);
            w_u64(out, *v);
        }
        CanonParam::Str(s) => {
            out.push(3);
            w_str(out, s);
        }
        CanonParam::Flag(b) => {
            out.push(4);
            w_u64(out, u64::from(*b));
        }
        CanonParam::None => {
            out.push(5);
        }
        CanonParam::Object { hash, shapes } => {
            out.push(6);
            w_u64(out, *hash);
            w_u64(out, *shapes);
        }
    }
}

fn read_param(r: &mut Reader<'_>) -> Result<CanonParam, SnapshotError> {
    Ok(match r.u8()? {
        0 => CanonParam::Int(r.u64()? as i64),
        1 => CanonParam::UInt(r.u64()?),
        2 => CanonParam::Bits(r.u64()?),
        3 => CanonParam::Str(r.str()?),
        4 => CanonParam::Flag(r.u64()? != 0),
        5 => CanonParam::None,
        6 => CanonParam::Object {
            hash: r.u64()?,
            shapes: r.u64()?,
        },
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown parameter tag {other}"
            )))
        }
    })
}

impl GenCache {
    /// Serializes every module entry generated under one of `techs`
    /// (`(name, compiled rules)` pairs) into a snapshot image.
    ///
    /// `stdlib_hash` is the caller's hash of its entity library; it is
    /// recorded in the header so a restore under a different stdlib is
    /// rejected wholesale. Entries branded with a `tech_id` outside
    /// `techs` are skipped (nothing in the image can reference a
    /// technology the header's tech table does not name). Variant
    /// tables are not snapshotted — they rebuild on demand.
    ///
    /// Output is deterministic: entries serialize in key order.
    pub fn snapshot(&self, stdlib_hash: u64, techs: &[(&str, Arc<RuleSet>)]) -> Vec<u8> {
        let entries = self.export_modules();
        let mut payload = Vec::new();
        w_u32(&mut payload, techs.len() as u32);
        for (name, rules) in techs {
            w_str(&mut payload, name);
            w_u32(&mut payload, rules.layer_count() as u32);
        }
        let tech_idx = |id: u32| techs.iter().position(|(_, r)| r.id() == id);
        let kept: Vec<_> = entries
            .iter()
            .filter_map(|(k, v)| tech_idx(k.tech_id).map(|t| (t, k, v)))
            .collect();
        w_u32(&mut payload, kept.len() as u32);
        for (t, key, module) in kept {
            w_u32(&mut payload, t as u32);
            w_str(&mut payload, &key.entity);
            w_u64(&mut payload, key.source);
            w_u32(&mut payload, key.params.len() as u32);
            for p in &key.params {
                write_param(&mut payload, p);
            }
            write_layout(&mut payload, &module.layout);
            w_u32(&mut payload, module.scalars.len() as u32);
            for s in &module.scalars {
                w_u64(&mut payload, s.to_bits());
            }
        }

        let mut out = Vec::with_capacity(payload.len() + 36);
        out.extend_from_slice(MAGIC);
        w_u32(&mut out, VERSION);
        w_u64(&mut out, stdlib_hash);
        w_u64(&mut out, checksum(&payload));
        w_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    /// Loads a snapshot image into this cache, remapping every entry
    /// onto the restoring process's compiled rules.
    ///
    /// `resolve` maps a technology name from the image's tech table to
    /// this process's compiled [`RuleSet`] (returning `None` for
    /// technologies this build does not know — their entries are
    /// skipped, not an error). A tech whose layer-table *size* changed
    /// is also skipped: its layer indices cannot be trusted. Any
    /// structural inconsistency rejects the whole image with a typed
    /// [`SnapshotError`] and leaves the cache exactly as it was.
    pub fn restore(
        &self,
        image: &[u8],
        stdlib_hash: u64,
        mut resolve: impl FnMut(&str) -> Option<Arc<RuleSet>>,
    ) -> Result<SnapshotStats, SnapshotError> {
        if image.len() < MAGIC.len() + 28 {
            return Err(SnapshotError::BadMagic);
        }
        if &image[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut hdr = Reader {
            bytes: image,
            pos: MAGIC.len(),
        };
        let version = hdr.u32()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let found_stdlib = hdr.u64()?;
        if found_stdlib != stdlib_hash {
            return Err(SnapshotError::StaleStdlib {
                expected: stdlib_hash,
                found: found_stdlib,
            });
        }
        let want_sum = hdr.u64()?;
        let payload_len = hdr.u64()? as usize;
        let payload = &image[hdr.pos..];
        if payload.len() != payload_len {
            return Err(SnapshotError::Corrupt(format!(
                "payload is {} bytes, header declares {payload_len}",
                payload.len()
            )));
        }
        if checksum(payload) != want_sum {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut r = Reader {
            bytes: payload,
            pos: 0,
        };
        // Tech table: resolve each name now; `None` (unknown tech, or a
        // layer table of a different size) marks its entries skipped.
        let n_techs = r.u32()? as usize;
        let mut techs: Vec<Option<(Arc<RuleSet>, Vec<Layer>)>> = Vec::with_capacity(n_techs);
        for _ in 0..n_techs {
            let name = r.str()?;
            let layer_count = r.u32()? as usize;
            techs.push(resolve(&name).and_then(|rules| {
                (rules.layer_count() == layer_count).then(|| {
                    let layers: Vec<Layer> = rules.layers().collect();
                    (rules, layers)
                })
            }));
        }

        // Decode *every* entry first (all-or-nothing: a half-restored
        // image never leaks partial state into the cache), then insert.
        let n_entries = r.u32()? as usize;
        let mut restored = Vec::new();
        let mut skipped = 0usize;
        for _ in 0..n_entries {
            let t = r.u32()? as usize;
            if t >= techs.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "tech index {t} out of range"
                )));
            }
            let entity = r.str()?;
            let source = r.u64()?;
            let n_params = r.u32()? as usize;
            let mut params = Vec::with_capacity(n_params.min(1024));
            for _ in 0..n_params {
                params.push(read_param(&mut r)?);
            }
            // The entry must be decoded even when its tech is skipped —
            // the cursor has to advance past it.
            let empty: Vec<Layer> = Vec::new();
            let layers = techs[t]
                .as_ref()
                .map(|(_, l)| l.as_slice())
                .unwrap_or(&empty);
            // A skipped tech's entry still has to be walked past — the
            // cursor must land on the next entry — but its layer indices
            // cannot be rebranded, so skim it structurally instead.
            let layout = if techs[t].is_some() {
                read_layout(&mut r, layers)?
            } else {
                skim_layout(&mut r)?;
                LayoutObject::new("")
            };
            let n_scalars = r.u32()? as usize;
            let mut scalars = Vec::with_capacity(n_scalars.min(1024));
            for _ in 0..n_scalars {
                scalars.push(f64::from_bits(r.u64()?));
            }
            match &techs[t] {
                Some((rules, _)) => {
                    let key = GenKey {
                        entity,
                        tech_id: rules.id(),
                        source,
                        params,
                    };
                    restored.push((key, Arc::new(CachedModule { layout, scalars })));
                }
                None => skipped += 1,
            }
        }
        if r.pos != payload.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last entry",
                payload.len() - r.pos
            )));
        }
        let stats = SnapshotStats {
            restored: restored.len(),
            skipped,
        };
        for (key, module) in restored {
            self.put(key, module);
        }
        Ok(stats)
    }
}

/// Advances the reader past one serialized layout without materializing
/// it — used for entries whose technology the restoring process skips.
fn skim_layout(r: &mut Reader<'_>) -> Result<(), SnapshotError> {
    r.str()?; // name
    let n_nets = r.u32()? as usize;
    for _ in 0..n_nets {
        r.str()?;
    }
    let n_shapes = r.u32()? as usize;
    for _ in 0..n_shapes {
        r.u32()?; // layer
        read_rect(r)?;
        r.u32()?; // net
        r.u8()?;
        r.u8()?;
        r.u8()?;
    }
    let n_ports = r.u32()? as usize;
    for _ in 0..n_ports {
        r.str()?;
        r.u32()?;
        read_rect(r)?;
        r.u32()?;
    }
    let n_groups = r.u32()? as usize;
    for _ in 0..n_groups {
        r.str()?;
        let n_idx = r.u32()? as usize;
        for _ in 0..n_idx {
            r.u32()?;
        }
        r.u8()?;
        r.u32()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_tech::Tech;

    fn sample_object(rules: &RuleSet) -> LayoutObject {
        let metal = rules.layer("metal1").unwrap();
        let poly = rules.layer("poly").unwrap();
        let mut obj = LayoutObject::new("warm");
        let gnd = obj.net("gnd");
        obj.push(
            Shape::new(metal, Rect::new(0, 0, 100, 20))
                .with_net(gnd)
                .with_edges(EdgeFlags::FIXED.with_variable(Dir::East)),
        );
        obj.push(Shape::new(poly, Rect::new(10, -5, 20, 30)).with_keepout());
        obj.push_port(Port {
            name: "out".into(),
            layer: metal,
            rect: Rect::new(90, 0, 100, 20),
            net: Some(gnd),
        });
        obj.add_group(
            "cuts",
            vec![0, 1],
            Some(RebuildKind::ContactArray { cut: poly }),
        );
        obj
    }

    fn keyed(rules: &RuleSet) -> (GenKey, CachedModule) {
        let mut key = GenKey::entity("Row", rules.id(), 0xfeed);
        key.push(CanonParam::Int(-3));
        key.push(CanonParam::Str("poly".into()));
        key.push(CanonParam::num(crate::Stage::Dsl, 2.5).unwrap());
        key.push(CanonParam::None);
        (
            key,
            CachedModule {
                layout: sample_object(rules),
                scalars: vec![1.25, -0.5],
            },
        )
    }

    #[test]
    fn round_trip_remaps_tech_id_and_preserves_content() {
        let rules_a = Tech::bicmos_1u().compile_arc();
        let cache = GenCache::new();
        let (key, module) = keyed(&rules_a);
        cache.put(key.clone(), Arc::new(module.clone()));

        let image = cache.snapshot(42, &[("bicmos_1u", Arc::clone(&rules_a))]);

        // "Restart": a freshly compiled kernel has a different tech_id.
        let rules_b = Tech::bicmos_1u().compile_arc();
        assert_ne!(rules_a.id(), rules_b.id(), "tech ids are process-unique");
        let warm = GenCache::new();
        let stats = warm
            .restore(&image, 42, |name| {
                (name == "bicmos_1u").then(|| Arc::clone(&rules_b))
            })
            .unwrap();
        assert_eq!(
            stats,
            SnapshotStats {
                restored: 1,
                skipped: 0
            }
        );

        // The old-brand key misses; the remapped key hits.
        assert!(warm.get(&key).is_none());
        let mut new_key = key.clone();
        new_key.tech_id = rules_b.id();
        let hit = warm.get(&new_key).expect("remapped key hits");
        assert_eq!(hit.scalars, module.scalars);
        // Layer brands differ by construction, so compare layouts
        // field-wise through the name-level view.
        assert_eq!(hit.layout.name(), module.layout.name());
        assert_eq!(hit.layout.net_names(), module.layout.net_names());
        assert_eq!(hit.layout.shapes().len(), module.layout.shapes().len());
        for (h, m) in hit.layout.shapes().iter().zip(module.layout.shapes()) {
            assert_eq!(h.rect, m.rect);
            assert_eq!(h.layer.index(), m.layer.index());
            assert_eq!(
                (h.net, h.edges, h.role, h.keepout),
                (m.net, m.edges, m.role, m.keepout)
            );
        }
        assert_eq!(hit.layout.ports().len(), module.layout.ports().len());
        assert_eq!(hit.layout.groups().len(), module.layout.groups().len());
        assert_eq!(hit.layout.groups()[0].shapes, vec![0, 1]);
        // Layer brands were rewritten onto rules_b.
        assert_eq!(rules_b.layer_name(hit.layout.shapes()[0].layer), "metal1");
        // Edge flags and roles survived the bit round-trip.
        assert!(hit.layout.shapes()[0].edges.is_variable(Dir::East));
        assert!(!hit.layout.shapes()[0].edges.is_variable(Dir::West));
        assert!(hit.layout.shapes()[1].keepout);
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let rules = Tech::bicmos_1u().compile_arc();
        let mk = || {
            let cache = GenCache::new();
            // Insert in two different orders.
            let (k1, m1) = keyed(&rules);
            let mut k2 = k1.clone();
            k2.entity = "Other".into();
            cache.put(k2.clone(), Arc::new(m1.clone()));
            cache.put(k1.clone(), Arc::new(m1.clone()));
            cache.snapshot(1, &[("bicmos_1u", Arc::clone(&rules))])
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn corrupt_and_stale_images_are_rejected_without_side_effects() {
        let rules = Tech::bicmos_1u().compile_arc();
        let cache = GenCache::new();
        let (key, module) = keyed(&rules);
        cache.put(key, Arc::new(module));
        let image = cache.snapshot(7, &[("bicmos_1u", Arc::clone(&rules))]);

        let warm = GenCache::new();
        let resolve = |name: &str| (name == "bicmos_1u").then(|| Arc::clone(&rules));

        assert_eq!(
            warm.restore(b"not a snapshot", 7, resolve),
            Err(SnapshotError::BadMagic)
        );
        // Flip one payload byte: checksum catches it.
        let mut torn = image.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        assert_eq!(
            warm.restore(&torn, 7, resolve),
            Err(SnapshotError::ChecksumMismatch)
        );
        // Truncate inside the payload: length check catches it.
        let short = &image[..image.len() - 3];
        assert!(matches!(
            warm.restore(short, 7, resolve),
            Err(SnapshotError::Corrupt(_))
        ));
        // Different stdlib hash: rejected wholesale.
        assert_eq!(
            warm.restore(&image, 8, resolve),
            Err(SnapshotError::StaleStdlib {
                expected: 8,
                found: 7
            })
        );
        // Unknown version: rejected.
        let mut vers = image.clone();
        vers[8] = 0xEE;
        assert!(matches!(
            warm.restore(&vers, 7, resolve),
            Err(SnapshotError::BadVersion(_))
        ));
        assert!(warm.is_empty(), "every rejection leaves the cache cold");
    }

    #[test]
    fn unknown_tech_entries_are_skipped_not_fatal() {
        let bicmos = Tech::bicmos_1u().compile_arc();
        let cmos = Tech::cmos_08().compile_arc();
        let cache = GenCache::new();
        let (key_b, module) = keyed(&bicmos);
        let mut key_c = key_b.clone();
        key_c.tech_id = cmos.id();
        cache.put(key_b, Arc::new(module.clone()));
        cache.put(key_c, Arc::new(module));
        let image = cache.snapshot(
            7,
            &[
                ("bicmos_1u", Arc::clone(&bicmos)),
                ("cmos_08", Arc::clone(&cmos)),
            ],
        );

        // The restoring process only knows bicmos_1u.
        let fresh = Tech::bicmos_1u().compile_arc();
        let warm = GenCache::new();
        let stats = warm
            .restore(&image, 7, |name| {
                (name == "bicmos_1u").then(|| Arc::clone(&fresh))
            })
            .unwrap();
        assert_eq!(
            stats,
            SnapshotStats {
                restored: 1,
                skipped: 1
            }
        );
        assert_eq!(warm.len(), 1);
    }
}

//! The robustness layer: budgets, cooperative cancellation, the unified
//! generation error, and the fault-injection hook.
//!
//! The environment is meant to run unattended inside a synthesis loop —
//! the optimizer permutes compaction orders, the language backtracks over
//! topology variants — so a single pathological generator program or rule
//! deck must never hang or crash the whole search. This module gives
//! every pipeline stage one shared contract:
//!
//! * [`Budget`] caps the resources a run may consume (interpreter fuel,
//!   entity recursion depth, compaction steps, optimizer nodes, wall
//!   time). Exhaustion surfaces as a typed
//!   [`GenErrorKind::BudgetExhausted`], never as a hang or a panic.
//! * [`CancelToken`] cooperatively cancels a run from another thread;
//!   every stage checks it at its existing instrumentation points and
//!   surfaces [`GenErrorKind::Cancelled`].
//! * [`GenError`] unifies the per-stage error types (`DslError`,
//!   `PrimError`, `CompactError`, `ModgenError`, `RouteError`) behind one
//!   `amgen-core` type carrying the failing [`Stage`] and
//!   the entity being generated.
//! * [`FaultHook`] is a zero-cost-when-disabled injection point: a test
//!   harness (the `amgen-faults` crate) installs a deterministic,
//!   seed-driven hook and the chaos suite proves that no injected
//!   failure — including worker panics — escapes a public API untyped.
//!
//! All live state ([`Limits`]) sits behind the `GenCtx`'s `Arc`, so
//! parallel search workers share one fuel pool, one deadline and one
//! cancellation flag.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::Stage;

// ----- budget -----------------------------------------------------------

/// Resource caps for one generation run. All caps default to *unlimited*
/// except the entity recursion depth, which is always finite: unbounded
/// recursion overflows the native stack, and a stack overflow aborts the
/// process instead of unwinding — no cap, no isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Interpreter fuel: statements the language interpreter may execute
    /// (`u64::MAX` = unlimited). Bounds unbounded `FOR` loops.
    pub dsl_fuel: u64,
    /// Maximum entity-call nesting depth in the interpreter. Always
    /// finite (default 64): recursion beyond it is a typed error, not a
    /// native stack overflow.
    pub max_recursion: usize,
    /// Compaction steps the run may perform (`u64::MAX` = unlimited).
    /// One step = one `Compactor::compact` call, wherever it happens —
    /// the interpreter, a module generator or an optimizer worker.
    pub max_compact_steps: u64,
    /// Search nodes the order optimizer may expand (`u64::MAX` =
    /// unlimited). The effective cap is the minimum of this and the
    /// optimizer's own `SearchOptions::max_nodes`.
    pub max_opt_nodes: u64,
    /// Wall-clock deadline measured from [`Budget::arm`] (i.e. from
    /// `GenCtx::with_budget`). `None` = no deadline. The optimizer treats
    /// expiry as *degradation* (return the incumbent, flagged); every
    /// other stage surfaces a typed error.
    pub wall: Option<Duration>,
}

/// The default recursion cap. Deep enough for any real module hierarchy
/// (the paper's deepest example nests three entities), shallow enough
/// that a runaway recursive entity errors long before the native stack
/// is at risk.
pub const DEFAULT_MAX_RECURSION: usize = 64;

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// No caps except the always-on recursion depth.
    pub fn unlimited() -> Budget {
        Budget {
            dsl_fuel: u64::MAX,
            max_recursion: DEFAULT_MAX_RECURSION,
            max_compact_steps: u64::MAX,
            max_opt_nodes: u64::MAX,
            wall: None,
        }
    }

    /// Caps interpreter fuel.
    #[must_use]
    pub fn with_dsl_fuel(mut self, fuel: u64) -> Budget {
        self.dsl_fuel = fuel;
        self
    }

    /// Caps entity recursion depth.
    #[must_use]
    pub fn with_max_recursion(mut self, depth: usize) -> Budget {
        self.max_recursion = depth;
        self
    }

    /// Caps compaction steps.
    #[must_use]
    pub fn with_max_compact_steps(mut self, steps: u64) -> Budget {
        self.max_compact_steps = steps;
        self
    }

    /// Caps optimizer node expansions.
    #[must_use]
    pub fn with_max_opt_nodes(mut self, nodes: u64) -> Budget {
        self.max_opt_nodes = nodes;
        self
    }

    /// Sets a wall-clock deadline relative to arming.
    #[must_use]
    pub fn with_wall(mut self, wall: Duration) -> Budget {
        self.wall = Some(wall);
        self
    }

    /// Admission check: would a run with the statically certified
    /// resource consumption in `est` fit inside this budget?
    ///
    /// This is the gate a serving front-end uses to reject hostile or
    /// runaway programs *before* spending any budget on them: a static
    /// analyzer (amgen-lint's certification pass) derives upper bounds,
    /// converts them to a [`CostEstimate`], and a certified demand that
    /// exceeds a cap is refused with the same typed
    /// [`GenErrorKind::BudgetExhausted`] the dynamic meter would raise —
    /// only at zero execution cost. `None` fields (no static bound
    /// derivable) pass; such programs fall back to the dynamic meter.
    ///
    /// The check is conservative in the admitting direction only: an
    /// upper bound above the cap does not prove the run *would* exhaust
    /// it, but an admitted certificate proves it cannot.
    ///
    /// ```
    /// use amgen_core::{Budget, CostEstimate};
    ///
    /// let b = Budget::unlimited().with_dsl_fuel(100);
    /// assert!(b.admits(&CostEstimate::new().with_fuel(100)).is_ok());
    /// let e = b.admits(&CostEstimate::new().with_fuel(101)).unwrap_err();
    /// assert!(e.is_budget_exhausted());
    /// ```
    pub fn admits(&self, est: &CostEstimate) -> Result<(), GenError> {
        if let Some(fuel) = est.fuel {
            if fuel > self.dsl_fuel {
                return Err(GenError::budget(Stage::Dsl, Resource::DslFuel));
            }
        }
        if let Some(depth) = est.recursion {
            if depth > self.max_recursion {
                return Err(GenError::budget(Stage::Dsl, Resource::Recursion));
            }
        }
        if let Some(steps) = est.compact_steps {
            if steps > self.max_compact_steps {
                return Err(GenError::budget(Stage::Compact, Resource::CompactSteps));
            }
        }
        Ok(())
    }

    /// Resolves the budget into live, shareable state. The wall deadline
    /// starts counting *now*.
    pub fn arm(self) -> Limits {
        Limits {
            deadline: self.wall.map(|w| Instant::now() + w),
            budget: self,
            fuel_used: AtomicU64::new(0),
            compact_steps: AtomicU64::new(0),
            cancel: CancelToken::new(),
        }
    }
}

/// Statically certified resource consumption of one program, in the
/// plain numbers [`Budget::admits`] compares against its caps. Produced
/// by instantiating an `amgen-lint` `CostCertificate` at concrete
/// parameter intervals; `None` means no static bound was derivable for
/// that resource (the dynamic meter still applies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostEstimate {
    /// Upper bound on interpreter fuel (statements executed).
    pub fuel: Option<u64>,
    /// Upper bound on entity-call nesting depth.
    pub recursion: Option<usize>,
    /// Upper bound on compaction steps.
    pub compact_steps: Option<u64>,
    /// Upper bound on shapes generated. No budget cap exists for it
    /// (yet); carried for cache sizing and scheduling decisions.
    pub shapes: Option<u64>,
}

impl CostEstimate {
    /// An estimate with no bounds (admits everywhere).
    pub fn new() -> CostEstimate {
        CostEstimate::default()
    }

    /// Sets the fuel bound.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> CostEstimate {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the recursion-depth bound.
    #[must_use]
    pub fn with_recursion(mut self, depth: usize) -> CostEstimate {
        self.recursion = Some(depth);
        self
    }

    /// Sets the compaction-step bound.
    #[must_use]
    pub fn with_compact_steps(mut self, steps: u64) -> CostEstimate {
        self.compact_steps = Some(steps);
        self
    }

    /// Sets the shape-count bound.
    #[must_use]
    pub fn with_shapes(mut self, shapes: u64) -> CostEstimate {
        self.shapes = Some(shapes);
        self
    }
}

/// Live budget state shared by every clone of a `GenCtx`: the armed
/// [`Budget`], the consumption counters, the resolved deadline and the
/// run's [`CancelToken`].
#[derive(Debug)]
pub struct Limits {
    budget: Budget,
    fuel_used: AtomicU64,
    compact_steps: AtomicU64,
    deadline: Option<Instant>,
    cancel: CancelToken,
}

impl Default for Limits {
    fn default() -> Limits {
        Budget::unlimited().arm()
    }
}

impl Limits {
    /// The armed budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The run's cancellation token (clone it to cancel from elsewhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Interpreter fuel consumed so far.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used.load(Ordering::Relaxed)
    }

    /// Compaction steps consumed so far.
    pub fn compact_steps(&self) -> u64 {
        self.compact_steps.load(Ordering::Relaxed)
    }

    /// The resolved wall deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True once the wall deadline has passed.
    #[inline]
    pub fn deadline_expired(&self) -> bool {
        match self.deadline {
            None => false,
            Some(d) => Instant::now() >= d,
        }
    }

    /// Charges `n` units of interpreter fuel.
    #[inline]
    pub fn charge_fuel(&self, n: u64, stage: Stage) -> Result<(), GenError> {
        // `fetch_add` even on the unlimited path: one relaxed RMW per
        // statement is noise next to interpreting the statement, and the
        // counter doubles as an observability metric.
        let used = self.fuel_used.fetch_add(n, Ordering::Relaxed) + n;
        if used > self.budget.dsl_fuel {
            return Err(GenError::budget(stage, Resource::DslFuel));
        }
        self.checkpoint(stage)
    }

    /// Charges one compaction step.
    #[inline]
    pub fn charge_compact_step(&self) -> Result<(), GenError> {
        let used = self.compact_steps.fetch_add(1, Ordering::Relaxed) + 1;
        if used > self.budget.max_compact_steps {
            return Err(GenError::budget(Stage::Compact, Resource::CompactSteps));
        }
        self.checkpoint(Stage::Compact)
    }

    /// Cancellation + deadline check; the cheap probe every stage calls
    /// at its instrumentation points. One relaxed atomic load when no
    /// deadline is armed.
    #[inline]
    pub fn checkpoint(&self, stage: Stage) -> Result<(), GenError> {
        if self.cancel.is_cancelled() {
            return Err(GenError::cancelled(stage));
        }
        if self.deadline_expired() {
            return Err(GenError::budget(stage, Resource::Wall));
        }
        Ok(())
    }
}

// ----- cancellation -----------------------------------------------------

/// A cooperative cancellation flag. Clones share the flag; any clone may
/// [`cancel`](CancelToken::cancel), every pipeline stage polls
/// [`is_cancelled`](CancelToken::is_cancelled) at its instrumentation
/// points and unwinds with a typed [`GenErrorKind::Cancelled`].
///
/// ```
/// use amgen_core::CancelToken;
///
/// let t = CancelToken::new();
/// let watcher = t.clone();
/// assert!(!watcher.is_cancelled());
/// t.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once any clone has cancelled.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

// ----- the unified error ------------------------------------------------

/// The budgeted resource that ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Interpreter statement fuel.
    DslFuel,
    /// Entity-call recursion depth.
    Recursion,
    /// Compaction steps.
    CompactSteps,
    /// Optimizer node expansions.
    OptNodes,
    /// The wall-clock deadline.
    Wall,
}

impl Resource {
    /// Short lower-case name for messages.
    pub fn name(self) -> &'static str {
        match self {
            Resource::DslFuel => "dsl fuel",
            Resource::Recursion => "recursion depth",
            Resource::CompactSteps => "compaction steps",
            Resource::OptNodes => "optimizer nodes",
            Resource::Wall => "wall deadline",
        }
    }
}

/// What went wrong, independent of where.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GenErrorKind {
    /// A [`Budget`] resource ran out.
    BudgetExhausted(Resource),
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// A parallel worker panicked; the payload message was captured and
    /// the worker's branch pruned.
    WorkerPanic(String),
    /// A deterministic injected fault (testing only; see `amgen-faults`).
    Fault {
        /// The injection site that fired.
        site: FaultSite,
        /// Call-site detail (entity or object name).
        detail: String,
    },
    /// A stage-specific failure, carried as its rendered message. The
    /// typed original stays available in the stage crate's own error.
    Stage(String),
}

/// The unified generation error: *what* failed ([`GenErrorKind`]),
/// *where* in the pipeline ([`Stage`]), and — when known — *which
/// entity* was being generated.
///
/// Every per-stage error type converts into `GenError` (the stage crates
/// implement `From`), so callers that drive the whole pipeline can match
/// one type:
///
/// ```
/// use amgen_core::{GenError, GenErrorKind, Resource, Stage};
///
/// let e = GenError::budget(Stage::Dsl, Resource::DslFuel).with_entity("DiffPair");
/// assert!(e.is_budget_exhausted());
/// assert_eq!(e.stage, Stage::Dsl);
/// assert_eq!(e.to_string(), "dsl: entity `DiffPair`: budget exhausted: dsl fuel");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenError {
    /// The pipeline stage that failed.
    pub stage: Stage,
    /// The entity / module being generated, when known.
    pub entity: Option<String>,
    /// The failure itself.
    pub kind: GenErrorKind,
}

impl GenError {
    /// A budget-exhaustion error.
    pub fn budget(stage: Stage, resource: Resource) -> GenError {
        GenError {
            stage,
            entity: None,
            kind: GenErrorKind::BudgetExhausted(resource),
        }
    }

    /// A cancellation error.
    pub fn cancelled(stage: Stage) -> GenError {
        GenError {
            stage,
            entity: None,
            kind: GenErrorKind::Cancelled,
        }
    }

    /// A captured worker panic.
    pub fn worker_panic(stage: Stage, message: impl Into<String>) -> GenError {
        GenError {
            stage,
            entity: None,
            kind: GenErrorKind::WorkerPanic(message.into()),
        }
    }

    /// An injected fault.
    pub fn fault(stage: Stage, site: FaultSite, detail: impl Into<String>) -> GenError {
        GenError {
            stage,
            entity: None,
            kind: GenErrorKind::Fault {
                site,
                detail: detail.into(),
            },
        }
    }

    /// A stage-specific failure carried as a message.
    pub fn stage_msg(stage: Stage, message: impl Into<String>) -> GenError {
        GenError {
            stage,
            entity: None,
            kind: GenErrorKind::Stage(message.into()),
        }
    }

    /// Attaches (or overrides) the generating entity's name.
    #[must_use]
    pub fn with_entity(mut self, entity: impl Into<String>) -> GenError {
        self.entity = Some(entity.into());
        self
    }

    /// Attaches the entity only when none is recorded yet — outer frames
    /// add context without clobbering the innermost one.
    #[must_use]
    pub fn or_entity(mut self, entity: impl Into<String>) -> GenError {
        if self.entity.is_none() {
            self.entity = Some(entity.into());
        }
        self
    }

    /// True for any [`GenErrorKind::BudgetExhausted`].
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self.kind, GenErrorKind::BudgetExhausted(_))
    }

    /// True for [`GenErrorKind::Cancelled`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self.kind, GenErrorKind::Cancelled)
    }

    /// True for [`GenErrorKind::Fault`] (injected by a test harness).
    pub fn is_injected(&self) -> bool {
        matches!(self.kind, GenErrorKind::Fault { .. })
    }
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.stage.name())?;
        if let Some(e) = &self.entity {
            write!(f, "entity `{e}`: ")?;
        }
        match &self.kind {
            GenErrorKind::BudgetExhausted(r) => write!(f, "budget exhausted: {}", r.name()),
            GenErrorKind::Cancelled => write!(f, "cancelled"),
            GenErrorKind::WorkerPanic(m) => write!(f, "worker panic: {m}"),
            GenErrorKind::Fault { site, detail } => {
                write!(f, "injected fault at {}", site.name())?;
                if detail.is_empty() {
                    Ok(())
                } else {
                    write!(f, " ({detail})")
                }
            }
            GenErrorKind::Stage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for GenError {}

/// Shorthand for pipeline-driving results.
pub type GenResult<T> = Result<T, GenError>;

// ----- fault injection --------------------------------------------------

/// The injection points instrumented across the pipeline. Each is a spot
/// where real deployments have seen real failures: a rule deck missing an
/// entry, a compaction step on degenerate geometry, a module generator
/// aborting, a worker thread dying mid-search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// A design-rule lookup inside a primitive shape function.
    RuleLookup,
    /// A primitive shape function call.
    PrimCall,
    /// One successive-compaction step.
    CompactStep,
    /// Entry into a module-library generator.
    ModgenEntry,
    /// A wiring-routine call.
    RouteCall,
    /// One optimizer worker node expansion (supports panic injection to
    /// exercise `catch_unwind` isolation).
    OptWorker,
    /// One interpreter statement.
    DslStmt,
}

impl FaultSite {
    /// All sites, for sweeps.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::RuleLookup,
        FaultSite::PrimCall,
        FaultSite::CompactStep,
        FaultSite::ModgenEntry,
        FaultSite::RouteCall,
        FaultSite::OptWorker,
        FaultSite::DslStmt,
    ];

    /// Short name for messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::RuleLookup => "rule_lookup",
            FaultSite::PrimCall => "prim_call",
            FaultSite::CompactStep => "compact_step",
            FaultSite::ModgenEntry => "modgen_entry",
            FaultSite::RouteCall => "route_call",
            FaultSite::OptWorker => "opt_worker",
            FaultSite::DslStmt => "dsl_stmt",
        }
    }

    /// The pipeline stage a site belongs to.
    pub fn stage(self) -> Stage {
        match self {
            FaultSite::RuleLookup | FaultSite::PrimCall => Stage::Prim,
            FaultSite::CompactStep => Stage::Compact,
            FaultSite::ModgenEntry => Stage::Modgen,
            FaultSite::RouteCall => Stage::Route,
            FaultSite::OptWorker => Stage::Opt,
            FaultSite::DslStmt => Stage::Dsl,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an installed hook decided for one occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Let the occurrence proceed normally.
    Proceed,
    /// Fail it with a typed [`GenErrorKind::Fault`].
    Fail,
    /// Panic at the site (exercises panic-isolation paths).
    Panic,
}

/// A fault-injection decision hook. Installed on a `GenCtx` with
/// `with_faults`; when none is installed the per-site cost is one branch
/// on an `Option`. Implementations must be deterministic for a given
/// construction (the chaos suite relies on replayable sweeps) — the
/// `amgen-faults` crate provides the seed-driven reference
/// implementation.
pub trait FaultHook: Send + Sync + std::fmt::Debug {
    /// Decides the fate of one occurrence at `site`. `detail` names the
    /// concrete entity/object, for targeted plans.
    fn decide(&self, site: FaultSite, detail: &str) -> FaultAction;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_charges_freely() {
        let l = Budget::unlimited().arm();
        for _ in 0..1000 {
            l.charge_fuel(1, Stage::Dsl).unwrap();
            l.charge_compact_step().unwrap();
        }
        assert_eq!(l.fuel_used(), 1000);
        assert_eq!(l.compact_steps(), 1000);
    }

    #[test]
    fn fuel_exhaustion_is_typed() {
        let l = Budget::unlimited().with_dsl_fuel(3).arm();
        assert!(l.charge_fuel(3, Stage::Dsl).is_ok());
        let e = l.charge_fuel(1, Stage::Dsl).unwrap_err();
        assert_eq!(e.kind, GenErrorKind::BudgetExhausted(Resource::DslFuel));
        assert_eq!(e.stage, Stage::Dsl);
        assert!(e.is_budget_exhausted());
    }

    #[test]
    fn compact_step_cap_is_typed() {
        let l = Budget::unlimited().with_max_compact_steps(2).arm();
        assert!(l.charge_compact_step().is_ok());
        assert!(l.charge_compact_step().is_ok());
        let e = l.charge_compact_step().unwrap_err();
        assert_eq!(
            e.kind,
            GenErrorKind::BudgetExhausted(Resource::CompactSteps)
        );
    }

    #[test]
    fn cancellation_reaches_checkpoints() {
        let l = Budget::unlimited().arm();
        let t = l.cancel_token();
        assert!(l.checkpoint(Stage::Opt).is_ok());
        t.cancel();
        let e = l.checkpoint(Stage::Opt).unwrap_err();
        assert!(e.is_cancelled());
        assert_eq!(e.stage, Stage::Opt);
        // Fuel charges observe cancellation too.
        assert!(l.charge_fuel(1, Stage::Dsl).unwrap_err().is_cancelled());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let l = Budget::unlimited().with_wall(Duration::ZERO).arm();
        let e = l.checkpoint(Stage::Compact).unwrap_err();
        assert_eq!(e.kind, GenErrorKind::BudgetExhausted(Resource::Wall));
    }

    #[test]
    fn display_carries_stage_and_entity() {
        let e = GenError::stage_msg(Stage::Modgen, "boom").with_entity("DiffPair");
        assert_eq!(e.to_string(), "modgen: entity `DiffPair`: boom");
        let e = GenError::fault(Stage::Prim, FaultSite::RuleLookup, "poly");
        assert_eq!(e.to_string(), "prim: injected fault at rule_lookup (poly)");
        let e = GenError::worker_panic(Stage::Opt, "bad frame");
        assert!(e.to_string().contains("worker panic"));
    }

    #[test]
    fn or_entity_keeps_the_innermost() {
        let e = GenError::cancelled(Stage::Dsl)
            .or_entity("Inner")
            .or_entity("Outer");
        assert_eq!(e.entity.as_deref(), Some("Inner"));
    }

    #[test]
    fn site_metadata_is_consistent() {
        for site in FaultSite::ALL {
            assert!(!site.name().is_empty());
            let _ = site.stage();
            assert_eq!(site.to_string(), site.name());
        }
    }
}

//! Content-addressed memoization of generated modules.
//!
//! Generation in this environment is *pure*: the layout produced by a
//! module generator or a DSL entity is fully determined by the entity
//! name, its parameter values, the compiled technology and (for DSL
//! entities) the source of the entity library. [`GenCache`] exploits
//! that purity: results are stored under a canonical [`GenKey`] and a
//! repeated build with the same key returns the stored
//! [`Arc`]`<`[`CachedModule`]`>` instead of re-running primitives,
//! compaction, DRC and routing.
//!
//! The cache is only as correct as the key, so canonicalization is
//! strict:
//!
//! * float parameters are keyed by [`f64::to_bits`] **after** folding
//!   `-0.0` to `0.0` (the two compare equal and generate identical
//!   layouts, so they must share a key), and `NaN` is rejected with a
//!   typed [`GenError`] — `NaN != NaN`, so a NaN-keyed entry could
//!   never be correct, and downstream coordinate math would silently
//!   turn it into `0`;
//! * layout-object parameters (a guard ring's core, an optimizer step)
//!   are keyed by an **order-sensitive** digest over shapes, ports,
//!   groups and the object name — stricter than the commutative
//!   [`LayoutSignature`], because stage behaviour may depend on shape
//!   order;
//! * the key carries the [`RuleSet`](amgen_tech::RuleSet) compile brand
//!   (`tech_id`) and a caller-supplied `source` hash (the DSL
//!   interpreter hashes its whole entity library), so retargeting or
//!   redefining an entity can never serve a stale layout.
//!
//! Robustness semantics (PR 5) are preserved by the [`GenCtx`](crate::GenCtx) entry
//! points, not here: errors are never inserted, and a context with an
//! installed fault hook bypasses the cache entirely so chaos tests
//! observe every probe.
//!
//! ```
//! use amgen_core::cache::{CanonParam, GenCache, GenKey, CachedModule};
//! use amgen_core::Stage;
//! use std::sync::Arc;
//!
//! let cache = GenCache::new();
//! let mut key = GenKey::module("contact_row", 7);
//! key.push(CanonParam::num(Stage::Modgen, 1.5).unwrap());
//! assert!(cache.get(&key).is_none());
//! cache.put(key.clone(), Arc::new(CachedModule::layout(Default::default())));
//! assert!(cache.get(&key).is_some());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use amgen_db::{LayoutObject, LayoutSignature};

use crate::{GenError, Stage};

/// One canonicalized parameter of a [`GenKey`].
///
/// Every designer-facing parameter type maps onto exactly one variant,
/// chosen so that *value equality implies key equality* (the float rule)
/// and *key equality implies identical generation* (the object digest).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanonParam {
    /// A signed integer (coordinates, counts).
    Int(i64),
    /// An unsigned integer (indices, layer numbers).
    UInt(u64),
    /// A float, canonicalized to its IEEE-754 bit pattern with `-0.0`
    /// folded to `0.0`; built only through [`CanonParam::num`].
    Bits(u64),
    /// A string (net names, port names).
    Str(String),
    /// A boolean flag.
    Flag(bool),
    /// An absent optional parameter, or a field delimiter.
    None,
    /// Digest of a [`LayoutObject`] parameter; built through
    /// [`CanonParam::object`].
    Object {
        /// Order-sensitive digest over name, shapes, ports and groups.
        hash: u64,
        /// Shape count (cheap second check against digest collisions).
        shapes: u64,
    },
}

/// FNV-1a step: digest one 64-bit word into `h`.
#[inline]
fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// FNV-1a over a byte string, plus a terminator so `("ab","c")` and
/// `("a","bc")` digest differently.
#[inline]
fn mix_str(h: &mut u64, s: &str) {
    for b in s.as_bytes() {
        mix(h, u64::from(*b));
    }
    mix(h, 0xff);
}

impl CanonParam {
    /// Canonicalizes a float parameter.
    ///
    /// `-0.0` is folded to `0.0` so the two (equal) values share one
    /// key; `NaN` is rejected with a typed [`GenError`] charged to
    /// `stage` — a NaN parameter is always a caller bug (`NaN != NaN`
    /// breaks key equality, and coordinate scaling would silently cast
    /// it to `0`).
    ///
    /// ```
    /// use amgen_core::cache::CanonParam;
    /// use amgen_core::Stage;
    ///
    /// assert_eq!(
    ///     CanonParam::num(Stage::Dsl, -0.0).unwrap(),
    ///     CanonParam::num(Stage::Dsl, 0.0).unwrap(),
    /// );
    /// assert!(CanonParam::num(Stage::Dsl, f64::NAN).is_err());
    /// ```
    pub fn num(stage: Stage, v: f64) -> Result<CanonParam, GenError> {
        if v.is_nan() {
            return Err(GenError::stage_msg(
                stage,
                "NaN parameter cannot be canonicalized (NaN != NaN breaks value equality)",
            ));
        }
        let v = if v == 0.0 { 0.0 } else { v };
        Ok(CanonParam::Bits(v.to_bits()))
    }

    /// Digests a [`LayoutObject`] parameter.
    ///
    /// The digest is **order-sensitive** over the shape list (two
    /// objects with the same shape *multiset* but different order are
    /// distinct keys — compaction walks shapes in order) and covers the
    /// object name, per-shape hashes (geometry, layer, net, edge
    /// properties), ports and groups, so any input difference that
    /// could change a generated result changes the key.
    pub fn object(o: &LayoutObject) -> CanonParam {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        mix_str(&mut h, o.name());
        for s in o.shapes() {
            mix(&mut h, o.shape_hash(s));
        }
        mix(&mut h, 0xa5a5);
        for p in o.ports() {
            mix_str(&mut h, &p.name);
            mix(&mut h, p.layer.index() as u64);
            for c in [p.rect.x0, p.rect.y0, p.rect.x1, p.rect.y1] {
                mix(&mut h, c as u64);
            }
            match p.net {
                Some(id) => mix_str(&mut h, o.net_name(id)),
                None => mix(&mut h, 0),
            }
        }
        mix(&mut h, 0x5a5a);
        for g in o.groups() {
            mix_str(&mut h, &g.name);
            for &i in &g.shapes {
                mix(&mut h, i as u64);
            }
            match g.rebuild {
                Some(amgen_db::RebuildKind::ContactArray { cut }) => {
                    mix(&mut h, 1 + cut.index() as u64);
                }
                None => mix(&mut h, 0),
            }
        }
        CanonParam::Object {
            hash: h,
            shapes: o.len() as u64,
        }
    }
}

impl From<i64> for CanonParam {
    fn from(v: i64) -> CanonParam {
        CanonParam::Int(v)
    }
}

impl From<u64> for CanonParam {
    fn from(v: u64) -> CanonParam {
        CanonParam::UInt(v)
    }
}

impl From<usize> for CanonParam {
    fn from(v: usize) -> CanonParam {
        CanonParam::UInt(v as u64)
    }
}

impl From<bool> for CanonParam {
    fn from(v: bool) -> CanonParam {
        CanonParam::Flag(v)
    }
}

impl From<&str> for CanonParam {
    fn from(v: &str) -> CanonParam {
        CanonParam::Str(v.to_owned())
    }
}

impl From<String> for CanonParam {
    fn from(v: String) -> CanonParam {
        CanonParam::Str(v)
    }
}

impl<T: Into<CanonParam>> From<Option<T>> for CanonParam {
    fn from(v: Option<T>) -> CanonParam {
        match v {
            Some(v) => v.into(),
            None => CanonParam::None,
        }
    }
}

/// The canonical content address of one generated module.
///
/// Two keys compare equal exactly when the generation they describe is
/// guaranteed to produce structurally identical results: same entity
/// name, same canonicalized parameter vector, same compiled-rule brand
/// and same source hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GenKey {
    /// Entity / generator name.
    pub entity: String,
    /// [`RuleSet::id`](amgen_tech::RuleSet::id) brand of the compiled
    /// technology the result was generated under.
    pub tech_id: u32,
    /// Hash of the defining source (the DSL entity library); `0` for
    /// built-in Rust generators, whose "source" is the crate itself.
    pub source: u64,
    /// Canonicalized parameters, in declaration order.
    pub params: Vec<CanonParam>,
}

impl GenKey {
    /// Key for a built-in Rust module generator (`source = 0`).
    pub fn module(entity: impl Into<String>, tech_id: u32) -> GenKey {
        GenKey::entity(entity, tech_id, 0)
    }

    /// Key for a source-defined entity (DSL), carrying the library hash.
    pub fn entity(entity: impl Into<String>, tech_id: u32, source: u64) -> GenKey {
        GenKey {
            entity: entity.into(),
            tech_id,
            source,
            params: Vec::new(),
        }
    }

    /// Appends one canonicalized parameter.
    pub fn push(&mut self, p: impl Into<CanonParam>) -> &mut GenKey {
        self.params.push(p.into());
        self
    }
}

/// A memoized generation result: the layout plus any auxiliary scalar
/// outputs (extracted resistance, capacitance) some generators return
/// alongside it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CachedModule {
    /// The generated layout.
    pub layout: LayoutObject,
    /// Auxiliary scalar outputs, in the generator's return order
    /// (empty for layout-only generators).
    pub scalars: Vec<f64>,
}

impl CachedModule {
    /// Wraps a layout-only result.
    pub fn layout(layout: LayoutObject) -> CachedModule {
        CachedModule {
            layout,
            scalars: Vec::new(),
        }
    }
}

/// One precomputed compaction-order variant of a module (Badaoui/Vemuri
/// style multi-placement entry): the order, its rating components and
/// the signature of the layout it compacts to.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementVariant {
    /// Step order (indices into the caller's step list).
    pub order: Vec<usize>,
    /// Combined weighted score (lower is better).
    pub score: f64,
    /// Area component, µm².
    pub area_um2: f64,
    /// Weighted parasitic capacitance component, aF.
    pub cap_af: f64,
    /// Signature of the compacted layout this order produces.
    pub signature: LayoutSignature,
}

/// The stored variant set for one optimizer key: the winning layout and
/// the top-k orders, best first. A warm `optimize_order` call
/// instantiates `variants[0]` in O(1) instead of re-searching.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantTable {
    /// The layout produced by the best order.
    pub layout: LayoutObject,
    /// Top-k complete orders, sorted by (score, order) — best first,
    /// deterministic ties.
    pub variants: Vec<PlacementVariant>,
}

/// A module entry plus its LRU tick.
#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

const SHARDS: usize = 16;

/// Default total module-entry capacity.
const DEFAULT_CAPACITY: usize = 4096;

/// Sharded, content-addressed store of generated modules and optimizer
/// variant tables.
///
/// * lookups hash the [`GenKey`] to one of 16 shards, each behind its
///   own mutex, so parallel search workers rarely contend;
/// * eviction is least-recently-used per shard, driven by a global
///   atomic tick — every tick is unique, so eviction order is
///   deterministic for a deterministic operation sequence;
/// * hit/miss/evict accounting lives in [`Metrics`](crate::Metrics),
///   bumped by the [`GenCtx`](crate::GenCtx) entry points (the raw
///   cache is policy-free).
#[derive(Debug)]
pub struct GenCache {
    shards: [Mutex<HashMap<GenKey, Slot<Arc<CachedModule>>>>; SHARDS],
    variants: Mutex<HashMap<GenKey, Slot<Arc<VariantTable>>>>,
    tick: AtomicU64,
    per_shard: usize,
    variant_capacity: usize,
}

impl Default for GenCache {
    fn default() -> GenCache {
        GenCache::new()
    }
}

impl GenCache {
    /// A cache with the default capacity (4096 module entries, 512
    /// variant tables).
    pub fn new() -> GenCache {
        GenCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` module entries (rounded up to
    /// a multiple of the shard count) and `capacity / 8` variant
    /// tables, with a floor of one entry each.
    pub fn with_capacity(capacity: usize) -> GenCache {
        GenCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            variants: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            per_shard: (capacity / SHARDS).max(1),
            variant_capacity: (capacity / 8).max(1),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn shard(&self, key: &GenKey) -> &Mutex<HashMap<GenKey, Slot<Arc<CachedModule>>>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up a module entry, refreshing its LRU tick on a hit.
    pub fn get(&self, key: &GenKey) -> Option<Arc<CachedModule>> {
        let mut map = self.shard(key).lock().unwrap();
        let slot = map.get_mut(key)?;
        slot.last_used = self.next_tick();
        Some(Arc::clone(&slot.value))
    }

    /// Inserts (or refreshes) a module entry; returns how many entries
    /// were evicted to stay within capacity.
    pub fn put(&self, key: GenKey, value: Arc<CachedModule>) -> u64 {
        let tick = self.next_tick();
        let mut map = self.shard(&key).lock().unwrap();
        map.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
        Self::evict(&mut map, self.per_shard)
    }

    /// Looks up a variant table, refreshing its LRU tick on a hit.
    pub fn variants_get(&self, key: &GenKey) -> Option<Arc<VariantTable>> {
        let mut map = self.variants.lock().unwrap();
        let slot = map.get_mut(key)?;
        slot.last_used = self.next_tick();
        Some(Arc::clone(&slot.value))
    }

    /// Inserts (or refreshes) a variant table; returns evictions.
    pub fn variants_put(&self, key: GenKey, value: Arc<VariantTable>) -> u64 {
        let tick = self.next_tick();
        let mut map = self.variants.lock().unwrap();
        map.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
        Self::evict(&mut map, self.variant_capacity)
    }

    fn evict<V>(map: &mut HashMap<GenKey, Slot<V>>, capacity: usize) -> u64 {
        let mut evicted = 0;
        while map.len() > capacity {
            // Ticks are globally unique, so the minimum is unambiguous
            // and eviction is deterministic.
            let oldest = map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    /// Every module entry, sorted by key — the deterministic iteration
    /// order [`GenCache::snapshot`](crate::snapshot) serializes.
    /// (Variant tables are not exported: they rebuild on demand and
    /// carry search-internal state not worth persisting.)
    pub(crate) fn export_modules(&self) -> Vec<(GenKey, Arc<CachedModule>)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let map = s.lock().unwrap();
            out.extend(
                map.iter()
                    .map(|(k, slot)| (k.clone(), Arc::clone(&slot.value))),
            );
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of stored module entries (excludes variant tables).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when no module entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every module entry and variant table.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
        self.variants.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(name: &str) -> LayoutObject {
        LayoutObject::new(name)
    }

    #[test]
    fn zero_and_negative_zero_share_a_key() {
        let a = CanonParam::num(Stage::Modgen, 0.0).unwrap();
        let b = CanonParam::num(Stage::Modgen, -0.0).unwrap();
        assert_eq!(a, b);
        // ... and the raw bit patterns would NOT have matched:
        assert_ne!((0.0f64).to_bits(), (-0.0f64).to_bits());
        // Ordinary distinct values stay distinct.
        assert_ne!(a, CanonParam::num(Stage::Modgen, 1.0).unwrap());
    }

    #[test]
    fn nan_is_rejected_with_a_typed_error() {
        let err = CanonParam::num(Stage::Dsl, f64::NAN).unwrap_err();
        assert_eq!(err.stage, Stage::Dsl);
        assert!(err.to_string().contains("NaN"), "{err}");
    }

    #[test]
    fn keys_distinguish_entity_tech_source_and_params() {
        let mut a = GenKey::module("row", 1);
        a.push(3i64).push("gnd").push(true);
        let mut b = a.clone();
        assert_eq!(a, b);
        b.push(CanonParam::None);
        assert_ne!(a, b);
        assert_ne!(GenKey::module("row", 1), GenKey::module("row", 2));
        assert_ne!(GenKey::module("row", 1), GenKey::module("col", 1));
        assert_ne!(GenKey::entity("row", 1, 7), GenKey::entity("row", 1, 8));
    }

    #[test]
    fn object_params_cover_ports_and_order() {
        use amgen_geom::Rect;
        use amgen_tech::Tech;

        let tech = Tech::bicmos_1u();
        let rules = tech.compile_arc();
        let metal = rules.layer("metal1").unwrap();
        let poly = rules.layer("poly").unwrap();

        let mut a = obj("core");
        a.push(amgen_db::Shape::new(metal, Rect::new(0, 0, 10, 10)));
        a.push(amgen_db::Shape::new(poly, Rect::new(0, 0, 4, 4)));
        let mut b = obj("core");
        b.push(amgen_db::Shape::new(poly, Rect::new(0, 0, 4, 4)));
        b.push(amgen_db::Shape::new(metal, Rect::new(0, 0, 10, 10)));
        // Same multiset, different order: distinct digests.
        assert_ne!(CanonParam::object(&a), CanonParam::object(&b));

        // Adding a port changes the digest even with identical shapes.
        let mut c = a.clone();
        c.push_port(amgen_db::Port {
            name: "out".into(),
            layer: metal,
            rect: Rect::new(0, 0, 10, 10),
            net: None,
        });
        assert_ne!(CanonParam::object(&a), CanonParam::object(&c));
    }

    #[test]
    fn cache_round_trips_and_counts_len() {
        let cache = GenCache::new();
        let key = GenKey::module("m", 1);
        assert!(cache.get(&key).is_none());
        assert!(cache.is_empty());
        cache.put(key.clone(), Arc::new(CachedModule::layout(obj("m"))));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key).unwrap().layout.name(), "m");
        cache.clear();
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        // Capacity 16 => one entry per shard; the second insert into a
        // shard evicts the older one.
        let cache = GenCache::with_capacity(16);
        let mut keys = Vec::new();
        for i in 0..64u64 {
            let mut k = GenKey::module("m", 1);
            k.push(i);
            keys.push(k);
        }
        let mut evicted = 0;
        for k in &keys {
            evicted += cache.put(k.clone(), Arc::new(CachedModule::default()));
        }
        assert!(evicted > 0, "64 inserts into 16 slots must evict");
        assert!(cache.len() <= 16);
        // The most recent insert in its shard is always resident.
        assert!(cache.get(keys.last().unwrap()).is_some());
    }

    #[test]
    fn variant_tables_store_separately() {
        let cache = GenCache::new();
        let key = GenKey::module("opt", 1);
        assert!(cache.variants_get(&key).is_none());
        cache.variants_put(
            key.clone(),
            Arc::new(VariantTable {
                layout: obj("best"),
                variants: vec![],
            }),
        );
        assert_eq!(cache.variants_get(&key).unwrap().layout.name(), "best");
        // Module map unaffected.
        assert!(cache.get(&key).is_none());
        assert!(cache.is_empty());
    }
}

//! Shared workload builders for the figure benches.

use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::prelude::*;

/// The benchmark technology (the paper's process class).
pub fn tech() -> Tech {
    Tech::bicmos_1u()
}

/// A latch-up workload: `n` active stripes in a row, substrate contacts
/// every `every` stripes.
pub fn latchup_workload(tech: &Tech, n: usize, every: usize) -> LayoutObject {
    let pdiff = tech.layer("pdiff").unwrap();
    let mut obj = LayoutObject::new("latchup");
    for i in 0..n {
        let x = i as i64 * um(12);
        obj.push(
            Shape::new(pdiff, Rect::new(x, 0, x + um(8), um(6))).with_role(ShapeRole::DeviceActive),
        );
        if i % every == 0 {
            obj.push(
                Shape::new(pdiff, Rect::new(x, um(10), x + um(2), um(12)))
                    .with_role(ShapeRole::SubstrateContact),
            );
        }
    }
    obj
}

/// The three contact-row variants of Fig. 3.
pub fn fig3_rows(tech: &Tech) -> [LayoutObject; 3] {
    let poly = tech.layer("poly").unwrap();
    [
        contact_row(tech, poly, &ContactRowParams::new()).unwrap(),
        contact_row(tech, poly, &ContactRowParams::new().with_w(um(10))).unwrap(),
        contact_row(
            tech,
            poly,
            &ContactRowParams::new().with_w(um(8)).with_l(um(6)),
        )
        .unwrap(),
    ]
}

/// The Fig. 6 differential pair.
pub fn fig6_pair(tech: &Tech) -> LayoutObject {
    diff_pair(
        tech,
        &DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2)),
    )
    .unwrap()
}

/// The Fig. 10 / block E centroid pair in the paper's configuration.
pub fn fig10_centroid(tech: &Tech) -> LayoutObject {
    centroid_diff_pair(
        tech,
        &CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1)),
    )
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        let t = tech();
        assert!(latchup_workload(&t, 10, 3).len() > 10);
        let rows = fig3_rows(&t);
        assert!(rows[1].bbox().width() > rows[0].bbox().width());
        assert!(!fig6_pair(&t).is_empty());
        assert!(!fig10_centroid(&t).is_empty());
    }
}

//! Shared workload builders for the figure benches.

use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::prelude::*;

/// The benchmark technology (the paper's process class).
pub fn tech() -> Tech {
    Tech::bicmos_1u()
}

/// A latch-up workload: `n` active stripes in a row, substrate contacts
/// every `every` stripes.
pub fn latchup_workload(tech: &Tech, n: usize, every: usize) -> LayoutObject {
    let pdiff = tech.layer("pdiff").unwrap();
    let mut obj = LayoutObject::new("latchup");
    for i in 0..n {
        let x = i as i64 * um(12);
        obj.push(
            Shape::new(pdiff, Rect::new(x, 0, x + um(8), um(6))).with_role(ShapeRole::DeviceActive),
        );
        if i % every == 0 {
            obj.push(
                Shape::new(pdiff, Rect::new(x, um(10), x + um(2), um(12)))
                    .with_role(ShapeRole::SubstrateContact),
            );
        }
    }
    obj
}

/// The three contact-row variants of Fig. 3.
pub fn fig3_rows(tech: &Tech) -> [LayoutObject; 3] {
    let poly = tech.layer("poly").unwrap();
    [
        contact_row(tech, poly, &ContactRowParams::new()).unwrap(),
        contact_row(tech, poly, &ContactRowParams::new().with_w(um(10))).unwrap(),
        contact_row(
            tech,
            poly,
            &ContactRowParams::new().with_w(um(8)).with_l(um(6)),
        )
        .unwrap(),
    ]
}

/// The Fig. 6 differential pair.
pub fn fig6_pair(tech: &Tech) -> LayoutObject {
    diff_pair(
        tech,
        &DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2)),
    )
    .unwrap()
}

/// The Fig. 10 / block E centroid pair in the paper's configuration.
pub fn fig10_centroid(tech: &Tech) -> LayoutObject {
    centroid_diff_pair(
        tech,
        &CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1)),
    )
    .unwrap()
}

/// The prototype tile for the chip workload: the full Fig. 9 amplifier
/// (blocks A–F with guard rings and routing), generated once through a
/// cache-aware context. Chip assembly replicates this object — the
/// generation cost is paid upfront, so `fig_chip` measures assembly.
pub fn chip_prototype(tech: &Tech) -> LayoutObject {
    let ctx = GenCtx::from_tech(tech).with_default_cache();
    amgen::amp::build_amplifier(&ctx).unwrap().0
}

/// The `fig_chip` workload: the prototype amplifier tiled `rep` times
/// in a near-square grid, with a shared metal2 rail and a
/// substrate-contact stripe per row — a full-chip-scale layout that
/// keeps the spacing, latch-up and connectivity passes busy.
pub fn fig_chip(tech: &Tech, proto: &LayoutObject, rep: usize) -> LayoutObject {
    let m2 = tech.layer("metal2").unwrap();
    let pdiff = tech.layer("pdiff").unwrap();
    let bb = proto.bbox();
    let pitch_x = bb.width() + um(20);
    let pitch_y = bb.height() + um(40);
    let cols = (rep as u64).isqrt().max(1) as usize;
    let rows = rep.div_ceil(cols);
    let mut chip = LayoutObject::with_capacity("fig_chip", rep * proto.len() + 2 * rows);
    for i in 0..rep {
        let (r, c) = (i / cols, i % cols);
        let v = Vector::new(c as i64 * pitch_x - bb.x0, r as i64 * pitch_y - bb.y0);
        chip.absorb(proto, v);
    }
    let chip_bb = chip.bbox();
    for r in 0..rows {
        let y = r as i64 * pitch_y - um(34);
        chip.push(Shape::new(
            m2,
            Rect::new(chip_bb.x0, y, chip_bb.x1, y + um(4)),
        ));
        chip.push(
            Shape::new(
                pdiff,
                Rect::new(chip_bb.x0, y + um(6), chip_bb.x1, y + um(8)),
            )
            .with_role(ShapeRole::SubstrateContact),
        );
    }
    chip
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        let t = tech();
        assert!(latchup_workload(&t, 10, 3).len() > 10);
        let rows = fig3_rows(&t);
        assert!(rows[1].bbox().width() > rows[0].bbox().width());
        assert!(!fig6_pair(&t).is_empty());
        assert!(!fig10_centroid(&t).is_empty());
    }

    #[test]
    fn fig_chip_scales_with_replication() {
        let t = tech();
        let proto = chip_prototype(&t);
        let chip4 = fig_chip(&t, &proto, 4);
        assert_eq!(chip4.len(), 4 * proto.len() + 2 * 2);
        let chip9 = fig_chip(&t, &proto, 9);
        assert_eq!(chip9.len(), 9 * proto.len() + 2 * 3);
        assert!(chip9.bbox().width() > chip4.bbox().width());
        // The chip's per-row substrate stripes do not regress latch-up:
        // the replicated amplifier was latch-up clean and stays clean.
        assert!(amgen::drc::latchup::check_latchup(&t, &chip9).is_empty());
    }
}

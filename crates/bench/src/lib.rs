//! Criterion benches live in `benches/`; this library hosts shared
//! workload helpers.

pub mod workloads;

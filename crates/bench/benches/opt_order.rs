//! §2.4 — the optimization mode.
//!
//! Benchmarks the compaction-order search (backtracking with pruning)
//! against exhaustive enumeration, for growing object counts.

use amgen::opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The L-shape-with-notch workload where compaction order matters (see
/// `amgen-opt`'s tests), extended to `k` movable squares.
fn steps(tech: &Tech, k: usize) -> Vec<Step> {
    let poly = tech.layer("poly").unwrap();
    let mut seed = LayoutObject::new("L");
    seed.push(Shape::new(poly, Rect::new(0, 0, um(1), um(8))));
    seed.push(Shape::new(poly, Rect::new(0, 0, um(8), um(1))));
    let mut out = vec![Step::new(seed, Dir::East, CompactOptions::new())];
    for i in 0..k {
        let y0 = (i as i64 % 3) * um(3);
        let mut sq = LayoutObject::new("sq");
        sq.push(Shape::new(poly, Rect::new(0, y0, um(2), y0 + um(2))));
        out.push(Step::new(sq, Dir::East, CompactOptions::new()));
    }
    out
}

fn bench_order_search(c: &mut Criterion) {
    let tech = workloads::tech();
    let opt = Optimizer::new(&tech, RatingWeights::default());
    let mut g = c.benchmark_group("opt/order_search");
    g.sample_size(10);
    for k in [3usize, 4, 5] {
        let s = steps(&tech, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &s, |b, s| {
            b.iter(|| {
                let r = opt.optimize_order(s, SearchOptions::default()).unwrap();
                black_box((r.rating.score, r.explored, r.pruned))
            })
        });
    }
    g.finish();
}

/// Sequential vs. parallel branch-and-bound on the same 6-movable-square
/// workload (7 steps total, ~6! orders before pruning).
fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let tech = workloads::tech();
    let opt = Optimizer::new(&tech, RatingWeights::default());
    let s = steps(&tech, 6);
    let mut g = c.benchmark_group("opt/order_search_par");
    g.sample_size(10);
    for (name, opts) in [
        ("seq", SearchOptions::default()),
        (
            "seq_nodom",
            SearchOptions {
                dominance: false,
                ..Default::default()
            },
        ),
        ("par", SearchOptions::parallel()),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 6), &s, |b, s| {
            b.iter(|| {
                let r = opt.optimize_order(s, opts).unwrap();
                black_box((r.rating.score, r.explored, r.pruned, r.dominated))
            })
        });
    }
    g.finish();
}

fn bench_single_order(c: &mut Criterion) {
    let tech = workloads::tech();
    let opt = Optimizer::new(&tech, RatingWeights::default());
    let s = steps(&tech, 5);
    c.bench_function("opt/single_order_build", |b| {
        b.iter(|| black_box(opt.build(&s).unwrap().1.score))
    });
}

criterion_group!(
    benches,
    bench_order_search,
    bench_parallel_vs_sequential,
    bench_single_order
);
criterion_main!(benches);

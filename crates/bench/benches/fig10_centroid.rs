//! Fig. 10 — the centroidal cross-coupled differential pair (block E).
//!
//! The paper reports *"the computation time for building this module is
//! five seconds"* (1996 workstation). This bench measures the same build
//! on current hardware, plus its scaling with finger pairs.

use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::MosType;
use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_paper_configuration(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("paper_configuration", |b| {
        let p = CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1));
        b.iter(|| black_box(centroid_diff_pair(&ctx, &p).unwrap()).len())
    });
    g.finish();
}

fn bench_scaling_with_pairs(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let mut g = c.benchmark_group("fig10/pairs_scaling");
    g.sample_size(10);
    for pairs in [1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |b, &pairs| {
            let mut p = CentroidParams::paper(MosType::N)
                .with_w(um(6))
                .without_guard();
            p.pairs_per_side = pairs;
            b.iter(|| black_box(centroid_diff_pair(&ctx, &p).unwrap()).len())
        });
    }
    g.finish();
}

fn bench_crossing_audit(c: &mut Criterion) {
    let tech = workloads::tech();
    let m = workloads::fig10_centroid(&tech);
    c.bench_function("fig10/crossing_audit", |b| {
        let router = Router::new(&tech);
        b.iter(|| black_box(router.crossing_counts(&m)).len())
    });
}

criterion_group!(
    benches,
    bench_paper_configuration,
    bench_scaling_with_pairs,
    bench_crossing_audit
);
criterion_main!(benches);

//! Figs. 6/7 — the five-step MOS differential pair.
//!
//! Benchmarks the native generator, the DSL-interpreted version, and the
//! per-step cost of the successive compaction.

use amgen::dsl::{stdlib, Interpreter};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::mos::{mos_finger, MosType};
use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_native(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    c.bench_function("fig06/native_diff_pair", |b| {
        let p = DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2));
        b.iter(|| black_box(diff_pair(&ctx, &p).unwrap()).len())
    });
}

fn bench_dsl(c: &mut Criterion) {
    let tech = workloads::tech();
    c.bench_function("fig06/dsl_diff_pair", |b| {
        let mut i = Interpreter::new(&tech);
        i.load(stdlib::FIG2_CONTACT_ROW).unwrap();
        i.load(stdlib::FIG7_DIFF_PAIR).unwrap();
        b.iter(|| {
            let out = i.run("diff = DiffPair(W = 10, L = 2)\n").unwrap();
            black_box(out["diff"].len())
        })
    });
}

fn bench_single_compaction_step(c: &mut Criterion) {
    // The cost of one successive-compaction step against a grown
    // structure (the paper argues this stays cheap because no global edge
    // graph is kept).
    let tech = workloads::tech();
    let finger = mos_finger(&tech, MosType::P, Some(um(10)), Some(um(2)), "g", "d", true).unwrap();
    let comp = Compactor::new(&tech);
    let diff = tech.layer("pdiff").unwrap();
    let opts = CompactOptions::new().ignoring(diff);
    // Pre-grow the main structure.
    let mut main = LayoutObject::new("main");
    for _ in 0..6 {
        comp.compact(&mut main, &finger, Dir::West, &opts).unwrap();
    }
    c.bench_function("fig06/one_step_against_6_fingers", |b| {
        b.iter(|| {
            let mut m = main.clone();
            black_box(comp.compact(&mut m, &finger, Dir::West, &opts).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_native,
    bench_dsl,
    bench_single_compaction_step
);
criterion_main!(benches);

//! Fig. 1 — the latch-up rule check.
//!
//! Benchmarks the 16-case rectangle subtraction and the full cover check
//! as the number of active areas grows.

use amgen::drc::latchup;
use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_subtraction(c: &mut Criterion) {
    let solid = Rect::new(0, 0, 100_000, 100_000);
    // One cutter per overlap class of the figure.
    let cutters = [
        Rect::new(-10_000, -10_000, 110_000, 110_000), // full/full
        Rect::new(-10_000, -10_000, 40_000, 40_000),   // corner
        Rect::new(30_000, 30_000, 70_000, 70_000),     // middle/middle
        Rect::new(-10_000, 30_000, 110_000, 70_000),   // full/middle band
    ];
    c.bench_function("fig01/rect_subtract_16cases", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for cut in &cutters {
                n += black_box(solid.subtract(cut)).len();
            }
            n
        })
    });
}

fn bench_cover_check(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let mut g = c.benchmark_group("fig01/latchup_check");
    for n in [8usize, 32, 128] {
        let obj = workloads::latchup_workload(&tech, n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &obj, |b, obj| {
            b.iter(|| black_box(latchup::latchup_remainder(&ctx, obj)).is_empty())
        });
    }
    g.finish();
}

fn bench_violation_report(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    // Sparse contacts: the check must produce remainder rectangles.
    let obj = workloads::latchup_workload(&tech, 64, 64);
    c.bench_function("fig01/latchup_violations", |b| {
        b.iter(|| black_box(latchup::check_latchup(&ctx, &obj)).len())
    });
}

criterion_group!(
    benches,
    bench_subtraction,
    bench_cover_check,
    bench_violation_report
);
criterion_main!(benches);

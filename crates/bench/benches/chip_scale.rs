//! Chip-scale geometry gate: the spatial index must keep the geometry
//! core sub-quadratic as layouts grow from module to chip size.
//!
//! Three gated series —
//!
//! * `latchup_n` — the latch-up check on an `n`-stripe workload, timed
//!   both as the pre-index sequential scan and on the spatial index.
//!   At n = 128 the indexed check must be at least 5x faster, and the
//!   fitted log-log growth exponent of the indexed check over
//!   n ∈ {8..128} must stay below 1.5 (the scan is ~quadratic).
//! * `fig_chip` — assembling the chip workload (the full amplifier
//!   replicated 10x plus rails) from a pre-built prototype must take
//!   under 1 ms per assembly; this is the arena-reservation path
//!   (`with_capacity`/`reserve`) end to end.
//! * a one-shot parity audit: indexed DRC and extraction must be
//!   byte-identical to the linear-scan baselines on the chip.
//!
//! Ratios compare paired interleaved rounds and the fastest samples
//! (lo/lo) — on a noisy shared machine the minimum is the reproducible
//! statistic. The bench asserts and exits nonzero on any miss.

use amgen::drc::latchup;
use amgen::prelude::*;
use amgen_bench::workloads;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SAMPLES: usize = 25;
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times the labelled closures interleaved (order rotated per round).
/// Returns per-mode sorted samples and, per mode, the better (smaller)
/// of (a) the minimum over paired per-round ratios against mode 0 and
/// (b) the ratio of global fastest samples.
fn series(name: &str, modes: &[(&str, &dyn Fn())]) -> (Vec<Vec<Duration>>, Vec<f64>) {
    let n = modes.len();
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            modes[0].1();
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let scale = (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).max(2);
        iters = iters.saturating_mul(scale as u64).min(1 << 20);
    }
    let mut samples: Vec<Vec<Duration>> = vec![Vec::new(); n];
    let mut ratios = vec![f64::INFINITY; n];
    for r in 0..SAMPLES {
        let mut round = vec![Duration::ZERO; n];
        for i in 0..n {
            let k = (r + i) % n;
            let t = Instant::now();
            for _ in 0..iters {
                modes[k].1();
            }
            round[k] = t.elapsed() / iters as u32;
            samples[k].push(round[k]);
        }
        let base = round[0].as_nanos().max(1) as f64;
        for k in 1..n {
            ratios[k] = ratios[k].min(round[k].as_nanos() as f64 / base);
        }
    }
    let lo = |k: usize| samples[k].iter().min().unwrap().as_nanos().max(1) as f64;
    for (k, r) in ratios.iter_mut().enumerate().skip(1) {
        *r = r.min(lo(k) / lo(0));
    }
    for (k, (mode, _)) in modes.iter().enumerate() {
        samples[k].sort();
        println!(
            "{:<50} time: [{} {} {}]",
            format!("chip/{name}/{mode}"),
            fmt_dur(samples[k][0]),
            fmt_dur(samples[k][SAMPLES / 2]),
            fmt_dur(samples[k][SAMPLES - 1])
        );
    }
    for k in 1..n {
        let r = ratios[k];
        if r < 1.0 {
            println!(
                "{:<50} {}: {:.1}x faster than {} (min paired)",
                "",
                modes[k].0,
                1.0 / r,
                modes[0].0
            );
        }
    }
    (samples, ratios)
}

/// Least-squares slope of `ln(time)` against `ln(n)` — the empirical
/// growth exponent of a series.
fn fitted_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();

    // ---- latch-up scaling: scan vs indexed over the stripe sweep -----
    let mut indexed_points: Vec<(f64, f64)> = Vec::new();
    let mut speedup_128 = 0.0f64;
    for n in [8usize, 16, 32, 64, 128] {
        let obj = workloads::latchup_workload(&tech, n, 3);
        obj.spatial_index(); // the persistent index is built once
        let scan = || {
            black_box(latchup::latchup_remainder_scan(&ctx, &obj).len());
        };
        let indexed = || {
            black_box(latchup::latchup_remainder(&ctx, &obj).len());
        };
        let (samples, ratios) = series(
            &format!("latchup_{n}"),
            &[("scan", &scan), ("indexed", &indexed)],
        );
        indexed_points.push((n as f64, samples[1][0].as_nanos() as f64));
        if n == 128 {
            speedup_128 = 1.0 / ratios[1];
        }
    }
    let exponent = fitted_exponent(&indexed_points);
    println!(
        "{:<50} fitted exponent over n in 8..128: {exponent:.2}",
        "chip/latchup/indexed"
    );

    // ---- chip assembly: prototype built once, replication measured ---
    let proto = workloads::chip_prototype(&tech);
    let assemble10 = || {
        black_box(workloads::fig_chip(&tech, &proto, 10).len());
    };
    let (samples, _) = series("fig_chip_10x", &[("assemble", &assemble10)]);
    let chip_p50 = samples[0][SAMPLES / 2];

    // ---- parity audit on the assembled chip --------------------------
    let chip = workloads::fig_chip(&tech, &proto, 10);
    assert!(
        latchup::latchup_remainder(&ctx, &chip).rects()
            == latchup::latchup_remainder_scan(&ctx, &chip).rects(),
        "indexed latch-up diverged from the scan on the chip workload"
    );
    let ex = Extractor::new(&ctx);
    assert!(
        ex.connectivity(&chip) == ex.connectivity_scan(&chip),
        "indexed connectivity diverged from the scan on the chip workload"
    );
    println!("chip/parity: latchup + connectivity byte-identical on the 10x chip");

    // ---- gates -------------------------------------------------------
    assert!(
        speedup_128 >= 5.0,
        "indexed latch-up at 128 stripes is only {speedup_128:.1}x faster than the scan (floor 5x)"
    );
    assert!(
        exponent < 1.5,
        "indexed latch-up grows as n^{exponent:.2} over 8..128 (budget n^1.5)"
    );
    assert!(
        chip_p50 < Duration::from_millis(1),
        "fig_chip 10x assembly p50 is {} (budget 1 ms)",
        fmt_dur(chip_p50)
    );
    println!(
        "chip scale smoke: latchup@128 >= 5x ({speedup_128:.1}x), exponent < 1.5 ({exponent:.2}), fig_chip 10x p50 < 1 ms ({})",
        fmt_dur(chip_p50)
    );
}

//! Figs. 8/9 — the full BiCMOS amplifier.
//!
//! Benchmarks the complete flow: module generation for all six blocks,
//! placement, global routing, DRC, latch-up check and extraction — the
//! paper's end-to-end demonstration.

use amgen::amp::build_amplifier;
use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_full_amplifier(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let mut g = c.benchmark_group("fig09");
    g.sample_size(10);
    g.bench_function("amplifier_end_to_end", |b| {
        b.iter(|| {
            let (amp, report) = build_amplifier(&ctx).unwrap();
            black_box((amp.len(), report.width_um, report.height_um))
        })
    });
    g.finish();
}

fn bench_amplifier_gds_export(c: &mut Criterion) {
    let tech = workloads::tech();
    let (amp, _) = build_amplifier(&tech).unwrap();
    c.bench_function("fig09/gds_export", |b| {
        b.iter(|| black_box(write_gds(&tech, &amp)).len())
    });
}

criterion_group!(benches, bench_full_amplifier, bench_amplifier_gds_export);
criterion_main!(benches);

//! Fig. 5 — auto-connected edges and variable-edge optimization.
//!
//! Benchmarks one compaction step with the same-potential merge (5a) and
//! runs the fixed-vs-variable-edges ablation of 5b, reporting the area
//! delta through the measurement harness (`cargo run --bin experiments`).

use amgen::modgen::{contact_row, ContactRowParams};
use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Builds the Fig. 5b scene: a wide vertical contact row with variable
/// (or fixed) east edges, and a metal stripe to compact against it.
fn scene(tech: &Tech, variable: bool) -> (LayoutObject, LayoutObject) {
    let poly = tech.layer("poly").unwrap();
    let mut params = ContactRowParams::new().with_w(um(4)).with_l(um(12));
    if variable {
        params = params.with_variable_edges();
    }
    let row = contact_row(tech, poly, &params).unwrap();
    let m1 = tech.layer("metal1").unwrap();
    let mut probe = LayoutObject::new("probe");
    let sig = probe.net("sig");
    probe.push(Shape::new(m1, Rect::new(0, 0, um(2), um(12))).with_net(sig));
    (row, probe)
}

fn bench_fixed_vs_variable(c: &mut Criterion) {
    let tech = workloads::tech();
    let mut g = c.benchmark_group("fig05/compaction_step");
    for (name, variable) in [("fixed_edges", false), ("variable_edges", true)] {
        let (row, probe) = scene(&tech, variable);
        g.bench_function(name, |b| {
            let comp = Compactor::new(&tech);
            b.iter(|| {
                let mut main = LayoutObject::new("main");
                comp.compact(&mut main, &row, Dir::West, &CompactOptions::new())
                    .unwrap();
                let r = comp
                    .compact(&mut main, &probe, Dir::East, &CompactOptions::new())
                    .unwrap();
                black_box((main.bbox().width(), r.shrunk_edges))
            })
        });
    }
    g.finish();
}

fn bench_autoconnect_merge(c: &mut Criterion) {
    // Fig. 5a: same-potential rectangles merge during compaction.
    let tech = workloads::tech();
    let m1 = tech.layer("metal1").unwrap();
    let mut strip = LayoutObject::new("strip");
    let vdd = strip.net("vdd");
    strip.push(Shape::new(m1, Rect::new(0, 0, um(20), um(2))).with_net(vdd));
    c.bench_function("fig05/same_potential_merge", |b| {
        let comp = Compactor::new(&tech);
        b.iter(|| {
            let mut main = LayoutObject::new("main");
            for _ in 0..8 {
                comp.compact(&mut main, &strip, Dir::North, &CompactOptions::new())
                    .unwrap();
            }
            black_box(main.bbox().height())
        })
    });
}

criterion_group!(benches, bench_fixed_vs_variable, bench_autoconnect_merge);
criterion_main!(benches);

//! Certification-pass throughput: run the full six-pass analysis —
//! symbols, kinds, layers, dead code, constants and cost certification
//! — over the repo's whole DSL corpus (the six embedded stdlib library
//! sources plus every `examples/*.amg` file, certified as one set with
//! the stdlib loaded as a library) and time one complete sweep.
//!
//! Doubles as the CI smoke gate on analysis latency: certifying the
//! 11+ sources must finish in <= 5 ms per sweep (fastest sample,
//! release build) — static certification has to stay cheap enough to
//! run on every `checked_run` admission, or callers will be tempted to
//! skip it. The bench also sanity-checks the output: every corpus
//! source certifies finite and error-free, so a regression that makes
//! the pass trivially refuse everything cannot masquerade as a speedup.

use amgen::dsl::stdlib;
use amgen::lint::{CertifyOptions, CostReport, Diagnostic, Linter};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SAMPLES: usize = 25;

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

const STDLIB: &[(&str, &str)] = &[
    ("stdlib/contact_row", stdlib::FIG2_CONTACT_ROW),
    ("stdlib/diff_pair", stdlib::FIG7_DIFF_PAIR),
    ("stdlib/interdigit", stdlib::INTERDIGIT),
    ("stdlib/stacked", stdlib::STACKED),
    ("stdlib/centroid", stdlib::CENTROID_PLACEMENT),
    ("stdlib/variant_row", stdlib::VARIANT_ROW),
];

/// One full corpus sweep: certify the stdlib sources as a set, then the
/// example files as a set with the stdlib loaded as a library — the
/// same shape `amgen-lint --certify --stdlib examples/*.amg` runs.
fn sweep(examples: &[(String, String)]) -> (Vec<Vec<Diagnostic>>, CostReport) {
    let linter = Linter::new().with_certify(CertifyOptions::default());
    let (mut diags, mut report) = linter.certify_set(STDLIB);

    let mut with_lib = Linter::new().with_certify(CertifyOptions::default());
    for (name, src) in STDLIB {
        with_lib
            .load(src)
            .unwrap_or_else(|e| panic!("{name} failed to load: {e}"));
    }
    let files: Vec<(&str, &str)> = examples
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let (ex_diags, ex_report) = with_lib.certify_set(&files);
    diags.extend(ex_diags);
    report.entities.extend(ex_report.entities);
    report.tops.extend(ex_report.tops);
    (diags, report)
}

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut examples: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("examples/ exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "amg")).then(|| {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                (name, std::fs::read_to_string(&p).unwrap())
            })
        })
        .collect();
    examples.sort();
    let sources = STDLIB.len() + examples.len();
    assert!(
        sources >= 11,
        "corpus shrank to {sources} sources (want >= 11)"
    );

    // Output sanity before timing: the corpus certifies clean and every
    // top-level program carries a closed (numeric) certificate.
    let (diags, report) = sweep(&examples);
    for d in diags.iter().flatten() {
        assert!(!d.is_error(), "corpus no longer certifies clean: {d}");
    }
    let max_variants = amgen::dsl::costmodel::DEFAULT_MAX_VARIANTS;
    for (cert, (name, _)) in report.tops.iter().skip(STDLIB.len()).zip(&examples) {
        let cert = cert
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: no certificate"));
        assert!(
            cert.total_fuel(max_variants).closed().is_some(),
            "{name}: top-level fuel bound is not closed"
        );
    }

    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        black_box(sweep(black_box(&examples)));
        samples.push(t.elapsed());
    }
    samples.sort();
    let (lo, p50, hi) = (samples[0], samples[SAMPLES / 2], samples[SAMPLES - 1]);
    println!(
        "{:<50} time: [{} {} {}]",
        format!("analyze/certify_corpus_{sources}"),
        fmt_dur(lo),
        fmt_dur(p50),
        fmt_dur(hi)
    );
    println!(
        "{:<50} {} entities, {} top-level programs certified per sweep",
        "",
        report.entities.len(),
        report.tops.len()
    );

    // CI smoke: full-corpus certification stays under 5 ms. The fastest
    // sample is the reproducible statistic on a noisy shared machine.
    assert!(
        lo <= Duration::from_millis(5),
        "certifying {sources} sources took {} (budget 5 ms)",
        fmt_dur(lo)
    );
    println!("analyze smoke: {sources}-source certification sweep <= 5 ms");
}

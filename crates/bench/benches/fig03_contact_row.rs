//! Figs. 2/3 — contact-row generation.
//!
//! Benchmarks the three parameter variants of Fig. 3 and the scaling of
//! generation time with row width, both through the native generator and
//! through the layout description language interpreter.

use amgen::dsl::{stdlib, Interpreter};
use amgen::modgen::{contact_row, ContactRowParams};
use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let poly = tech.layer("poly").unwrap();
    let variants: [(&str, ContactRowParams); 3] = [
        ("defaults", ContactRowParams::new()),
        ("w_given", ContactRowParams::new().with_w(um(10))),
        (
            "w_and_l",
            ContactRowParams::new().with_w(um(8)).with_l(um(6)),
        ),
    ];
    let mut g = c.benchmark_group("fig03/native");
    for (name, params) in variants {
        g.bench_function(name, |b| {
            b.iter(|| black_box(contact_row(&ctx, poly, &params).unwrap()).len())
        });
    }
    g.finish();
}

fn bench_width_scaling(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let poly = tech.layer("poly").unwrap();
    let mut g = c.benchmark_group("fig03/width_scaling");
    for w in [um(4), um(16), um(64)] {
        g.bench_with_input(BenchmarkId::from_parameter(w / 1_000), &w, |b, &w| {
            let p = ContactRowParams::new().with_w(w);
            b.iter(|| black_box(contact_row(&ctx, poly, &p).unwrap()).len())
        });
    }
    g.finish();
}

fn bench_dsl_interpreter(c: &mut Criterion) {
    let tech = workloads::tech();
    c.bench_function("fig03/dsl_interpreted", |b| {
        let mut i = Interpreter::new(&tech);
        i.load(stdlib::FIG2_CONTACT_ROW).unwrap();
        b.iter(|| {
            let out = i
                .run("row = ContactRow(layer = \"poly\", W = 10)\n")
                .unwrap();
            black_box(out["row"].len())
        })
    });
}

criterion_group!(
    benches,
    bench_variants,
    bench_width_scaling,
    bench_dsl_interpreter
);
criterion_main!(benches);

//! Rule-kernel microbenchmarks.
//!
//! Measures the cost of the dense [`RuleSet`](amgen::tech::RuleSet)
//! queries that dominate the inner loops of compaction, DRC and routing:
//! a full n×n sweep of pairwise spacing/clearance plus per-layer width,
//! against the same sweep through the `Tech` front-end (name-keyed
//! `HashMap` storage). The kernel compile itself is measured separately
//! so its one-off cost stays visible.

use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_dense_sweep(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let layers: Vec<Layer> = tech.layers().collect();
    c.bench_function("rules/dense_pairwise_sweep", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &a in &layers {
                acc += ctx.min_width(a);
                for &bl in &layers {
                    acc += ctx.min_spacing(a, bl).unwrap_or(0);
                    acc += ctx.clearance(a, bl);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_tech_sweep(c: &mut Criterion) {
    let tech = workloads::tech();
    let layers: Vec<Layer> = tech.layers().collect();
    c.bench_function("rules/tech_pairwise_sweep", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &a in &layers {
                acc += tech.min_width(a);
                for &bl in &layers {
                    acc += tech.min_spacing(a, bl).unwrap_or(0);
                    acc += tech.clearance(a, bl);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let tech = workloads::tech();
    c.bench_function("rules/ruleset_compile", |b| {
        b.iter(|| black_box(tech.compile()).layer_count())
    });
}

criterion_group!(benches, bench_dense_sweep, bench_tech_sweep, bench_compile);
criterion_main!(benches);

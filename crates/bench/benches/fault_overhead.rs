//! Robustness-layer overhead: each figure workload is timed three ways
//! on the same technology —
//!
//! * `plain` — the shipping default: no budget armed, no fault hook. The
//!   checkpoints compiled into the pipeline reduce to a cancellation
//!   load plus one `None` branch.
//! * `budget` — a generous armed [`Budget`]: every statement charges
//!   fuel, every compaction step counts, deadlines are polled.
//! * `hooked` — a never-firing [`FaultPlan`] installed: every probe
//!   takes the slow path and asks the hook (the chaos-harness mode).
//!
//! Doubles as the CI smoke gate: the budget-armed Fig. 6 generator must
//! stay within 2% of plain (and hooked within 5%), or the bench exits
//! nonzero. Ratios compare the **fastest** samples (lo/lo) — on a noisy
//! shared machine the minimum is the reproducible statistic.

use amgen::drc::latchup::check_latchup;
use amgen::faults::FaultPlan;
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::prelude::*;
use amgen_bench::workloads;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SAMPLES: usize = 25;
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A budget generous enough that nothing in a figure workload ever
/// trips it — armed so every charge and checkpoint does its real work.
fn generous_budget() -> Budget {
    Budget::unlimited()
        .with_dsl_fuel(u64::MAX / 2)
        .with_max_recursion(usize::MAX / 2)
        .with_max_compact_steps(u64::MAX / 2)
        .with_max_opt_nodes(u64::MAX / 2)
        .with_wall(Duration::from_secs(3600))
}

/// Runs one workload on a plain, a budget-armed, and a hooked context;
/// returns the (budget/plain, hooked/plain) overhead ratios.
///
/// The three modes are timed **interleaved** — one batch of each per
/// sample round, in an order that rotates every round so no mode
/// systematically benefits from being measured first under a load ramp
/// — and the reported ratio is the better of (a) the minimum over the
/// paired rounds and (b) the ratio of the global fastest samples: a
/// single clean round suffices for an accurate overhead reading, while
/// preemption can only inflate, never deflate, it.
fn series(name: &str, tech: &Tech, run: &dyn Fn(&GenCtx)) -> (f64, f64) {
    let modes: [(&str, GenCtx); 3] = [
        ("plain", GenCtx::from_tech(tech)),
        (
            "budget",
            GenCtx::from_tech(tech).with_budget(generous_budget()),
        ),
        (
            "hooked",
            GenCtx::from_tech(tech).with_faults(FaultPlan::new(0).build().1),
        ),
    ];
    // Size the batch on the plain context.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            run(&modes[0].1);
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let scale = (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).max(2);
        iters = iters.saturating_mul(scale as u64).min(1 << 20);
    }
    let mut samples: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut budget = f64::INFINITY;
    let mut hooked = f64::INFINITY;
    for r in 0..SAMPLES {
        let mut round = [Duration::ZERO; 3];
        for i in 0..3 {
            let k = (r + i) % 3;
            let ctx = &modes[k].1;
            let t = Instant::now();
            for _ in 0..iters {
                run(ctx);
            }
            round[k] = t.elapsed() / iters as u32;
            samples[k].push(round[k]);
        }
        let base = round[0].as_nanos().max(1) as f64;
        budget = budget.min(round[1].as_nanos() as f64 / base);
        hooked = hooked.min(round[2].as_nanos() as f64 / base);
    }
    // Second noise-robust candidate: the ratio of the global fastest
    // samples (each mode's minimum is its least-preempted batch).
    let lo = |k: usize| samples[k].iter().min().unwrap().as_nanos().max(1) as f64;
    budget = budget.min(lo(1) / lo(0));
    hooked = hooked.min(lo(2) / lo(0));
    for (k, (mode, _)) in modes.iter().enumerate() {
        samples[k].sort();
        println!(
            "{:<50} time: [{} {} {}]",
            format!("faults/{name}/{mode}"),
            fmt_dur(samples[k][0]),
            fmt_dur(samples[k][SAMPLES / 2]),
            fmt_dur(samples[k][SAMPLES - 1])
        );
    }
    println!(
        "{:<50} {:+.1}% budget-armed / {:+.1}% hooked overhead (min paired)",
        "",
        (budget - 1.0) * 100.0,
        (hooked - 1.0) * 100.0
    );
    (budget, hooked)
}

fn main() {
    let tech = workloads::tech();
    let latchup = workloads::latchup_workload(&tech, 32, 3);
    let poly = tech.layer("poly").unwrap();

    series("fig01_latchup32", &tech, &|ctx| {
        black_box(check_latchup(ctx, &latchup).len());
    });
    series("fig03_contact_row", &tech, &|ctx| {
        black_box(
            contact_row(ctx, poly, &ContactRowParams::new())
                .unwrap()
                .len(),
        );
    });
    let (fig06_budget, fig06_hooked) = series("fig06_diff_pair", &tech, &|ctx| {
        let p = DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2));
        black_box(diff_pair(ctx, &p).unwrap().len());
    });
    series("fig10_centroid", &tech, &|ctx| {
        let p = CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1));
        black_box(centroid_diff_pair(ctx, &p).unwrap().len());
    });

    // CI smoke: the robustness layer must stay free when disarmed and
    // near-free when armed, on the Fig. 6 path.
    assert!(
        fig06_budget <= 1.02,
        "budget-armed fig06 is {:.1}% over plain (budget 2%)",
        (fig06_budget - 1.0) * 100.0
    );
    assert!(
        fig06_hooked <= 1.05,
        "hooked fig06 is {:.1}% over plain (budget 5%)",
        (fig06_hooked - 1.0) * 100.0
    );
    println!("fault overhead smoke: fig06 within budget (2% armed, 5% hooked)");
}

//! Tracing overhead: each figure workload is timed twice on the same
//! shared `GenCtx` — once with the sink disabled (the shipping default:
//! every probe is one relaxed atomic load) and once recording — and the
//! pair is printed side by side with the measured overhead.
//!
//! Doubles as the CI smoke gate: the traced Fig. 6 generator must stay
//! within 10% of the untraced one, or the bench exits nonzero.
//!
//! Measurement matches the stub-criterion loop (warm-up sizes a ~10 ms
//! batch, then `SAMPLES` batches; median per-iteration time), but is
//! hand-rolled so the two series can be compared programmatically. The
//! recording run drains the sink between samples (off the clock) — the
//! number reported is the cost of *recording*, the exporters run once
//! per process in real use.

use amgen::drc::latchup::check_latchup;
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen::prelude::*;
use amgen_bench::workloads;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SAMPLES: usize = 15;
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

struct Stats {
    lo: Duration,
    median: Duration,
    hi: Duration,
}

/// Times `f` like the stub criterion does; `between_samples` runs with
/// the clock stopped (the traced series drains the sink there).
fn measure<F: FnMut(), G: FnMut()>(mut f: F, mut between_samples: G) -> Stats {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let scale = (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).max(2);
        iters = iters.saturating_mul(scale as u64).min(1 << 20);
    }
    between_samples();
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(t.elapsed() / iters as u32);
        between_samples();
    }
    samples.sort();
    Stats {
        lo: samples[0],
        median: samples[samples.len() / 2],
        hi: samples[samples.len() - 1],
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Runs one workload at each tracing level; returns the
/// coarse-traced/untraced ratio of the **fastest** samples — on a noisy
/// shared machine the minimum is far more reproducible than the median
/// (preemption only ever adds time). The workload receives the context
/// to generate with.
fn series(name: &str, tech: &Tech, run: &dyn Fn(&GenCtx)) -> f64 {
    let mut los = Vec::new();
    for (mode, detail) in [
        ("untraced", Detail::Off),
        ("traced", Detail::Coarse),
        ("traced_fine", Detail::Fine),
    ] {
        let ctx = GenCtx::from_tech(tech).with_tracing_at(detail);
        let s = measure(
            || run(&ctx),
            || {
                black_box(ctx.trace.drain().events.len());
            },
        );
        println!(
            "{:<50} time: [{} {} {}]",
            format!("trace/{name}/{mode}"),
            fmt_dur(s.lo),
            fmt_dur(s.median),
            fmt_dur(s.hi)
        );
        los.push(s.lo.as_nanos().max(1) as f64);
    }
    let ratio = los[1] / los[0];
    println!(
        "{:<50} {:+.1}% coarse / {:+.1}% fine recording overhead",
        "",
        (ratio - 1.0) * 100.0,
        (los[2] / los[0] - 1.0) * 100.0
    );
    ratio
}

/// The opt_order bench's L-shape workload at `k` movable squares.
fn opt_steps(tech: &Tech, k: usize) -> Vec<Step> {
    let poly = tech.layer("poly").unwrap();
    let mut seed = LayoutObject::new("L");
    seed.push(Shape::new(poly, Rect::new(0, 0, um(1), um(8))));
    seed.push(Shape::new(poly, Rect::new(0, 0, um(8), um(1))));
    let mut out = vec![Step::new(seed, Dir::East, CompactOptions::new())];
    for i in 0..k {
        let y0 = (i as i64 % 3) * um(3);
        let mut sq = LayoutObject::new("sq");
        sq.push(Shape::new(poly, Rect::new(0, y0, um(2), y0 + um(2))));
        out.push(Step::new(sq, Dir::East, CompactOptions::new()));
    }
    out
}

fn main() {
    let tech = workloads::tech();
    let latchup = workloads::latchup_workload(&tech, 32, 3);
    let poly = tech.layer("poly").unwrap();

    series("fig01_latchup32", &tech, &|ctx| {
        black_box(check_latchup(ctx, &latchup).len());
    });
    series("fig03_contact_row", &tech, &|ctx| {
        black_box(
            contact_row(ctx, poly, &ContactRowParams::new())
                .unwrap()
                .len(),
        );
    });
    let fig06 = series("fig06_diff_pair", &tech, &|ctx| {
        let p = DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2));
        black_box(diff_pair(ctx, &p).unwrap().len());
    });
    series("fig10_centroid", &tech, &|ctx| {
        let p = CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1));
        black_box(centroid_diff_pair(ctx, &p).unwrap().len());
    });
    let steps = opt_steps(&tech, 4);
    series("opt_order_k4", &tech, &|ctx| {
        let opt = Optimizer::new(ctx, RatingWeights::default());
        let r = opt
            .optimize_order(&steps, SearchOptions::default())
            .unwrap();
        black_box((r.rating.score, r.explored));
    });

    // CI smoke: recording must stay cheap on the Fig. 6 path.
    assert!(
        fig06 <= 1.10,
        "traced fig06 is {:.1}% over untraced (budget 10%)",
        (fig06 - 1.0) * 100.0
    );
    println!("trace overhead smoke: fig06 within 10% budget");
}

//! Tracing overhead: each figure workload is timed twice on the same
//! shared `GenCtx` — once with the sink disabled (the shipping default:
//! every probe is one relaxed atomic load) and once recording — and the
//! pair is printed side by side with the measured overhead.
//!
//! Doubles as the CI smoke gate: the traced Fig. 6 generator must stay
//! within 10% of the untraced one, or the bench exits nonzero.
//!
//! Measurement matches the stub-criterion loop (warm-up sizes a ~10 ms
//! batch, then `SAMPLES` batches; median per-iteration time), but is
//! hand-rolled so the two series can be compared programmatically. The
//! recording run drains the sink between samples (off the clock) — the
//! number reported is the cost of *recording*, the exporters run once
//! per process in real use.
//!
//! The three tracing levels are timed **interleaved** — one batch of
//! each per sample round, in an order that rotates every round — so a
//! load ramp on a noisy shared machine hits all modes alike instead of
//! systematically penalizing whichever series runs last. The smoke
//! ratio is the better of (a) the minimum over the paired rounds and
//! (b) the ratio of the global fastest samples: one clean round
//! suffices, and preemption can only inflate an overhead reading,
//! never deflate it. (The old back-to-back measurement made this gate
//! the flakiest in CI.)

use amgen::drc::latchup::check_latchup;
use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::opt::{Optimizer, RatingWeights, SearchOptions, Step};
use amgen::prelude::*;
use amgen_bench::workloads;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SAMPLES: usize = 15;
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Runs one workload at each tracing level, interleaved in rotating
/// order, and returns the coarse-traced/untraced overhead ratio (the
/// better of min-paired-round and global-fastest — see the module
/// docs). The workload receives the context to generate with.
fn series(name: &str, tech: &Tech, run: &dyn Fn(&GenCtx)) -> f64 {
    let modes: [(&str, GenCtx); 3] = [
        (
            "untraced",
            GenCtx::from_tech(tech).with_tracing_at(Detail::Off),
        ),
        (
            "traced",
            GenCtx::from_tech(tech).with_tracing_at(Detail::Coarse),
        ),
        (
            "traced_fine",
            GenCtx::from_tech(tech).with_tracing_at(Detail::Fine),
        ),
    ];
    // Size the batch on the untraced context.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            run(&modes[0].1);
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let scale = (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).max(2);
        iters = iters.saturating_mul(scale as u64).min(1 << 20);
    }
    let mut samples: [Vec<Duration>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut coarse = f64::INFINITY;
    let mut fine = f64::INFINITY;
    for r in 0..SAMPLES {
        let mut round = [Duration::ZERO; 3];
        for i in 0..3 {
            let k = (r + i) % 3;
            let ctx = &modes[k].1;
            let t = Instant::now();
            for _ in 0..iters {
                run(ctx);
            }
            round[k] = t.elapsed() / iters as u32;
            samples[k].push(round[k]);
            // Drain the sink off the clock: the number reported is the
            // cost of *recording*, exporters run once per process.
            black_box(ctx.trace.drain().events.len());
        }
        let base = round[0].as_nanos().max(1) as f64;
        coarse = coarse.min(round[1].as_nanos() as f64 / base);
        fine = fine.min(round[2].as_nanos() as f64 / base);
    }
    // Second noise-robust candidate: the ratio of the global fastest
    // samples (each mode's minimum is its least-preempted batch).
    let lo = |k: usize| samples[k].iter().min().unwrap().as_nanos().max(1) as f64;
    coarse = coarse.min(lo(1) / lo(0));
    fine = fine.min(lo(2) / lo(0));
    for (k, (mode, _)) in modes.iter().enumerate() {
        samples[k].sort();
        println!(
            "{:<50} time: [{} {} {}]",
            format!("trace/{name}/{mode}"),
            fmt_dur(samples[k][0]),
            fmt_dur(samples[k][SAMPLES / 2]),
            fmt_dur(samples[k][SAMPLES - 1])
        );
    }
    println!(
        "{:<50} {:+.1}% coarse / {:+.1}% fine recording overhead (min paired)",
        "",
        (coarse - 1.0) * 100.0,
        (fine - 1.0) * 100.0
    );
    coarse
}

/// The opt_order bench's L-shape workload at `k` movable squares.
fn opt_steps(tech: &Tech, k: usize) -> Vec<Step> {
    let poly = tech.layer("poly").unwrap();
    let mut seed = LayoutObject::new("L");
    seed.push(Shape::new(poly, Rect::new(0, 0, um(1), um(8))));
    seed.push(Shape::new(poly, Rect::new(0, 0, um(8), um(1))));
    let mut out = vec![Step::new(seed, Dir::East, CompactOptions::new())];
    for i in 0..k {
        let y0 = (i as i64 % 3) * um(3);
        let mut sq = LayoutObject::new("sq");
        sq.push(Shape::new(poly, Rect::new(0, y0, um(2), y0 + um(2))));
        out.push(Step::new(sq, Dir::East, CompactOptions::new()));
    }
    out
}

fn main() {
    let tech = workloads::tech();
    let latchup = workloads::latchup_workload(&tech, 32, 3);
    let poly = tech.layer("poly").unwrap();

    series("fig01_latchup32", &tech, &|ctx| {
        black_box(check_latchup(ctx, &latchup).len());
    });
    series("fig03_contact_row", &tech, &|ctx| {
        black_box(
            contact_row(ctx, poly, &ContactRowParams::new())
                .unwrap()
                .len(),
        );
    });
    let fig06 = series("fig06_diff_pair", &tech, &|ctx| {
        let p = DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2));
        black_box(diff_pair(ctx, &p).unwrap().len());
    });
    series("fig10_centroid", &tech, &|ctx| {
        let p = CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1));
        black_box(centroid_diff_pair(ctx, &p).unwrap().len());
    });
    let steps = opt_steps(&tech, 4);
    series("opt_order_k4", &tech, &|ctx| {
        let opt = Optimizer::new(ctx, RatingWeights::default());
        let r = opt
            .optimize_order(&steps, SearchOptions::default())
            .unwrap();
        black_box((r.rating.score, r.explored));
    });

    // CI smoke: recording must stay cheap on the Fig. 6 path.
    assert!(
        fig06 <= 1.10,
        "traced fig06 is {:.1}% over untraced (budget 10%)",
        (fig06 - 1.0) * 100.0
    );
    println!("trace overhead smoke: fig06 within 10% budget");
}

//! Generation-cache overhead and speedup: each workload is timed three
//! ways on the same technology —
//!
//! * `plain` — the shipping default: no cache installed; every lookup
//!   site reduces to one `None` branch.
//! * `miss` — a cache installed but cleared before every build: the
//!   full miss path (key canonicalization, sharded lookup, result clone
//!   and insert) on every call. Hierarchical generators partially
//!   offset that cost by reusing repeated children *within* the build.
//! * `hit` — a pre-warmed cache: the whole module is served from
//!   memory (one lookup plus a clone of the stored result).
//!
//! Doubles as the CI smoke gate on the Fig. 6 path: the miss path must
//! stay within 2% of plain and a hit must be at least 10x faster — or
//! the bench exits nonzero. A warm `optimize_order` must likewise be
//! served at least 10x faster than the cold search. Ratios compare
//! paired interleaved rounds and the fastest samples (lo/lo) — on a
//! noisy shared machine the minimum is the reproducible statistic.

use amgen::modgen::centroid::{centroid_diff_pair, CentroidParams};
use amgen::modgen::diffpair::{diff_pair, DiffPairParams};
use amgen::modgen::{contact_row, ContactRowParams, MosType};
use amgen::prelude::*;
use amgen_bench::workloads;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SAMPLES: usize = 25;
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times the labelled closures interleaved — one batch of each per
/// sample round, rotating the order every round so no mode benefits
/// from going first under a load ramp — and returns, per mode, the
/// better (smaller) of (a) the minimum over paired per-round ratios
/// against mode 0 and (b) the ratio of global fastest samples.
/// Preemption can inflate either statistic but never deflate it.
fn series(name: &str, modes: &[(&str, &dyn Fn())]) -> Vec<f64> {
    let n = modes.len();
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            modes[0].1();
        }
        let elapsed = t.elapsed();
        if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let scale = (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).max(2);
        iters = iters.saturating_mul(scale as u64).min(1 << 20);
    }
    let mut samples: Vec<Vec<Duration>> = vec![Vec::new(); n];
    let mut ratios = vec![f64::INFINITY; n];
    for r in 0..SAMPLES {
        let mut round = vec![Duration::ZERO; n];
        for i in 0..n {
            let k = (r + i) % n;
            let t = Instant::now();
            for _ in 0..iters {
                modes[k].1();
            }
            round[k] = t.elapsed() / iters as u32;
            samples[k].push(round[k]);
        }
        let base = round[0].as_nanos().max(1) as f64;
        for k in 1..n {
            ratios[k] = ratios[k].min(round[k].as_nanos() as f64 / base);
        }
    }
    let lo = |k: usize| samples[k].iter().min().unwrap().as_nanos().max(1) as f64;
    for (k, r) in ratios.iter_mut().enumerate().skip(1) {
        *r = r.min(lo(k) / lo(0));
    }
    for (k, (mode, _)) in modes.iter().enumerate() {
        samples[k].sort();
        println!(
            "{:<50} time: [{} {} {}]",
            format!("cache/{name}/{mode}"),
            fmt_dur(samples[k][0]),
            fmt_dur(samples[k][SAMPLES / 2]),
            fmt_dur(samples[k][SAMPLES - 1])
        );
    }
    for k in 1..n {
        let r = ratios[k];
        if r < 1.0 {
            println!(
                "{:<50} {}: {:.1}x faster than {} (min paired)",
                "",
                modes[k].0,
                1.0 / r,
                modes[0].0
            );
        } else {
            println!(
                "{:<50} {}: {:+.1}% over {} (min paired)",
                "",
                modes[k].0,
                (r - 1.0) * 100.0,
                modes[0].0
            );
        }
    }
    ratios
}

/// Runs one generator workload in plain / miss / hit modes; returns
/// `(miss_ratio, hit_ratio)` relative to plain.
fn gen_series(name: &str, tech: &Tech, run: &dyn Fn(&GenCtx)) -> (f64, f64) {
    let plain_ctx = GenCtx::from_tech(tech);
    let cache = Arc::new(GenCache::new());
    let miss_ctx = GenCtx::from_tech(tech).with_cache(Arc::clone(&cache));
    let hit_ctx = GenCtx::from_tech(tech).with_default_cache();
    run(&hit_ctx); // warm
    let plain = || run(&plain_ctx);
    let miss = || {
        cache.clear();
        run(&miss_ctx)
    };
    let hit = || run(&hit_ctx);
    let r = series(name, &[("plain", &plain), ("miss", &miss), ("hit", &hit)]);
    (r[1], r[2])
}

fn main() {
    let tech = workloads::tech();
    let poly = tech.layer("poly").unwrap();

    gen_series("fig03_contact_row", &tech, &|ctx| {
        black_box(
            contact_row(ctx, poly, &ContactRowParams::new())
                .unwrap()
                .len(),
        );
    });
    let (fig06_miss, fig06_hit) = gen_series("fig06_diff_pair", &tech, &|ctx| {
        let p = DiffPairParams::new(MosType::P).with_w(um(10)).with_l(um(2));
        black_box(diff_pair(ctx, &p).unwrap().len());
    });
    gen_series("fig10_centroid", &tech, &|ctx| {
        let p = CentroidParams::paper(MosType::N)
            .with_w(um(6))
            .with_l(um(1));
        black_box(centroid_diff_pair(ctx, &p).unwrap().len());
    });

    // The precomputed-variant table: a warm optimize_order against the
    // cold branch-and-bound search on an order-sensitive workload.
    let seed = {
        let mut o = LayoutObject::new("L");
        o.push(Shape::new(poly, Rect::new(0, 0, um(1), um(8))));
        o.push(Shape::new(poly, Rect::new(0, 0, um(8), um(1))));
        o
    };
    let square = |w: i64| {
        let mut o = LayoutObject::new("sq");
        o.push(Shape::new(poly, Rect::new(0, 0, w, um(2))));
        o
    };
    let steps = vec![
        Step::new(seed, Dir::East, CompactOptions::new()),
        Step::new(square(um(2)), Dir::East, CompactOptions::new()),
        Step::new(square(um(3)), Dir::North, CompactOptions::new()),
        Step::new(square(um(2)), Dir::North, CompactOptions::new()),
        Step::new(square(um(1)), Dir::East, CompactOptions::new()),
    ];
    let cold_cache = Arc::new(GenCache::new());
    let cold_opt = Optimizer::new(
        GenCtx::from_tech(&tech).with_cache(Arc::clone(&cold_cache)),
        RatingWeights::default(),
    );
    let warm_opt = Optimizer::new(
        GenCtx::from_tech(&tech).with_default_cache(),
        RatingWeights::default(),
    );
    warm_opt
        .optimize_order(&steps, SearchOptions::default())
        .unwrap();
    let search = || {
        cold_cache.clear();
        let r = cold_opt
            .optimize_order(&steps, SearchOptions::default())
            .unwrap();
        assert!(!r.cached);
        black_box(r.rating.score);
    };
    let warm = || {
        let r = warm_opt
            .optimize_order(&steps, SearchOptions::default())
            .unwrap();
        assert!(r.cached);
        black_box(r.rating.score);
    };
    let r = series("optimize_order", &[("search", &search), ("warm", &warm)]);
    let opt_warm = r[1];

    // CI smoke: the cache must be near-free when it cannot help and
    // decisively fast when it can.
    assert!(
        fig06_miss <= 1.02,
        "fig06 miss path is {:.1}% over plain (budget 2%)",
        (fig06_miss - 1.0) * 100.0
    );
    assert!(
        fig06_hit <= 0.1,
        "fig06 hit is only {:.1}x faster than plain (floor 10x)",
        1.0 / fig06_hit
    );
    assert!(
        opt_warm <= 0.1,
        "warm optimize_order is only {:.1}x faster than the search (floor 10x)",
        1.0 / opt_warm
    );
    println!("cache overhead smoke: miss <= +2%, hit >= 10x, warm optimize_order >= 10x");
}

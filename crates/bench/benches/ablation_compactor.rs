//! §2.3 ablation — successive compaction vs. a general pairwise-graph
//! compactor.
//!
//! The paper argues for its approach: *"the compaction is done
//! successively by involving only one new object in each step. Thus, only
//! outer edges of the main object have to be kept in the data structure
//! and no general edge graph must be created. This speeds up the
//! compaction time."* This bench implements the strawman — a compactor
//! that, at every step, rebuilds the full pairwise constraint graph over
//! **all** placed objects and re-solves the 1-D positions — and compares
//! build time for the same row-of-modules workload.

use amgen::prelude::*;
use amgen_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A simple module to chain: a poly/metal block pair.
fn unit(tech: &GenCtx, i: usize) -> LayoutObject {
    let poly = tech.layer("poly").unwrap();
    let m1 = tech.layer("metal1").unwrap();
    let mut o = LayoutObject::new("unit");
    let h = um(4 + (i % 3) as i64 * 2);
    o.push(Shape::new(poly, Rect::new(0, 0, um(2), h)));
    o.push(Shape::new(m1, Rect::new(0, h + um(2), um(2), h + um(4))));
    o
}

/// The paper's method: one successive step per object.
fn successive(tech: &GenCtx, n: usize) -> i64 {
    let comp = Compactor::new(tech);
    let mut main = LayoutObject::new("main");
    for i in 0..n {
        comp.compact(&mut main, &unit(tech, i), Dir::East, &CompactOptions::new())
            .unwrap();
    }
    main.bbox().width()
}

/// The strawman: keep every object separate; at each step rebuild the
/// full pairwise constraint graph (every placed object vs every other)
/// and solve all x positions from scratch with a longest-path sweep.
fn full_graph(tech: &GenCtx, n: usize) -> i64 {
    let poly = tech.layer("poly").unwrap();
    let m1 = tech.layer("metal1").unwrap();
    let objs: Vec<LayoutObject> = (0..n).map(|i| unit(tech, i)).collect();
    let mut xs = vec![0i64; 0];
    for k in 0..n {
        xs.push(0);
        // Rebuild ALL pairwise constraints among objects 0..=k and
        // re-solve: x[j] >= x[i] + w(i) + gap(i, j) for i < j.
        for j in 0..=k {
            let mut x = 0i64;
            for i in 0..j {
                for a in objs[i].shapes() {
                    for b in objs[j].shapes() {
                        let gap = if a.layer == b.layer {
                            tech.min_spacing(a.layer, b.layer).unwrap_or(0)
                        } else if (a.layer == poly && b.layer == m1)
                            || (a.layer == m1 && b.layer == poly)
                        {
                            continue;
                        } else {
                            tech.clearance(a.layer, b.layer)
                        };
                        if a.rect.y_range().inflated(gap).overlaps(&b.rect.y_range()) {
                            x = x.max(xs[i] + a.rect.x1 + gap - b.rect.x0);
                        }
                    }
                }
            }
            xs[j] = x;
        }
    }
    let last = n - 1;
    xs[last] + objs[last].bbox().x1
}

fn bench_ablation(c: &mut Criterion) {
    let tech = workloads::tech();
    let ctx = (&tech).into_gen_ctx();
    let mut g = c.benchmark_group("ablation/compactor");
    for n in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("successive", n), &n, |b, &n| {
            b.iter(|| black_box(successive(&ctx, n)))
        });
        g.bench_with_input(BenchmarkId::new("full_graph", n), &n, |b, &n| {
            b.iter(|| black_box(full_graph(&ctx, n)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Shapes: one rectangle on one layer, with edge properties and potential.

use amgen_geom::{Dir, Rect, Vector};
use amgen_tech::Layer;

/// A potential (net) local to a [`crate::LayoutObject`].
///
/// Net ids are indices into the owning object's net-name table; when two
/// objects are merged, nets are re-mapped **by name** so that a `"g"` net
/// in both halves becomes one potential.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-edge mobility flags.
///
/// A **variable** edge may be moved inward by the compactor when it is the
/// binding constraint — the paper's Fig. 5b, where the metal edges of a
/// contact row shrink so that neighbouring geometry can be placed closer.
/// Edges default to **fixed**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EdgeFlags(u8);

impl EdgeFlags {
    /// All edges fixed.
    pub const FIXED: EdgeFlags = EdgeFlags(0);

    /// All edges variable.
    pub const ALL_VARIABLE: EdgeFlags = EdgeFlags(0b1111);

    fn bit(dir: Dir) -> u8 {
        match dir {
            Dir::North => 1,
            Dir::South => 2,
            Dir::East => 4,
            Dir::West => 8,
        }
    }

    /// Returns flags with the edge facing `dir` marked variable.
    #[must_use]
    pub fn with_variable(self, dir: Dir) -> EdgeFlags {
        EdgeFlags(self.0 | Self::bit(dir))
    }

    /// Returns flags with the edge facing `dir` marked fixed.
    #[must_use]
    pub fn with_fixed(self, dir: Dir) -> EdgeFlags {
        EdgeFlags(self.0 & !Self::bit(dir))
    }

    /// True if the edge facing `dir` is variable.
    pub fn is_variable(self, dir: Dir) -> bool {
        self.0 & Self::bit(dir) != 0
    }

    /// Flags after mirroring about a vertical axis (swaps East/West).
    #[must_use]
    pub fn mirrored_x(self) -> EdgeFlags {
        let mut out = EdgeFlags(self.0 & (Self::bit(Dir::North) | Self::bit(Dir::South)));
        if self.is_variable(Dir::East) {
            out = out.with_variable(Dir::West);
        }
        if self.is_variable(Dir::West) {
            out = out.with_variable(Dir::East);
        }
        out
    }

    /// Flags after mirroring about a horizontal axis (swaps North/South).
    #[must_use]
    pub fn mirrored_y(self) -> EdgeFlags {
        let mut out = EdgeFlags(self.0 & (Self::bit(Dir::East) | Self::bit(Dir::West)));
        if self.is_variable(Dir::North) {
            out = out.with_variable(Dir::South);
        }
        if self.is_variable(Dir::South) {
            out = out.with_variable(Dir::North);
        }
        out
    }
}

/// Semantic role of a shape, consumed by rule checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShapeRole {
    /// Plain geometry.
    #[default]
    Normal,
    /// MOS active area (LOCOS) that the latch-up rule must see covered.
    DeviceActive,
    /// A substrate / well contact that provides latch-up coverage.
    SubstrateContact,
}

/// One rectangle on one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Geometry.
    pub rect: Rect,
    /// Mask layer.
    pub layer: Layer,
    /// Potential, if assigned.
    pub net: Option<NetId>,
    /// Edge mobility.
    pub edges: EdgeFlags,
    /// Semantic role (latch-up bookkeeping).
    pub role: ShapeRole,
    /// When set, the compactor must not let other shapes overlap this one
    /// even where the rules would allow a zero spacing — the paper's
    /// parasitic-capacitance avoidance property.
    pub keepout: bool,
}

impl Shape {
    /// Creates a fixed, un-netted shape.
    pub fn new(layer: Layer, rect: Rect) -> Shape {
        Shape {
            rect,
            layer,
            net: None,
            edges: EdgeFlags::FIXED,
            role: ShapeRole::Normal,
            keepout: false,
        }
    }

    /// Assigns a potential.
    #[must_use]
    pub fn with_net(mut self, net: NetId) -> Shape {
        self.net = Some(net);
        self
    }

    /// Sets the edge flags.
    #[must_use]
    pub fn with_edges(mut self, edges: EdgeFlags) -> Shape {
        self.edges = edges;
        self
    }

    /// Sets the role.
    #[must_use]
    pub fn with_role(mut self, role: ShapeRole) -> Shape {
        self.role = role;
        self
    }

    /// Marks the shape as overlap-protected.
    #[must_use]
    pub fn with_keepout(mut self) -> Shape {
        self.keepout = true;
        self
    }

    /// Translates the shape.
    #[must_use]
    pub fn translated(mut self, v: Vector) -> Shape {
        self.rect = self.rect.translated(v);
        self
    }

    /// Mirrors about the vertical line `x = axis_x` (edge flags follow).
    #[must_use]
    pub fn mirrored_x(mut self, axis_x: i64) -> Shape {
        self.rect = Rect::new(
            2 * axis_x - self.rect.x1,
            self.rect.y0,
            2 * axis_x - self.rect.x0,
            self.rect.y1,
        );
        self.edges = self.edges.mirrored_x();
        self
    }

    /// Mirrors about the horizontal line `y = axis_y` (edge flags follow).
    #[must_use]
    pub fn mirrored_y(mut self, axis_y: i64) -> Shape {
        self.rect = Rect::new(
            self.rect.x0,
            2 * axis_y - self.rect.y1,
            self.rect.x1,
            2 * axis_y - self.rect.y0,
        );
        self.edges = self.edges.mirrored_y();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_tech::Tech;

    fn layer() -> Layer {
        // A fresh tech per test is fine; handles are only compared within
        // one test.
        Tech::bicmos_1u().layer("poly").unwrap()
    }

    #[test]
    fn edge_flags_set_and_query() {
        let f = EdgeFlags::FIXED
            .with_variable(Dir::North)
            .with_variable(Dir::West);
        assert!(f.is_variable(Dir::North));
        assert!(f.is_variable(Dir::West));
        assert!(!f.is_variable(Dir::South));
        assert!(!f.is_variable(Dir::East));
        let f = f.with_fixed(Dir::North);
        assert!(!f.is_variable(Dir::North));
    }

    #[test]
    fn all_variable_covers_every_direction() {
        for d in Dir::ALL {
            assert!(EdgeFlags::ALL_VARIABLE.is_variable(d));
            assert!(!EdgeFlags::FIXED.is_variable(d));
        }
    }

    #[test]
    fn mirror_swaps_the_right_pair() {
        let f = EdgeFlags::FIXED.with_variable(Dir::East);
        assert!(f.mirrored_x().is_variable(Dir::West));
        assert!(!f.mirrored_x().is_variable(Dir::East));
        assert!(f.mirrored_y().is_variable(Dir::East), "y-mirror keeps E/W");
        let g = EdgeFlags::FIXED.with_variable(Dir::North);
        assert!(g.mirrored_y().is_variable(Dir::South));
        assert!(g.mirrored_x().is_variable(Dir::North));
    }

    #[test]
    fn mirror_is_involution() {
        for bits in 0..16u8 {
            let f = {
                let mut f = EdgeFlags::FIXED;
                for (i, d) in Dir::ALL.iter().enumerate() {
                    if bits & (1 << i) != 0 {
                        f = f.with_variable(*d);
                    }
                }
                f
            };
            assert_eq!(f.mirrored_x().mirrored_x(), f);
            assert_eq!(f.mirrored_y().mirrored_y(), f);
        }
    }

    #[test]
    fn shape_builders() {
        let l = layer();
        let s = Shape::new(l, Rect::new(0, 0, 10, 20))
            .with_net(NetId(3))
            .with_role(ShapeRole::DeviceActive)
            .with_keepout();
        assert_eq!(s.net, Some(NetId(3)));
        assert_eq!(s.role, ShapeRole::DeviceActive);
        assert!(s.keepout);
    }

    #[test]
    fn shape_mirror_x_flips_geometry_and_flags() {
        let l = layer();
        let s = Shape::new(l, Rect::new(2, 0, 6, 4))
            .with_edges(EdgeFlags::FIXED.with_variable(Dir::East));
        let m = s.mirrored_x(0);
        assert_eq!(m.rect, Rect::new(-6, 0, -2, 4));
        assert!(m.edges.is_variable(Dir::West));
        assert_eq!(m.mirrored_x(0).rect, s.rect);
    }

    #[test]
    fn shape_mirror_y_flips_geometry_and_flags() {
        let l = layer();
        let s = Shape::new(l, Rect::new(0, 2, 4, 6))
            .with_edges(EdgeFlags::FIXED.with_variable(Dir::North));
        let m = s.mirrored_y(0);
        assert_eq!(m.rect, Rect::new(0, -6, 4, -2));
        assert!(m.edges.is_variable(Dir::South));
    }

    #[test]
    fn shape_translation() {
        let l = layer();
        let s = Shape::new(l, Rect::new(0, 0, 4, 4)).translated(Vector::new(10, -2));
        assert_eq!(s.rect, Rect::new(10, -2, 14, 2));
    }
}

//! The spatial index over a layout object's shapes.
//!
//! [`SpatialIndex`] answers the window queries that DRC, extraction and
//! the latch-up check used to answer by scanning the flat shape vector:
//! *which shapes on layer L come near this window?* It wraps one packed
//! [`RectTree`] per populated layer plus one per semantic
//! [`ShapeRole`] (the latch-up check is role-driven,
//! not layer-driven), and caches the whole-object and per-layer bounding
//! boxes as a side effect of the build.
//!
//! # Lifecycle and invalidation
//!
//! The index is **derived state**: [`LayoutObject::spatial_index`]
//! builds it lazily on first use, and every geometry mutation
//! (`push`, `shapes_mut`, `remove_shapes`, `translate`, `absorb`, the
//! mirror copies) drops it. It never participates in equality,
//! signatures or serialization — holding a warm or cold index is not an
//! observable difference.
//!
//! # Determinism contract
//!
//! `query_*` methods return shape indices **sorted ascending** — the
//! exact order a linear scan of the shape vector visits them — so every
//! consumer rewritten onto the index reproduces its scan-based output
//! byte for byte, preserving the content-addressed cache and signature
//! determinism established for generation caching. The closure-visitor
//! methods run in tree order instead (deterministic for a given shape
//! vector, but unspecified); they are only for order-insensitive
//! predicates.
//!
//! # Candidate semantics
//!
//! Queries use the [`RectTree`] candidate test: closed-interval
//! comparison of raw corner coordinates, which covers strict overlap,
//! edge/corner abutment and degenerate rectangles. Callers re-apply
//! their exact predicate; the index guarantees only that no qualifying
//! shape is missed.
//!
//! [`LayoutObject::spatial_index`]: crate::LayoutObject::spatial_index

use std::collections::BTreeMap;

use amgen_geom::{Coord, Rect, RectTree};
use amgen_tech::Layer;

use crate::shape::{Shape, ShapeRole};

/// Per-layer and per-role window-query index over one object's shapes.
///
/// Obtained from [`LayoutObject::spatial_index`]; see the module docs
/// for the lifecycle, determinism and candidate-semantics contracts.
///
/// [`LayoutObject::spatial_index`]: crate::LayoutObject::spatial_index
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    layers: BTreeMap<Layer, RectTree>,
    /// Bounding boxes per layer with [`Rect::union_bbox`] semantics
    /// (empty shape rects are ignored), matching a `bbox_on` scan.
    layer_bounds: BTreeMap<Layer, Rect>,
    active: RectTree,
    substrate: RectTree,
    /// Whole-object bounding box, `union_bbox` semantics.
    bbox: Rect,
}

impl SpatialIndex {
    /// Builds the index for a shape vector. Pure function of the input:
    /// identical shapes produce identical trees and query results.
    pub(crate) fn build(shapes: &[Shape]) -> SpatialIndex {
        let mut per_layer: BTreeMap<Layer, Vec<(Rect, u32)>> = BTreeMap::new();
        let mut layer_bounds: BTreeMap<Layer, Rect> = BTreeMap::new();
        let mut active = Vec::new();
        let mut substrate = Vec::new();
        let mut bbox = Rect::EMPTY;
        for (i, s) in shapes.iter().enumerate() {
            per_layer
                .entry(s.layer)
                .or_default()
                .push((s.rect, i as u32));
            let lb = layer_bounds.entry(s.layer).or_insert(Rect::EMPTY);
            *lb = lb.union_bbox(&s.rect);
            bbox = bbox.union_bbox(&s.rect);
            match s.role {
                ShapeRole::Normal => {}
                ShapeRole::DeviceActive => active.push((s.rect, i as u32)),
                ShapeRole::SubstrateContact => substrate.push((s.rect, i as u32)),
            }
        }
        SpatialIndex {
            layers: per_layer
                .into_iter()
                .map(|(l, v)| (l, RectTree::build(v)))
                .collect(),
            layer_bounds,
            active: RectTree::build(active),
            substrate: RectTree::build(substrate),
            bbox,
        }
    }

    /// The tree over one layer's shapes, if the layer is populated.
    /// Payloads are indices into the owning object's shape vector.
    pub fn layer(&self, layer: Layer) -> Option<&RectTree> {
        self.layers.get(&layer)
    }

    /// The tree over one role's shapes ([`ShapeRole::Normal`] is not
    /// indexed by role — use the layer trees).
    pub fn role(&self, role: ShapeRole) -> Option<&RectTree> {
        match role {
            ShapeRole::Normal => None,
            ShapeRole::DeviceActive => Some(&self.active),
            ShapeRole::SubstrateContact => Some(&self.substrate),
        }
    }

    /// Shape indices on `layer` overlapping or abutting `window`
    /// (candidate test), sorted ascending — linear-scan order.
    pub fn query_overlapping(&self, layer: Layer, window: &Rect) -> Vec<usize> {
        let mut out = Vec::new();
        self.query_overlapping_into(layer, window, &mut out);
        out.iter().map(|&i| i as usize).collect()
    }

    /// [`query_overlapping`](Self::query_overlapping) into a reusable
    /// buffer (cleared first) — the hot-loop form.
    pub fn query_overlapping_into(&self, layer: Layer, window: &Rect, out: &mut Vec<u32>) {
        match self.layers.get(&layer) {
            Some(t) => t.query_into(window, out),
            None => out.clear(),
        }
    }

    /// All shape-index pairs `(i, j)`, `i < j`, on `layer` whose rects
    /// come within `dist` of each other (closed-interval test on the
    /// inflated rect), in lexicographic order. `dist = 0` yields the
    /// touching-or-overlapping candidate pairs.
    pub fn query_pairs_within(&self, layer: Layer, dist: Coord) -> Vec<(usize, usize)> {
        self.layers.get(&layer).map_or_else(Vec::new, |t| {
            t.pairs_within(dist)
                .into_iter()
                .map(|(a, b)| (a as usize, b as usize))
                .collect()
        })
    }

    /// Bounding box over every shape (`union_bbox` semantics, matching
    /// a full scan).
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Bounding box over one layer's shapes ([`Rect::EMPTY`] when the
    /// layer is unpopulated), matching a `bbox_on` scan.
    pub fn bounds_on(&self, layer: Layer) -> Rect {
        self.layer_bounds
            .get(&layer)
            .copied()
            .unwrap_or(Rect::EMPTY)
    }

    /// The populated layers, ascending.
    pub fn populated_layers(&self) -> impl Iterator<Item = Layer> + '_ {
        self.layers.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayoutObject, Shape};
    use amgen_tech::Tech;

    #[test]
    fn queries_match_linear_scan_order() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        for i in 0..40 {
            let x = (i as i64 % 7) * 10;
            let y = (i as i64 / 7) * 10;
            let l = if i % 3 == 0 { m1 } else { poly };
            obj.push(Shape::new(l, Rect::new(x, y, x + 8, y + 8)));
        }
        let ix = obj.spatial_index();
        let w = Rect::new(5, 5, 35, 35);
        let scan: Vec<usize> = obj
            .shapes()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.layer == poly && (s.rect.overlaps(&w) || s.rect.abuts(&w)))
            .map(|(i, _)| i)
            .collect();
        let queried: Vec<usize> = ix
            .query_overlapping(poly, &w)
            .into_iter()
            .filter(|&i| {
                let r = obj.shapes()[i].rect;
                r.overlaps(&w) || r.abuts(&w)
            })
            .collect();
        assert_eq!(queried, scan, "sorted query order must equal scan order");
        assert_eq!(
            ix.bounds_on(m1),
            obj.shapes_on(m1)
                .fold(Rect::EMPTY, |a, s| a.union_bbox(&s.rect))
        );
        assert!(ix.layer(t.layer("metal2").unwrap()).is_none());
    }

    #[test]
    fn role_trees_cover_latchup_shapes() {
        let t = Tech::bicmos_1u();
        let pdiff = t.layer("pdiff").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(pdiff, Rect::new(0, 0, 10, 10)).with_role(ShapeRole::DeviceActive));
        obj.push(Shape::new(pdiff, Rect::new(20, 0, 24, 4)).with_role(ShapeRole::SubstrateContact));
        obj.push(Shape::new(pdiff, Rect::new(40, 0, 50, 10)));
        let ix = obj.spatial_index();
        assert_eq!(ix.role(ShapeRole::DeviceActive).unwrap().len(), 1);
        assert_eq!(ix.role(ShapeRole::SubstrateContact).unwrap().len(), 1);
        assert!(ix.role(ShapeRole::Normal).is_none());
        assert_eq!(
            ix.query_pairs_within(pdiff, 10),
            vec![(0, 1)],
            "gaps of 10 qualify under the closed test, gaps of 16 and 30 do not"
        );
    }
}

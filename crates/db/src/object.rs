//! Layout objects: the unit the successive compactor abuts.

use amgen_geom::{Rect, Vector};
use amgen_tech::Layer;

use crate::shape::{NetId, Shape};
use crate::spatial::SpatialIndex;

/// A named connection point used by the routing routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name (e.g. `"g1"`, `"out"`).
    pub name: String,
    /// Layer the port geometry lives on.
    pub layer: Layer,
    /// Port geometry.
    pub rect: Rect,
    /// Potential, if assigned.
    pub net: Option<NetId>,
}

/// Identifies a [`Group`] within its object.
///
/// Groups are positional and never removed, so ids are stable indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub(crate) u32);

impl GroupId {
    /// The group's position in [`LayoutObject::groups`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a position in [`LayoutObject::groups`].
    pub fn from_index(i: usize) -> GroupId {
        GroupId(i as u32)
    }
}

/// How a group's generated geometry is re-derived after the compactor has
/// moved one of its variable edges (the paper's Fig. 5b: *"the contact row
/// was rebuilt and the array of contact-rectangles was recalculated"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildKind {
    /// The group's shapes on the given cut layer are a generated array:
    /// delete them and re-place the maximal equidistant array inside the
    /// remaining (conductor) shapes of the group.
    ContactArray {
        /// The cut layer whose array is regenerated.
        cut: Layer,
    },
}

/// A named set of shapes that the compactor rebuilds as a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Group name (diagnostic).
    pub name: String,
    /// Indices into the owning object's shape list.
    pub shapes: Vec<usize>,
    /// Rebuild rule, if the group is regenerated geometry.
    pub rebuild: Option<RebuildKind>,
}

/// A named, flat collection of shapes with ports, groups and a local net
/// table.
///
/// Hierarchy in the paper is *constructive*: `trans2 = trans1` copies a
/// data structure, and `compact(...)` folds an object's shapes into the
/// growing main object. Accordingly [`LayoutObject`] supports cloning,
/// transformation and [`absorb`](LayoutObject::absorb); it does not keep
/// references to children.
#[derive(Debug, Clone, Default)]
pub struct LayoutObject {
    name: String,
    shapes: Vec<Shape>,
    nets: Vec<String>,
    ports: Vec<Port>,
    groups: Vec<Group>,
    /// Lazily computed bounding box. Invalidated by every geometry
    /// mutation; [`absorb`](LayoutObject::absorb) updates it in place so
    /// the successive compactor never rescans the whole grown structure.
    bbox: std::sync::OnceLock<Rect>,
    /// Lazily built spatial index (see [`SpatialIndex`]). Derived state
    /// like `bbox`: dropped by every geometry mutation, rebuilt on the
    /// next [`spatial_index`](LayoutObject::spatial_index) call, and
    /// invisible to equality. Boxed so an unbuilt index costs one
    /// pointer — `LayoutObject` moves by value through the DSL
    /// interpreter's `Value` enum.
    index: std::sync::OnceLock<Box<SpatialIndex>>,
}

/// Equality is over the logical content; whether the bounding box
/// happens to be cached is not observable.
impl PartialEq for LayoutObject {
    fn eq(&self, other: &LayoutObject) -> bool {
        self.name == other.name
            && self.shapes == other.shapes
            && self.nets == other.nets
            && self.ports == other.ports
            && self.groups == other.groups
    }
}

impl LayoutObject {
    /// Creates an empty object.
    pub fn new(name: impl Into<String>) -> LayoutObject {
        LayoutObject {
            name: name.into(),
            ..LayoutObject::default()
        }
    }

    /// Creates an empty object with room for `shapes` shapes — the
    /// arena-style constructor for replicated assembly (a chip-scale
    /// build that [`absorb`](LayoutObject::absorb)s hundreds of blocks
    /// should not regrow its shape vector a dozen times).
    pub fn with_capacity(name: impl Into<String>, shapes: usize) -> LayoutObject {
        let mut obj = LayoutObject::new(name);
        obj.shapes.reserve(shapes);
        obj
    }

    /// Reserves room for at least `additional` more shapes.
    pub fn reserve(&mut self, additional: usize) {
        self.shapes.reserve(additional);
    }

    /// Spare shape capacity already allocated (diagnostic; lets bench
    /// code verify that reservation avoided reallocation churn).
    pub fn shape_capacity(&self) -> usize {
        self.shapes.capacity()
    }

    /// The spatial index over the current shapes, built on first use.
    ///
    /// Derived state: any geometry mutation drops it and the next call
    /// rebuilds it from scratch. Queries return shape indices in
    /// linear-scan (ascending) order — see [`SpatialIndex`] for the
    /// determinism and candidate-semantics contracts.
    pub fn spatial_index(&self) -> &SpatialIndex {
        self.index
            .get_or_init(|| Box::new(SpatialIndex::build(&self.shapes)))
    }

    /// The object's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the object.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns the id of the named net, creating it if needed.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(i) = self.nets.iter().position(|n| n == name) {
            NetId(i as u32)
        } else {
            self.nets.push(name.to_string());
            NetId((self.nets.len() - 1) as u32)
        }
    }

    /// Looks up a net by name without creating it.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// The name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.index()]
    }

    /// All net names.
    pub fn net_names(&self) -> &[String] {
        &self.nets
    }

    /// Adds a shape, returning its index.
    pub fn push(&mut self, s: Shape) -> usize {
        if let Some(bb) = self.bbox.get() {
            let bb = bb.union_bbox(&s.rect);
            self.bbox = bb.into();
        }
        self.index.take();
        self.shapes.push(s);
        self.shapes.len() - 1
    }

    /// All shapes.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Mutable access to all shapes. Drops the cached bounding box and
    /// the spatial index — the caller may move any edge.
    pub fn shapes_mut(&mut self) -> &mut [Shape] {
        self.bbox.take();
        self.index.take();
        &mut self.shapes
    }

    /// Shapes on one layer.
    pub fn shapes_on(&self, layer: Layer) -> impl Iterator<Item = &Shape> + '_ {
        self.shapes.iter().filter(move |s| s.layer == layer)
    }

    /// True if the object has no shapes.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Number of shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Bounding box over all shapes. Cached: the first call scans (or
    /// reads the spatial index's cached bound when one is built), later
    /// calls are a load until the geometry is next mutated.
    pub fn bbox(&self) -> Rect {
        *self.bbox.get_or_init(|| match self.index.get() {
            Some(ix) => ix.bbox(),
            None => self
                .shapes
                .iter()
                .fold(Rect::EMPTY, |acc, s| acc.union_bbox(&s.rect)),
        })
    }

    /// Bounding box over one layer. Served from the spatial index's
    /// cached per-layer bounds when the index is built; a linear scan
    /// otherwise.
    pub fn bbox_on(&self, layer: Layer) -> Rect {
        match self.index.get() {
            Some(ix) => ix.bounds_on(layer),
            None => self
                .shapes_on(layer)
                .fold(Rect::EMPTY, |acc, s| acc.union_bbox(&s.rect)),
        }
    }

    /// Adds a port.
    pub fn push_port(&mut self, port: Port) {
        self.ports.push(port);
    }

    /// The first port with the given name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// The most recently added port with the given name — module
    /// generators push their top-level bus ports last, so this resolves a
    /// name to the module-level terminal even when absorbed sub-objects
    /// carried ports of the same name.
    pub fn last_port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().rev().find(|p| p.name == name)
    }

    /// All ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Adds a group over existing shape indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn add_group(
        &mut self,
        name: impl Into<String>,
        shapes: Vec<usize>,
        rebuild: Option<RebuildKind>,
    ) -> GroupId {
        for &i in &shapes {
            assert!(i < self.shapes.len(), "group index {i} out of range");
        }
        self.groups.push(Group {
            name: name.into(),
            shapes,
            rebuild,
        });
        GroupId((self.groups.len() - 1) as u32)
    }

    /// All groups.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// One group.
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0 as usize]
    }

    /// Removes the shapes at the given indices, remapping group indices.
    ///
    /// Groups that referenced a removed shape simply lose that member.
    pub fn remove_shapes(&mut self, indices: &[usize]) {
        if indices.is_empty() {
            return;
        }
        let mut removed = vec![false; self.shapes.len()];
        for &i in indices {
            removed[i] = true;
        }
        // Build old-index → new-index map.
        let mut remap = vec![usize::MAX; self.shapes.len()];
        let mut next = 0usize;
        for (i, &r) in removed.iter().enumerate() {
            if !r {
                remap[i] = next;
                next += 1;
            }
        }
        self.bbox.take();
        self.index.take();
        let mut keep = Vec::with_capacity(next);
        for (i, s) in self.shapes.drain(..).enumerate() {
            if !removed[i] {
                keep.push(s);
            }
        }
        self.shapes = keep;
        for g in &mut self.groups {
            g.shapes.retain(|&i| !removed[i]);
            for i in &mut g.shapes {
                *i = remap[*i];
            }
        }
    }

    /// Appends new shapes to a group.
    pub fn extend_group(&mut self, id: GroupId, new_shapes: Vec<usize>) {
        for &i in &new_shapes {
            assert!(i < self.shapes.len(), "group index {i} out of range");
        }
        self.groups[id.0 as usize].shapes.extend(new_shapes);
    }

    /// Translates all geometry (shapes and ports).
    pub fn translate(&mut self, v: Vector) {
        self.bbox.take();
        self.index.take();
        for s in &mut self.shapes {
            *s = s.translated(v);
        }
        for p in &mut self.ports {
            p.rect = p.rect.translated(v);
        }
    }

    /// Returns a mirrored copy about the vertical line `x = axis_x`.
    ///
    /// Edge mobility flags follow the mirror (an East-variable edge
    /// becomes West-variable), as do port rectangles.
    #[must_use]
    pub fn mirrored_x(&self, axis_x: i64) -> LayoutObject {
        let mut out = self.clone();
        out.bbox.take();
        out.index.take();
        for s in &mut out.shapes {
            *s = s.mirrored_x(axis_x);
        }
        for p in &mut out.ports {
            p.rect = Rect::new(
                2 * axis_x - p.rect.x1,
                p.rect.y0,
                2 * axis_x - p.rect.x0,
                p.rect.y1,
            );
        }
        out
    }

    /// Returns a mirrored copy about the horizontal line `y = axis_y`.
    #[must_use]
    pub fn mirrored_y(&self, axis_y: i64) -> LayoutObject {
        let mut out = self.clone();
        out.bbox.take();
        out.index.take();
        for s in &mut out.shapes {
            *s = s.mirrored_y(axis_y);
        }
        for p in &mut out.ports {
            p.rect = Rect::new(
                p.rect.x0,
                2 * axis_y - p.rect.y1,
                p.rect.x1,
                2 * axis_y - p.rect.y0,
            );
        }
        out
    }

    /// Returns a copy with every net (and port) name prefixed —
    /// used when assembling blocks so internal nets of different modules
    /// cannot collide by name.
    #[must_use]
    pub fn prefixed(&self, prefix: &str) -> LayoutObject {
        let mut out = self.clone();
        for n in &mut out.nets {
            *n = format!("{prefix}{n}");
        }
        for p in &mut out.ports {
            p.name = format!("{prefix}{}", p.name);
        }
        out
    }

    /// Renames a net. If the new name already exists, the two nets are
    /// merged (all shapes and ports move to the existing id). Port
    /// *names* are left untouched — they are addresses, not potentials.
    pub fn rename_net(&mut self, old: &str, new: &str) {
        let Some(old_id) = self.find_net(old) else {
            return;
        };
        if let Some(new_id) = self.find_net(new) {
            if new_id == old_id {
                return;
            }
            for s in &mut self.shapes {
                if s.net == Some(old_id) {
                    s.net = Some(new_id);
                }
            }
            for p in &mut self.ports {
                if p.net == Some(old_id) {
                    p.net = Some(new_id);
                }
            }
            // The old slot keeps its (now unused) name; blank it so the
            // name cannot be found again.
            self.nets[old_id.index()] = format!("<renamed:{old}>");
        } else {
            self.nets[old_id.index()] = new.to_string();
        }
    }

    /// Renames a net *and* any port named `old` — the serve path of
    /// cache α-renaming, where a canonical placeholder label stands for
    /// both the potential and the port address. Net merging semantics
    /// are those of [`rename_net`](LayoutObject::rename_net).
    pub fn rename_label(&mut self, old: &str, new: &str) {
        self.rename_net(old, new);
        for p in &mut self.ports {
            if p.name == old {
                p.name = new.to_string();
            }
        }
    }

    /// Folds `other` (translated by `v`) into this object.
    ///
    /// Nets are re-mapped **by name**: a net called `"g"` in both objects
    /// becomes one potential. Ports and groups are carried over (group
    /// indices shifted). Returns the index offset at which `other`'s
    /// shapes were appended.
    pub fn absorb(&mut self, other: &LayoutObject, v: Vector) -> usize {
        // Incremental cache update: the union's bounding box is the
        // union of the two bounding boxes, no rescan needed.
        if let Some(bb) = self.bbox.take() {
            if other.shapes.is_empty() {
                self.bbox = bb.into();
            } else {
                self.bbox = bb.union_bbox(&other.bbox().translated(v)).into();
            }
        }
        self.index.take();
        let offset = self.shapes.len();
        self.shapes.reserve(other.shapes.len());
        self.ports.reserve(other.ports.len());
        self.groups.reserve(other.groups.len());
        // Net remap by name.
        let remap: Vec<NetId> = other.nets.iter().map(|n| self.net(n)).collect();
        for s in &other.shapes {
            let mut s = s.translated(v);
            s.net = s.net.map(|old| remap[old.index()]);
            self.shapes.push(s);
        }
        for p in &other.ports {
            self.ports.push(Port {
                name: p.name.clone(),
                layer: p.layer,
                rect: p.rect.translated(v),
                net: p.net.map(|old| remap[old.index()]),
            });
        }
        for g in &other.groups {
            self.groups.push(Group {
                name: g.name.clone(),
                shapes: g.shapes.iter().map(|&i| i + offset).collect(),
                rebuild: g.rebuild,
            });
        }
        offset
    }
}

impl std::fmt::Display for LayoutObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} shapes, bbox {})",
            self.name,
            self.shapes.len(),
            self.bbox()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::EdgeFlags;
    use amgen_geom::Dir;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn nets_are_deduplicated_by_name() {
        let mut obj = LayoutObject::new("x");
        let a = obj.net("g");
        let b = obj.net("d");
        let a2 = obj.net("g");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(obj.net_name(a), "g");
        assert_eq!(obj.find_net("d"), Some(b));
        assert_eq!(obj.find_net("nope"), None);
    }

    #[test]
    fn rename_label_covers_net_and_port() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let id = obj.net("\u{1}a");
        let mut s = Shape::new(m1, Rect::new(0, 0, 10, 10));
        s.net = Some(id);
        obj.push(s);
        obj.push_port(Port {
            name: "\u{1}a".into(),
            layer: m1,
            rect: Rect::new(0, 0, 10, 10),
            net: Some(id),
        });
        obj.rename_label("\u{1}a", "d1");
        assert_eq!(obj.net_name(id), "d1");
        assert!(obj.port("d1").is_some());
        assert!(obj.port("\u{1}a").is_none());
    }

    #[test]
    fn bbox_over_layers() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));
        obj.push(Shape::new(m1, Rect::new(20, 0, 40, 5)));
        assert_eq!(obj.bbox(), Rect::new(0, 0, 40, 10));
        assert_eq!(obj.bbox_on(poly), Rect::new(0, 0, 10, 10));
        assert_eq!(obj.bbox_on(m1), Rect::new(20, 0, 40, 5));
        assert!(obj.bbox_on(t.layer("metal2").unwrap()).is_empty());
    }

    #[test]
    fn bbox_cache_tracks_every_mutation() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let scan = |o: &LayoutObject| {
            o.shapes()
                .iter()
                .fold(Rect::EMPTY, |acc, s| acc.union_bbox(&s.rect))
        };
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));
        assert_eq!(obj.bbox(), scan(&obj));
        // push after a cached read extends the cache.
        obj.push(Shape::new(poly, Rect::new(20, -5, 30, 5)));
        assert_eq!(obj.bbox(), scan(&obj));
        // Mutating an edge through shapes_mut invalidates.
        obj.shapes_mut()[1].rect = Rect::new(20, -5, 50, 5);
        assert_eq!(obj.bbox(), scan(&obj));
        // translate invalidates.
        obj.translate(Vector::new(7, 3));
        assert_eq!(obj.bbox(), scan(&obj));
        // absorb updates incrementally (cache was warm).
        let mut other = LayoutObject::new("y");
        other.push(Shape::new(poly, Rect::new(0, 0, 100, 2)));
        obj.absorb(&other, Vector::new(-200, 0));
        assert_eq!(obj.bbox(), scan(&obj));
        // remove_shapes invalidates.
        obj.remove_shapes(&[2]);
        assert_eq!(obj.bbox(), scan(&obj));
        // Mirrors recompute on the copy.
        assert_eq!(obj.mirrored_x(3).bbox(), scan(&obj.mirrored_x(3)));
        assert_eq!(obj.mirrored_y(-1).bbox(), scan(&obj.mirrored_y(-1)));
        // Cache state is invisible to equality.
        let warm = obj.clone();
        warm.bbox();
        let mut cold = obj.clone();
        cold.shapes_mut();
        assert_eq!(warm, cold);
    }

    /// Mutate-after-query must never serve stale index results: every
    /// geometry mutation drops the lazily built spatial index, exactly
    /// like the bbox cache. Guards the invalidation list against new
    /// mutators forgetting the index.
    #[test]
    fn spatial_index_tracks_every_mutation() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let everywhere = Rect::new(-1_000_000, -1_000_000, 1_000_000, 1_000_000);
        let check = |o: &LayoutObject| {
            let got = o.spatial_index().query_overlapping(poly, &everywhere);
            let scan: Vec<usize> = o
                .shapes()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.layer == poly)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, scan, "index out of sync with shape vector");
            assert_eq!(
                o.bbox_on(poly),
                o.shapes_on(poly)
                    .fold(Rect::EMPTY, |acc, s| acc.union_bbox(&s.rect)),
                "bbox_on fast path out of sync"
            );
        };
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));
        check(&obj);
        // push after a query invalidates.
        obj.push(Shape::new(poly, Rect::new(20, -5, 30, 5)));
        check(&obj);
        // Moving an edge through shapes_mut invalidates.
        obj.spatial_index();
        obj.shapes_mut()[1].rect = Rect::new(20, -5, 50, 5);
        check(&obj);
        // translate invalidates.
        obj.spatial_index();
        obj.translate(Vector::new(7, 3));
        check(&obj);
        // absorb invalidates.
        obj.spatial_index();
        let mut other = LayoutObject::new("y");
        other.push(Shape::new(poly, Rect::new(0, 0, 100, 2)));
        obj.absorb(&other, Vector::new(-200, 0));
        check(&obj);
        // remove_shapes invalidates.
        obj.spatial_index();
        obj.remove_shapes(&[0]);
        check(&obj);
        // Mirror copies rebuild on the copy.
        obj.spatial_index();
        check(&obj.mirrored_x(3));
        check(&obj.mirrored_y(-1));
        // Index state is invisible to equality.
        let warm = obj.clone();
        warm.spatial_index();
        let mut cold = obj.clone();
        cold.shapes_mut();
        assert_eq!(warm, cold);
    }

    #[test]
    fn with_capacity_reserves_and_absorb_extends() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::with_capacity("chip", 64);
        assert!(obj.shape_capacity() >= 64);
        let base = obj.shape_capacity();
        let mut blk = LayoutObject::new("b");
        for i in 0..8 {
            blk.push(Shape::new(poly, Rect::new(i * 4, 0, i * 4 + 2, 2)));
        }
        for r in 0..8 {
            obj.absorb(&blk, Vector::new(0, r * 10));
        }
        assert_eq!(obj.len(), 64);
        assert_eq!(
            obj.shape_capacity(),
            base,
            "no reallocation within the reservation"
        );
        obj.reserve(100);
        assert!(obj.shape_capacity() >= 164);
    }

    #[test]
    fn absorb_remaps_nets_by_name() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let mut a = LayoutObject::new("a");
        let ga = a.net("g");
        a.push(Shape::new(poly, Rect::new(0, 0, 10, 10)).with_net(ga));

        let mut b = LayoutObject::new("b");
        let xb = b.net("x"); // different first net: ids diverge
        let gb = b.net("g");
        b.push(Shape::new(poly, Rect::new(0, 0, 5, 5)).with_net(gb));
        b.push(Shape::new(poly, Rect::new(7, 7, 9, 9)).with_net(xb));

        let off = a.absorb(&b, Vector::new(100, 0));
        assert_eq!(off, 1);
        // The absorbed "g" shape shares a's "g" potential.
        assert_eq!(a.shapes()[1].net, Some(ga));
        // "x" got a fresh id in a.
        let xa = a.find_net("x").unwrap();
        assert_eq!(a.shapes()[2].net, Some(xa));
        assert_ne!(xa, ga);
        // Geometry was translated.
        assert_eq!(a.shapes()[1].rect, Rect::new(100, 0, 105, 5));
    }

    #[test]
    fn absorb_shifts_group_indices() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let ct = t.layer("contact").unwrap();
        let mut a = LayoutObject::new("a");
        a.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));

        let mut b = LayoutObject::new("b");
        let i0 = b.push(Shape::new(poly, Rect::new(0, 0, 4, 4)));
        let i1 = b.push(Shape::new(ct, Rect::new(1, 1, 2, 2)));
        b.add_group(
            "row",
            vec![i0, i1],
            Some(RebuildKind::ContactArray { cut: ct }),
        );

        a.absorb(&b, Vector::ZERO);
        assert_eq!(a.groups().len(), 1);
        assert_eq!(a.groups()[0].shapes, vec![1, 2]);
    }

    #[test]
    fn remove_shapes_remaps_groups() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        let i0 = obj.push(Shape::new(poly, Rect::new(0, 0, 1, 1)));
        let i1 = obj.push(Shape::new(poly, Rect::new(2, 0, 3, 1)));
        let i2 = obj.push(Shape::new(poly, Rect::new(4, 0, 5, 1)));
        obj.add_group("g", vec![i0, i1, i2], None);
        obj.remove_shapes(&[i1]);
        assert_eq!(obj.len(), 2);
        assert_eq!(obj.groups()[0].shapes, vec![0, 1]);
        assert_eq!(obj.shapes()[1].rect, Rect::new(4, 0, 5, 1));
    }

    #[test]
    fn mirror_x_flips_ports_and_edge_flags() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(
            Shape::new(m1, Rect::new(0, 0, 10, 4))
                .with_edges(EdgeFlags::FIXED.with_variable(Dir::East)),
        );
        obj.push_port(Port {
            name: "p".into(),
            layer: m1,
            rect: Rect::new(8, 0, 10, 4),
            net: None,
        });
        let m = obj.mirrored_x(0);
        assert_eq!(m.shapes()[0].rect, Rect::new(-10, 0, 0, 4));
        assert!(m.shapes()[0].edges.is_variable(Dir::West));
        assert_eq!(m.port("p").unwrap().rect, Rect::new(-10, 0, -8, 4));
        // Double mirror restores the original geometry.
        let mm = m.mirrored_x(0);
        assert_eq!(mm.shapes()[0].rect, obj.shapes()[0].rect);
    }

    #[test]
    fn translate_moves_everything() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(m1, Rect::new(0, 0, 10, 4)));
        obj.push_port(Port {
            name: "p".into(),
            layer: m1,
            rect: Rect::new(0, 0, 2, 2),
            net: None,
        });
        obj.translate(Vector::new(5, 7));
        assert_eq!(obj.bbox(), Rect::new(5, 7, 15, 11));
        assert_eq!(obj.port("p").unwrap().rect, Rect::new(5, 7, 7, 9));
    }

    #[test]
    fn prefixed_renames_nets_and_ports() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("blk");
        let s = obj.net("s");
        obj.push(Shape::new(m1, Rect::new(0, 0, 10, 10)).with_net(s));
        obj.push_port(Port {
            name: "s".into(),
            layer: m1,
            rect: Rect::new(0, 0, 10, 10),
            net: Some(s),
        });
        let p = obj.prefixed("b:");
        assert!(p.find_net("b:s").is_some());
        assert!(p.find_net("s").is_none());
        assert!(p.port("b:s").is_some());
    }

    #[test]
    fn rename_net_simple() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let s = obj.net("s");
        obj.push(Shape::new(m1, Rect::new(0, 0, 10, 10)).with_net(s));
        obj.rename_net("s", "vdd");
        assert!(obj.find_net("vdd").is_some());
        assert!(obj.find_net("s").is_none());
        assert_eq!(obj.net_name(obj.shapes()[0].net.unwrap()), "vdd");
    }

    #[test]
    fn rename_net_merges_into_existing() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let a = obj.net("a");
        let b = obj.net("b");
        obj.push(Shape::new(m1, Rect::new(0, 0, 10, 10)).with_net(a));
        obj.push(Shape::new(m1, Rect::new(20, 0, 30, 10)).with_net(b));
        obj.rename_net("a", "b");
        assert_eq!(obj.shapes()[0].net, obj.shapes()[1].net);
        assert!(obj.find_net("a").is_none());
    }

    #[test]
    fn rename_missing_net_is_a_noop() {
        let mut obj = LayoutObject::new("x");
        obj.rename_net("ghost", "real");
        assert!(obj.find_net("real").is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_with_bad_index_panics() {
        let mut obj = LayoutObject::new("x");
        obj.add_group("bad", vec![0], None);
    }
}

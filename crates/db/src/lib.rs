//! Layout database for the analog module generator environment.
//!
//! The data model follows the paper closely:
//!
//! * The database is **rectangle-only** — every [`Shape`] is one rectangle
//!   on one layer.
//! * *"Each geometry contains special properties that define if its edges
//!   are fixed or variable for moving inwards or outwards"* — captured by
//!   [`EdgeFlags`] on every shape; the compactor may move variable edges
//!   to densify the layout (Fig. 5b).
//! * Shapes carry an optional **potential** ([`NetId`]): *"edges on the
//!   same potential are not considered during compaction, because they can
//!   be merged"* — the auto-connect feature of Fig. 5a.
//! * A *"special property for every rectangle can avoid undesired overlaps
//!   (parasitic capacitances)"* — [`Shape::keepout`].
//! * [`LayoutObject`] is the unit the compactor abuts: a named bag of
//!   shapes plus named [`Port`]s for wiring, [`Group`]s that remember how
//!   to **rebuild** generated sub-structures (the recalculated contact
//!   array of Fig. 5b), and a local net table.
//!
//! # Example
//!
//! ```
//! use amgen_db::{LayoutObject, Shape};
//! use amgen_geom::Rect;
//! use amgen_tech::Tech;
//!
//! let tech = Tech::bicmos_1u();
//! let poly = tech.layer("poly").unwrap();
//! let mut obj = LayoutObject::new("gate");
//! let net = obj.net("g");
//! obj.push(Shape::new(poly, Rect::new(0, 0, 1_000, 5_000)).with_net(net));
//! assert_eq!(obj.bbox().width(), 1_000);
//! ```

pub mod object;
pub mod shape;
pub mod signature;
pub mod spatial;

pub use object::{Group, GroupId, LayoutObject, Port, RebuildKind};
pub use shape::{EdgeFlags, NetId, Shape, ShapeRole};
pub use signature::LayoutSignature;
pub use spatial::SpatialIndex;

//! Order-insensitive layout signatures.
//!
//! The order optimizer's subset-dominance memoization needs to decide in
//! O(1) whether two partial layouts are geometrically identical: two
//! different compaction orders of the **same subset of objects** often
//! land every shape at the same coordinates, and the whole subtree under
//! the second arrival is redundant. [`LayoutSignature`] summarises a
//! layout as its bounding box, shape count and a **commutative** hash of
//! the shapes, so the summary is independent of the order in which the
//! shapes were inserted (and of net-id numbering, which also varies with
//! insertion order — nets are hashed by *name*).

use amgen_geom::Rect;

use crate::object::LayoutObject;
use crate::shape::{Shape, ShapeRole};

/// A cheap, order-insensitive geometric summary of a [`LayoutObject`].
///
/// Two objects with equal signatures have the same bounding box, the same
/// number of shapes and (up to the negligible collision probability of a
/// 64-bit multiset hash) the same multiset of shapes — layer, geometry,
/// net *name*, edge flags, role and keepout all included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayoutSignature {
    /// Bounding box over all shapes.
    pub bbox: Rect,
    /// Number of shapes.
    pub shapes: usize,
    /// Commutative multiset hash over the shapes.
    pub hash: u64,
}

/// SplitMix64 finalizer: mixes one word into an avalanche.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a; stable across runs (unlike `DefaultHasher` seeding).
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl LayoutObject {
    /// Hashes one shape in a way that is stable across shape order and
    /// net-id numbering (the net is hashed by name, not id).
    pub fn shape_hash(&self, s: &Shape) -> u64 {
        let mut h = mix(s.rect.x0 as u64 ^ mix(s.rect.y0 as u64));
        h = mix(h ^ s.rect.x1 as u64 ^ mix(s.rect.y1 as u64));
        h = mix(h ^ ((s.layer.index() as u64) << 8));
        if let Some(net) = s.net {
            h = mix(h ^ hash_str(self.net_name(net)));
        }
        let role = match s.role {
            ShapeRole::Normal => 0u64,
            ShapeRole::DeviceActive => 1,
            ShapeRole::SubstrateContact => 2,
        };
        // EdgeFlags has no public accessor for the raw bits; fold the four
        // directions explicitly.
        let mut flag_bits = 0u64;
        for (i, d) in amgen_geom::Dir::ALL.iter().enumerate() {
            if s.edges.is_variable(*d) {
                flag_bits |= 1 << i;
            }
        }
        mix(h ^ (role << 5) ^ (flag_bits << 1) ^ (s.keepout as u64))
    }

    /// Computes the object's [`LayoutSignature`] in one pass over the
    /// shapes.
    ///
    /// The shape hashes are combined with wrapping addition, so the result
    /// does not depend on the order of the shape list — exactly what the
    /// optimizer's dominance table needs when different compaction orders
    /// produce the same geometry.
    ///
    /// Wrapping **addition** (never XOR) is load-bearing: under XOR two
    /// identical shapes would cancel to `0` and an object holding a
    /// duplicated shape would collide with the object missing both
    /// copies. Addition makes each extra copy shift the sum, and the
    /// `shapes` count field backstops the remaining `k·2⁶⁴` wraparound
    /// cases, so a duplicated shape always changes the signature. The
    /// generation cache keys on this hash — a silent collision here
    /// would become a wrong-layout cache hit there.
    pub fn signature(&self) -> LayoutSignature {
        let mut hash = 0u64;
        let mut bbox = Rect::EMPTY;
        for s in self.shapes() {
            hash = hash.wrapping_add(self.shape_hash(s));
            bbox = bbox.union_bbox(&s.rect);
        }
        LayoutSignature {
            bbox,
            shapes: self.len(),
            hash,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;
    use amgen_geom::Rect;
    use amgen_tech::Tech;

    #[test]
    fn signature_is_order_insensitive() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let mut a = LayoutObject::new("a");
        a.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));
        a.push(Shape::new(m1, Rect::new(20, 0, 30, 10)));
        let mut b = LayoutObject::new("b");
        b.push(Shape::new(m1, Rect::new(20, 0, 30, 10)));
        b.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signature_is_net_numbering_insensitive() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut a = LayoutObject::new("a");
        let a_vdd = a.net("vdd");
        let _ = a.net("gnd");
        a.push(Shape::new(m1, Rect::new(0, 0, 10, 10)).with_net(a_vdd));
        let mut b = LayoutObject::new("b");
        let _ = b.net("gnd");
        let b_vdd = b.net("vdd");
        b.push(Shape::new(m1, Rect::new(0, 0, 10, 10)).with_net(b_vdd));
        assert_ne!(a_vdd, b_vdd);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signature_distinguishes_geometry_and_properties() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let base = {
            let mut o = LayoutObject::new("o");
            o.push(Shape::new(poly, Rect::new(0, 0, 10, 10)));
            o.signature()
        };
        let moved = {
            let mut o = LayoutObject::new("o");
            o.push(Shape::new(poly, Rect::new(1, 0, 11, 10)));
            o.signature()
        };
        let other_layer = {
            let mut o = LayoutObject::new("o");
            o.push(Shape::new(m1, Rect::new(0, 0, 10, 10)));
            o.signature()
        };
        let keepout = {
            let mut o = LayoutObject::new("o");
            o.push(Shape::new(poly, Rect::new(0, 0, 10, 10)).with_keepout());
            o.signature()
        };
        assert_ne!(base, moved);
        assert_ne!(base.hash, other_layer.hash);
        assert_ne!(base.hash, keepout.hash);
    }

    /// Regression for the classic multiset-hash pitfall: combining by
    /// XOR lets two identical shapes cancel to 0, colliding with the
    /// empty object (and 1 copy collide with 3 copies). Additive
    /// combination must keep every multiplicity distinct — at the raw
    /// `hash` level, not just via the shape count.
    #[test]
    fn duplicated_shapes_change_the_signature() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let shape = Shape::new(poly, Rect::new(0, 0, 10, 10));
        let copies = |n: usize| {
            let mut o = LayoutObject::new("o");
            for _ in 0..n {
                o.push(shape);
            }
            o.signature()
        };
        let (zero, one, two, three) = (copies(0), copies(1), copies(2), copies(3));
        // XOR would have given two.hash == 0 == zero.hash and
        // three.hash == one.hash; addition keeps them all apart.
        assert_ne!(two.hash, zero.hash);
        assert_ne!(two.hash, 0);
        assert_ne!(three.hash, one.hash);
        assert_ne!(one.hash, two.hash);
        // And the count field guards even a hypothetical hash wrap.
        assert_ne!((two.shapes, two.hash), (zero.shapes, zero.hash));
    }

    #[test]
    fn empty_signature_is_stable() {
        let a = LayoutObject::new("a").signature();
        assert_eq!(a.shapes, 0);
        assert_eq!(a.hash, 0);
        assert!(a.bbox.is_empty());
    }
}

//! Error type for primitive shape functions.

use amgen_core::{GenError, Stage};

/// Errors from the primitive shape functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrimError {
    /// Budget exhaustion, cancellation or an injected fault, from the
    /// shared generation context.
    Gen(GenError),
    /// A structural primitive (`array`, `around`, `ring`, adaptors) was
    /// applied to an object with no geometry to relate to.
    EmptyObject {
        /// The primitive that was called.
        primitive: &'static str,
    },
    /// The named layer is not a cut layer but a cut array was requested.
    NotACut {
        /// The offending layer name.
        layer: String,
    },
    /// A technology rule needed by the primitive is missing.
    MissingRule(String),
    /// The two wire rectangles handed to the angle adaptor do not form a
    /// corner (they must overlap or abut in exactly one corner region).
    NoCorner,
}

impl std::fmt::Display for PrimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimError::Gen(e) => write!(f, "{e}"),
            PrimError::EmptyObject { primitive } => {
                write!(f, "`{primitive}` needs existing geometry in the object")
            }
            PrimError::NotACut { layer } => {
                write!(
                    f,
                    "layer `{layer}` is not a cut layer; `array` places contacts/vias"
                )
            }
            PrimError::MissingRule(r) => write!(f, "missing technology rule: {r}"),
            PrimError::NoCorner => {
                write!(f, "angle adaptor: the two wires do not meet in a corner")
            }
        }
    }
}

impl std::error::Error for PrimError {}

impl From<amgen_tech::TechError> for PrimError {
    fn from(e: amgen_tech::TechError) -> PrimError {
        PrimError::MissingRule(e.to_string())
    }
}

impl From<GenError> for PrimError {
    fn from(e: GenError) -> PrimError {
        PrimError::Gen(e)
    }
}

impl From<PrimError> for GenError {
    /// Unifies primitive failures under the `amgen-core` error: typed
    /// robustness errors pass through, stage-specific ones are wrapped
    /// with [`Stage::Prim`] context.
    fn from(e: PrimError) -> GenError {
        match e {
            PrimError::Gen(g) => g,
            other => GenError::stage_msg(Stage::Prim, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(PrimError::EmptyObject { primitive: "array" }
            .to_string()
            .contains("array"));
        assert!(PrimError::NotACut {
            layer: "poly".into()
        }
        .to_string()
        .contains("poly"));
    }
}

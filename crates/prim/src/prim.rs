//! The primitive shape functions.

use amgen_core::{FaultSite, GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, NetId, Shape, ShapeRole};
use amgen_geom::{Coord, Rect};
use amgen_tech::{Layer, LayerKind, RuleSet};

use crate::error::PrimError;

/// Design-rule-driven geometry generators bound to one technology.
///
/// All functions take the object being built; sizes are **minimums** —
/// when a rectangle cannot be placed inside the existing geometry, the
/// outer rectangles are expanded automatically (paper §2.2).
#[derive(Debug, Clone)]
pub struct Primitives {
    ctx: GenCtx,
}

impl Primitives {
    /// Binds the primitives to a generation context (or anything that
    /// converts into one, e.g. `&Tech`).
    pub fn new(ctx: impl IntoGenCtx) -> Primitives {
        Primitives {
            ctx: ctx.into_gen_ctx(),
        }
    }

    /// The shared generation context.
    pub fn ctx(&self) -> &GenCtx {
        &self.ctx
    }

    /// The compiled rule kernel.
    pub fn rules(&self) -> &RuleSet {
        &self.ctx
    }

    /// Robustness probe shared by the public primitives: cancellation /
    /// deadline checkpoint plus the two fault-injection sites (the call
    /// itself and the rule lookups it is about to perform on `layer`).
    fn probe(&self, primitive: &'static str, layer: Layer) -> Result<(), PrimError> {
        self.ctx.checkpoint(Stage::Prim)?;
        self.ctx.fault_check(FaultSite::PrimCall, primitive)?;
        self.ctx
            .fault_check(FaultSite::RuleLookup, self.ctx.layer_name(layer))?;
        Ok(())
    }

    /// The frame inside which a shape on `inner` may be placed: the
    /// intersection of every existing non-cut shape deflated by its
    /// required enclosure of `inner`. `None` when the object is empty or
    /// the intersection vanished.
    pub fn frame(&self, obj: &LayoutObject, inner: Layer) -> Option<Rect> {
        self.frame_of_shapes(obj.shapes().iter(), inner)
    }

    /// [`Primitives::frame`] over an explicit shape set (used by the
    /// compactor when rebuilding a single group).
    pub fn frame_of_shapes<'a, I>(&self, shapes: I, inner: Layer) -> Option<Rect>
    where
        I: Iterator<Item = &'a Shape>,
    {
        let mut frame: Option<Rect> = None;
        for s in shapes {
            if self.ctx.kind(s.layer) == LayerKind::Cut {
                continue;
            }
            let margin = self.ctx.enclosure(s.layer, inner);
            let avail = s.rect.inflated(-margin);
            frame = Some(match frame {
                None => avail,
                Some(f) => Rect::new(
                    f.x0.max(avail.x0),
                    f.y0.max(avail.y0),
                    f.x1.min(avail.x1),
                    f.y1.min(avail.y1),
                ),
            });
        }
        frame
    }

    /// Expands every non-cut shape of the object by `(ex, ey)` on each
    /// side — the paper's *"all outer rectangles are expanded"*.
    fn expand_all(&self, obj: &mut LayoutObject, ex: Coord, ey: Coord) {
        if ex == 0 && ey == 0 {
            return;
        }
        for s in obj.shapes_mut() {
            if self.ctx.kind(s.layer) != LayerKind::Cut {
                s.rect = s.rect.inflated_xy(ex, ey);
            }
        }
    }

    /// Ensures the frame for `inner` is at least `need_w × need_h`,
    /// expanding the outers symmetrically when necessary. Returns the
    /// final frame.
    fn ensure_frame(
        &self,
        obj: &mut LayoutObject,
        inner: Layer,
        need_w: Coord,
        need_h: Coord,
    ) -> Rect {
        let frame = self.frame(obj, inner).unwrap_or_else(|| {
            let c = obj.bbox().center();
            Rect::new(c.x, c.y, c.x, c.y)
        });
        let (fw, fh) = (frame.width().max(0), frame.height().max(0));
        let ex = if need_w > fw {
            self.ctx.snap_up((need_w - fw + 1) / 2)
        } else {
            0
        };
        let ey = if need_h > fh {
            self.ctx.snap_up((need_h - fh + 1) / 2)
        } else {
            0
        };
        if ex > 0 || ey > 0 {
            self.expand_all(obj, ex, ey);
        }
        self.frame(obj, inner).unwrap_or(frame)
    }

    /// `INBOX(layer, W, L)` — creates a rectangle on `layer`.
    ///
    /// * On an **empty** object it is the seed rectangle: `w × l` with
    ///   lower-left at the origin, each dimension defaulting to the
    ///   layer's minimum width.
    /// * On a non-empty object the rectangle is placed **inside** the
    ///   existing geometry (honouring every enclosure rule). Omitted
    ///   dimensions fill the available frame; requested dimensions are
    ///   minimums. If the rectangle cannot fit, the outers are expanded.
    ///
    /// Returns the new shape's index.
    pub fn inbox(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        w: Option<Coord>,
        l: Option<Coord>,
    ) -> Result<usize, PrimError> {
        self.probe("inbox", layer)?;
        let _timer = self.ctx.metrics.stage_timer(Stage::Prim);
        let _span = self.ctx.span_fine(Stage::Prim, || "inbox");
        let min_w = self.ctx.min_width(layer).max(self.ctx.grid());
        if obj.is_empty() {
            let w = self.ctx.snap_up(w.unwrap_or(min_w).max(min_w));
            let l = self.ctx.snap_up(l.unwrap_or(min_w).max(min_w));
            return Ok(obj.push(Shape::new(layer, Rect::new(0, 0, w, l))));
        }
        // Minimum acceptable size: explicit value or layer minimum.
        let need_w = self.ctx.snap_up(w.unwrap_or(min_w).max(min_w));
        let need_h = self.ctx.snap_up(l.unwrap_or(min_w).max(min_w));
        let frame = self.ensure_frame(obj, layer, need_w, need_h);
        // Omitted dimensions fill the frame; explicit ones are centred.
        let fw = if w.is_none() {
            frame.width().max(need_w)
        } else {
            need_w
        };
        let fh = if l.is_none() {
            frame.height().max(need_h)
        } else {
            need_h
        };
        let rect = Rect::centered_at(frame.center(), fw, fh);
        Ok(obj.push(Shape::new(layer, rect)))
    }

    /// Pure array computation: the maximal equidistant grid of `cut`
    /// squares inside `frame` (used by [`Primitives::array`] and by the
    /// compactor's contact-array rebuild).
    ///
    /// Returns an empty vector when not even one cut fits.
    pub fn array_in_frame(&self, frame: Rect, cut: Layer) -> Result<Vec<Rect>, PrimError> {
        if self.ctx.kind(cut) != LayerKind::Cut {
            return Err(PrimError::NotACut {
                layer: self.ctx.layer_name(cut).to_string(),
            });
        }
        let size = self.ctx.cut_size(cut)?;
        let space = self.ctx.min_spacing(cut, cut).ok_or_else(|| {
            PrimError::MissingRule(format!("space {0} {0}", self.ctx.layer_name(cut)))
        })?;
        let positions = |lo: Coord, hi: Coord| -> Vec<Coord> {
            let span = hi - lo;
            if span < size {
                return Vec::new();
            }
            // Maximum n with n*size + (n-1)*space <= span.
            let n = ((span + space) / (size + space)).max(1);
            if n == 1 {
                return vec![lo + (span - size) / 2];
            }
            // First flush at lo, last flush at hi - size, rest equidistant
            // ("the contacts are placed equidistantly to minimize the
            // contact resistance").
            let travel = span - size;
            (0..n).map(|i| lo + travel * i / (n - 1)).collect()
        };
        let xs = positions(frame.x0, frame.x1);
        let ys = positions(frame.y0, frame.y1);
        let mut out = Vec::with_capacity(xs.len() * ys.len());
        for &y in &ys {
            for &x in &xs {
                out.push(Rect::new(x, y, x + size, y + size));
            }
        }
        Ok(out)
    }

    /// `ARRAY(cut)` — fills the object's frame with the maximum number of
    /// equidistant cut squares; expands the outers so that at least one
    /// fits (paper §2.2). Returns the new shapes' indices.
    pub fn array(&self, obj: &mut LayoutObject, cut: Layer) -> Result<Vec<usize>, PrimError> {
        self.probe("array", cut)?;
        let _timer = self.ctx.metrics.stage_timer(Stage::Prim);
        let _span = self.ctx.span_fine(Stage::Prim, || "array");
        if obj.is_empty() {
            return Err(PrimError::EmptyObject { primitive: "array" });
        }
        if self.ctx.kind(cut) != LayerKind::Cut {
            return Err(PrimError::NotACut {
                layer: self.ctx.layer_name(cut).to_string(),
            });
        }
        let size = self.ctx.cut_size(cut)?;
        let frame = self.ensure_frame(obj, cut, size, size);
        let rects = self.array_in_frame(frame, cut)?;
        debug_assert!(!rects.is_empty(), "frame was expanded to fit one cut");
        Ok(rects
            .into_iter()
            .map(|r| obj.push(Shape::new(cut, r)))
            .collect())
    }

    /// Places a rectangle on `layer` **around** the existing structure:
    /// the union bounding box of every shape inflated by the required
    /// enclosure of that shape's layer by `layer`, plus `extra`.
    ///
    /// Typical uses: the n-well around a PMOS device, implants around
    /// diffusions, the base region around an emitter.
    pub fn around(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        extra: Coord,
    ) -> Result<usize, PrimError> {
        self.probe("around", layer)?;
        let _timer = self.ctx.metrics.stage_timer(Stage::Prim);
        let _span = self.ctx.span_fine(Stage::Prim, || "around");
        if obj.is_empty() {
            return Err(PrimError::EmptyObject {
                primitive: "around",
            });
        }
        let mut r = Rect::EMPTY;
        for s in obj.shapes() {
            let margin = self.ctx.enclosure(layer, s.layer) + extra;
            r = r.union_bbox(&s.rect.inflated(margin));
        }
        // Honour the layer's own minimum width.
        let min_w = self.ctx.min_width(layer);
        if r.width() < min_w || r.height() < min_w {
            r = Rect::centered_at(r.center(), r.width().max(min_w), r.height().max(min_w));
        }
        Ok(obj.push(Shape::new(layer, r)))
    }

    /// Places a **ring** of four rectangles on `layer` around the current
    /// structure.
    ///
    /// `width` defaults to the layer's minimum width; `clearance` (gap
    /// between the structure's bounding box and the ring's inner edge)
    /// defaults to the largest spacing rule between `layer` and any layer
    /// present in the object. Returns the four shape indices in
    /// bottom/top/left/right order.
    pub fn ring(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        width: Option<Coord>,
        clearance: Option<Coord>,
    ) -> Result<[usize; 4], PrimError> {
        self.probe("ring", layer)?;
        let _timer = self.ctx.metrics.stage_timer(Stage::Prim);
        let _span = self.ctx.span_fine(Stage::Prim, || "ring");
        if obj.is_empty() {
            return Err(PrimError::EmptyObject { primitive: "ring" });
        }
        let w = self.ctx.snap_up(
            width
                .unwrap_or_else(|| self.ctx.min_width(layer))
                .max(self.ctx.grid()),
        );
        let cl = clearance.unwrap_or_else(|| {
            obj.shapes()
                .iter()
                .map(|s| self.ctx.clearance(layer, s.layer))
                .max()
                .unwrap_or(0)
        });
        let inner = obj.bbox().inflated(cl);
        let outer = inner.inflated(w);
        let bottom = Rect::new(outer.x0, outer.y0, outer.x1, inner.y0);
        let top = Rect::new(outer.x0, inner.y1, outer.x1, outer.y1);
        let left = Rect::new(outer.x0, inner.y0, inner.x0, inner.y1);
        let right = Rect::new(inner.x1, inner.y0, outer.x1, inner.y1);
        Ok([
            obj.push(Shape::new(layer, bottom)),
            obj.push(Shape::new(layer, top)),
            obj.push(Shape::new(layer, left)),
            obj.push(Shape::new(layer, right)),
        ])
    }

    /// `TWORECTS(gate, diff, W, L)` — the MOS transistor core: two
    /// overlapping rectangles forming a gate crossing.
    ///
    /// The channel is `L` wide (x) and `W` tall (y) with its lower-left at
    /// the origin. The gate stripe extends beyond the diffusion by the
    /// `extend gate diff` rule; the diffusion extends beyond the gate by
    /// the `extend diff gate` rule (source/drain landing). Defaults:
    /// `W` = diffusion minimum width, `L` = gate minimum width.
    ///
    /// The diffusion shape is tagged [`ShapeRole::DeviceActive`] so the
    /// latch-up check (Fig. 1) knows it must be covered.
    ///
    /// Returns `(gate_index, diff_index)`.
    pub fn two_rects(
        &self,
        obj: &mut LayoutObject,
        gate: Layer,
        diff: Layer,
        w: Option<Coord>,
        l: Option<Coord>,
    ) -> Result<(usize, usize), PrimError> {
        self.probe("two_rects", gate)?;
        let _timer = self.ctx.metrics.stage_timer(Stage::Prim);
        let _span = self.ctx.span_fine(Stage::Prim, || "two_rects");
        let w = self.ctx.snap_up(
            w.unwrap_or_else(|| self.ctx.min_width(diff))
                .max(self.ctx.min_width(diff)),
        );
        let l = self.ctx.snap_up(
            l.unwrap_or_else(|| self.ctx.min_width(gate))
                .max(self.ctx.min_width(gate)),
        );
        let gate_ext = self.ctx.extension(gate, diff);
        let diff_ext = self.ctx.extension(diff, gate);
        let gate_rect = Rect::new(0, -gate_ext, l, w + gate_ext);
        let diff_rect = Rect::new(-diff_ext, 0, l + diff_ext, w);
        let gi = obj.push(Shape::new(gate, gate_rect));
        let di = obj.push(Shape::new(diff, diff_rect).with_role(ShapeRole::DeviceActive));
        Ok((gi, di))
    }

    /// Produces an **angle adaptor**: the corner patch where a horizontal
    /// wire `h` meets a vertical wire `v` on the same layer. The patch
    /// spans the vertical wire's x-range and the horizontal wire's
    /// y-range, guaranteeing a rule-clean corner for wires of different
    /// widths.
    ///
    /// Returns the new shape's index.
    pub fn angle_adaptor(
        &self,
        obj: &mut LayoutObject,
        layer: Layer,
        h: Rect,
        v: Rect,
        net: Option<NetId>,
    ) -> Result<usize, PrimError> {
        let patch = Rect::new(v.x0, h.y0, v.x1, h.y1);
        if patch.is_empty() {
            return Err(PrimError::NoCorner);
        }
        // The patch must connect to both wires.
        let touches = |a: &Rect, b: &Rect| a.overlaps(b) || a.abuts(b);
        if !touches(&patch, &h) || !touches(&patch, &v) {
            return Err(PrimError::NoCorner);
        }
        let mut s = Shape::new(layer, patch);
        if let Some(n) = net {
            s = s.with_net(n);
        }
        Ok(obj.push(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_geom::um;
    use amgen_tech::Tech;

    fn setup() -> (Tech,) {
        (Tech::bicmos_1u(),)
    }

    #[test]
    fn inbox_seed_uses_min_width_defaults() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let mut obj = LayoutObject::new("x");
        let i = p.inbox(&mut obj, poly, None, None)?;
        let r = obj.shapes()[i].rect;
        assert_eq!(r.width(), t.min_width(poly));
        assert_eq!(r.height(), t.min_width(poly));
        assert_eq!(r.ll(), amgen_geom::Point::ORIGIN);
        Ok(())
    }

    #[test]
    fn inbox_seed_respects_explicit_dims() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let mut obj = LayoutObject::new("x");
        let i = p.inbox(&mut obj, poly, Some(um(10)), Some(um(2)))?;
        let r = obj.shapes()[i].rect;
        assert_eq!((r.width(), r.height()), (um(10), um(2)));
        Ok(())
    }

    #[test]
    fn inbox_seed_clamps_to_min_width() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let m1 = t.layer("metal1")?;
        let mut obj = LayoutObject::new("x");
        let i = p.inbox(&mut obj, m1, Some(100), None)?;
        assert_eq!(obj.shapes()[i].rect.width(), t.min_width(m1));
        Ok(())
    }

    #[test]
    fn inbox_inside_fills_frame_when_dims_omitted() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let m1 = t.layer("metal1")?;
        let mut obj = LayoutObject::new("x");
        p.inbox(&mut obj, poly, Some(um(10)), Some(um(2)))?;
        let i = p.inbox(&mut obj, m1, None, None)?;
        // No poly→metal1 enclosure rule, so metal fills the poly rect.
        assert_eq!(obj.shapes()[i].rect, obj.shapes()[0].rect);
        Ok(())
    }

    #[test]
    fn inbox_expands_outers_when_too_small() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let m1 = t.layer("metal1")?;
        let mut obj = LayoutObject::new("x");
        // Seed poly is 1000 wide, metal1 min width is 1500: poly must grow.
        p.inbox(&mut obj, poly, None, None)?;
        let i = p.inbox(&mut obj, m1, None, None)?;
        let poly_r = obj.shapes()[0].rect;
        let m1_r = obj.shapes()[i].rect;
        assert!(poly_r.width() >= t.min_width(m1));
        assert!(m1_r.width() >= t.min_width(m1));
        assert!(poly_r.contains_rect(&m1_r));
        Ok(())
    }

    #[test]
    fn contact_row_three_calls_fig2() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let m1 = t.layer("metal1")?;
        let ct = t.layer("contact")?;
        let mut row = LayoutObject::new("gatecon");
        p.inbox(&mut row, poly, Some(um(10)), None)?;
        p.inbox(&mut row, m1, None, None)?;
        let cuts = p.array(&mut row, ct)?;
        assert!(cuts.len() >= 2, "a 10 um row holds several contacts");
        // Every contact is enclosed by both poly and metal1 by >= 500.
        let poly_r = row.shapes()[0].rect;
        let m1_r = row.shapes()[1].rect;
        for &i in &cuts {
            let c = row.shapes()[i].rect;
            assert!(poly_r.inflated(-t.enclosure(poly, ct)).contains_rect(&c));
            assert!(m1_r.inflated(-t.enclosure(m1, ct)).contains_rect(&c));
        }
        // Contacts are pairwise spaced by at least the rule.
        let space = t.min_spacing(ct, ct).ok_or("no contact spacing rule")?;
        for (a, &i) in cuts.iter().enumerate() {
            for &j in &cuts[a + 1..] {
                let (ri, rj) = (row.shapes()[i].rect, row.shapes()[j].rect);
                let dx = ri.gap_along(&rj, amgen_geom::Axis::X);
                let dy = ri.gap_along(&rj, amgen_geom::Axis::Y);
                assert!(dx >= space || dy >= space, "{ri} vs {rj}");
            }
        }
        Ok(())
    }

    #[test]
    fn array_expands_to_fit_one_cut() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let ct = t.layer("contact")?;
        let mut obj = LayoutObject::new("x");
        // A minimum-size poly square: far too small for a contact + enclosure.
        p.inbox(&mut obj, poly, None, None)?;
        let cuts = p.array(&mut obj, ct)?;
        assert_eq!(cuts.len(), 1);
        let c = obj.shapes()[cuts[0]].rect;
        let poly_r = obj.shapes()[0].rect;
        assert!(poly_r.inflated(-t.enclosure(poly, ct)).contains_rect(&c));
        Ok(())
    }

    #[test]
    fn array_on_empty_object_is_an_error() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let ct = t.layer("contact")?;
        let mut obj = LayoutObject::new("x");
        assert!(matches!(
            p.array(&mut obj, ct),
            Err(PrimError::EmptyObject { .. })
        ));
        Ok(())
    }

    #[test]
    fn array_rejects_non_cut_layer() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let mut obj = LayoutObject::new("x");
        p.inbox(&mut obj, poly, None, None)?;
        assert!(matches!(
            p.array(&mut obj, poly),
            Err(PrimError::NotACut { .. })
        ));
        Ok(())
    }

    #[test]
    fn array_count_scales_with_row_length() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let m1 = t.layer("metal1")?;
        let ct = t.layer("contact")?;
        let mut counts = Vec::new();
        for w in [um(4), um(10), um(20)] {
            let mut row = LayoutObject::new("r");
            p.inbox(&mut row, poly, Some(w), None)?;
            p.inbox(&mut row, m1, None, None)?;
            counts.push(p.array(&mut row, ct)?.len());
        }
        assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
        Ok(())
    }

    #[test]
    fn around_covers_with_enclosure() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let pdiff = t.layer("pdiff")?;
        let nwell = t.layer("nwell")?;
        let mut obj = LayoutObject::new("x");
        p.inbox(&mut obj, pdiff, Some(um(4)), Some(um(4)))?;
        let i = p.around(&mut obj, nwell, 0)?;
        let well = obj.shapes()[i].rect;
        let diff = obj.shapes()[0].rect;
        let enc = t.enclosure(nwell, pdiff);
        assert!(well.inflated(-enc).contains_rect(&diff));
        Ok(())
    }

    #[test]
    fn around_on_empty_is_an_error() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let nwell = t.layer("nwell")?;
        let mut obj = LayoutObject::new("x");
        assert!(matches!(
            p.around(&mut obj, nwell, 0),
            Err(PrimError::EmptyObject { .. })
        ));
        Ok(())
    }

    #[test]
    fn ring_surrounds_structure() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let pdiff = t.layer("pdiff")?;
        let mut obj = LayoutObject::new("x");
        p.inbox(&mut obj, poly, Some(um(5)), Some(um(5)))?;
        let core_bbox = obj.bbox();
        let ring = p.ring(&mut obj, pdiff, None, None)?;
        // The four ring shapes do not overlap the core and enclose it.
        for &i in &ring {
            assert!(!obj.shapes()[i].rect.overlaps(&core_bbox));
            assert_eq!(obj.shapes()[i].layer, pdiff);
        }
        let ring_bbox = ring
            .iter()
            .fold(Rect::EMPTY, |acc, &i| acc.union_bbox(&obj.shapes()[i].rect));
        assert!(ring_bbox.contains_rect(&core_bbox));
        // Clearance respects the poly/pdiff spacing rule.
        let cl = t.clearance(pdiff, poly);
        for &i in &ring {
            let g = obj.shapes()[i].rect;
            assert!(
                g.gap_along(&core_bbox, amgen_geom::Axis::X) >= cl
                    || g.gap_along(&core_bbox, amgen_geom::Axis::Y) >= cl
            );
        }
        Ok(())
    }

    #[test]
    fn two_rects_builds_a_gate_crossing() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let pdiff = t.layer("pdiff")?;
        let mut obj = LayoutObject::new("m");
        let (gi, di) = p.two_rects(&mut obj, poly, pdiff, Some(um(10)), Some(um(1)))?;
        let g = obj.shapes()[gi].rect;
        let d = obj.shapes()[di].rect;
        assert!(g.overlaps(&d), "gate crosses diffusion");
        // Gate extends beyond diffusion vertically by the extension rule.
        assert_eq!(g.y1 - d.y1, t.extension(poly, pdiff));
        assert_eq!(d.y0 - g.y0, t.extension(poly, pdiff));
        // Diffusion extends beyond gate horizontally (source/drain).
        assert_eq!(d.x1 - g.x1, t.extension(pdiff, poly));
        assert_eq!(g.x0 - d.x0, t.extension(pdiff, poly));
        // Channel size as requested.
        assert_eq!(g.width(), um(1));
        assert_eq!(d.height(), um(10));
        assert_eq!(obj.shapes()[di].role, ShapeRole::DeviceActive);
        Ok(())
    }

    #[test]
    fn two_rects_defaults_to_minimum_device() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let poly = t.layer("poly")?;
        let ndiff = t.layer("ndiff")?;
        let mut obj = LayoutObject::new("m");
        let (gi, di) = p.two_rects(&mut obj, poly, ndiff, None, None)?;
        assert_eq!(obj.shapes()[gi].rect.width(), t.min_width(poly));
        assert_eq!(obj.shapes()[di].rect.height(), t.min_width(ndiff));
        Ok(())
    }

    #[test]
    fn angle_adaptor_patches_a_corner() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let m1 = t.layer("metal1")?;
        let mut obj = LayoutObject::new("w");
        let h = Rect::new(0, 0, um(10), um(2)); // horizontal, 2 um wide
        let v = Rect::new(um(10), 0, um(11), um(8)); // vertical, 1 um wide
        obj.push(Shape::new(m1, h));
        obj.push(Shape::new(m1, v));
        let i = p.angle_adaptor(&mut obj, m1, h, v, None)?;
        let patch = obj.shapes()[i].rect;
        assert_eq!(patch, Rect::new(um(10), 0, um(11), um(2)));
        Ok(())
    }

    #[test]
    fn angle_adaptor_rejects_disjoint_wires() -> Result<(), Box<dyn std::error::Error>> {
        let (t,) = setup();
        let p = Primitives::new(&t);
        let m1 = t.layer("metal1")?;
        let mut obj = LayoutObject::new("w");
        let h = Rect::new(0, 0, um(2), um(1));
        let v = Rect::new(um(10), um(10), um(11), um(20));
        assert_eq!(
            p.angle_adaptor(&mut obj, m1, h, v, None),
            Err(PrimError::NoCorner)
        );
        Ok(())
    }
}

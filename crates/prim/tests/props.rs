//! Property tests for the primitive shape functions: the automatic
//! design-rule guarantees hold for arbitrary parameters.

use amgen_db::LayoutObject;
use amgen_prim::Primitives;
use amgen_tech::Tech;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// inbox: the inner rectangle always ends up inside every outer one
    /// (deflated by its enclosure), whatever sizes were requested —
    /// expansion guarantees it.
    #[test]
    fn inbox_always_ends_up_inside(
        w1 in 1i64..30, l1 in 1i64..30,
        w2 in prop::option::of(1i64..40), l2 in prop::option::of(1i64..40),
    ) {
        let tech = Tech::bicmos_1u();
        let prim = Primitives::new(&tech);
        let poly = tech.layer("poly").unwrap();
        let m1 = tech.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        prim.inbox(&mut obj, poly, Some(w1 * 1_000), Some(l1 * 1_000)).unwrap();
        let i = prim
            .inbox(&mut obj, m1, w2.map(|v| v * 1_000), l2.map(|v| v * 1_000))
            .unwrap();
        let inner = obj.shapes()[i].rect;
        let outer = obj.shapes()[0].rect;
        let margin = tech.enclosure(poly, m1);
        prop_assert!(outer.inflated(-margin).contains_rect(&inner),
            "outer {outer} inner {inner}");
        // Both respect their layer minima.
        prop_assert!(inner.width() >= tech.min_width(m1));
        prop_assert!(inner.height() >= tech.min_width(m1));
    }

    /// array: every cut lies in the frame with full enclosure, all cuts
    /// are rule-spaced, and at least one is always placed.
    #[test]
    fn array_cuts_are_enclosed_and_spaced(w in 1i64..40, l in 1i64..40) {
        let tech = Tech::bicmos_1u();
        let prim = Primitives::new(&tech);
        let poly = tech.layer("poly").unwrap();
        let m1 = tech.layer("metal1").unwrap();
        let ct = tech.layer("contact").unwrap();
        let mut obj = LayoutObject::new("x");
        prim.inbox(&mut obj, poly, Some(w * 1_000), Some(l * 1_000)).unwrap();
        prim.inbox(&mut obj, m1, None, None).unwrap();
        let cuts = prim.array(&mut obj, ct).unwrap();
        prop_assert!(!cuts.is_empty());
        let space = tech.min_spacing(ct, ct).unwrap();
        let cs = tech.cut_size(ct).unwrap();
        for (k, &i) in cuts.iter().enumerate() {
            let c = obj.shapes()[i].rect;
            prop_assert_eq!((c.width(), c.height()), (cs, cs));
            for s in obj.shapes().iter().take(2) {
                let enc = tech.enclosure(s.layer, ct);
                prop_assert!(s.rect.inflated(-enc).contains_rect(&c));
            }
            for &j in &cuts[k + 1..] {
                let o = obj.shapes()[j].rect;
                let gx = c.gap_along(&o, amgen_geom::Axis::X);
                let gy = c.gap_along(&o, amgen_geom::Axis::Y);
                prop_assert!(gx >= space || gy >= space, "{c} vs {o}");
            }
        }
    }

    /// around: the cover encloses every shape by its rule margin.
    #[test]
    fn around_encloses_everything(w in 2i64..30, l in 2i64..30) {
        let tech = Tech::bicmos_1u();
        let prim = Primitives::new(&tech);
        let pdiff = tech.layer("pdiff").unwrap();
        let nwell = tech.layer("nwell").unwrap();
        let mut obj = LayoutObject::new("x");
        prim.inbox(&mut obj, pdiff, Some(w * 1_000), Some(l * 1_000)).unwrap();
        let i = prim.around(&mut obj, nwell, 0).unwrap();
        let well = obj.shapes()[i].rect;
        let enc = tech.enclosure(nwell, pdiff);
        prop_assert!(well.inflated(-enc).contains_rect(&obj.shapes()[0].rect));
    }

    /// two_rects: the gate crossing always has the rule extensions, for
    /// any channel size (including below-minimum requests that clamp).
    #[test]
    fn two_rects_extensions_hold(w in 1i64..40, l in 1i64..10) {
        let tech = Tech::bicmos_1u();
        let prim = Primitives::new(&tech);
        let poly = tech.layer("poly").unwrap();
        let ndiff = tech.layer("ndiff").unwrap();
        let mut obj = LayoutObject::new("x");
        let (gi, di) = prim
            .two_rects(&mut obj, poly, ndiff, Some(w * 500), Some(l * 500))
            .unwrap();
        let g = obj.shapes()[gi].rect;
        let d = obj.shapes()[di].rect;
        prop_assert!(g.overlaps(&d));
        prop_assert_eq!(g.y1 - d.y1, tech.extension(poly, ndiff));
        prop_assert_eq!(d.x1 - g.x1, tech.extension(ndiff, poly));
        prop_assert!(g.width() >= tech.min_width(poly));
        prop_assert!(d.height() >= tech.min_width(ndiff));
    }
}

//! An **offline drop-in subset of the criterion API**.
//!
//! The real `criterion` crate cannot be vendored in this environment, so
//! this crate implements the slice of its surface the workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is a plain wall-clock loop: a short warm-up sizes the
//! batch so one sample takes roughly `TARGET_SAMPLE`, then
//! `sample_size` samples are taken and the median per-iteration time is
//! printed. No statistics, plots or baselines — just honest numbers on
//! stderr-free stdout, good enough to compare series within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Rough wall-clock budget for one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Times one benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Bencher {
        Bencher {
            iters_per_sample: 0,
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: find an iteration count that fills the sample budget.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            // Grow towards the budget (at least double).
            let scale = (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).max(2);
            iters = iters.saturating_mul(scale as u64).min(1 << 20);
        }
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(t.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self) -> String {
        if self.samples.is_empty() {
            return "no samples".to_string();
        }
        let mut s = self.samples.clone();
        s.sort();
        let med = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        format!("time: [{} {} {}]", fmt_dur(lo), fmt_dur(med), fmt_dur(hi))
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// Just a parameter (the group name is the function).
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher::new(DEFAULT_SAMPLES);
        f(&mut b);
        println!("{name:<50} {}", b.report());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
        }
    }
}

const DEFAULT_SAMPLES: usize = 15;

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        println!("{:<50} {}", format!("{}/{}", self.name, id.0), b.report());
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        println!("{:<50} {}", format!("{}/{}", self.name, name), b.report());
        self
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Property-based tests for the geometry kernel.

use amgen_geom::{Orient, Point, Rect, Region};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-1000i64..1000, -1000i64..1000, 1i64..500, 1i64..500)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    /// Subtraction partitions the solid rectangle exactly: remainders are
    /// disjoint, inside the solid, outside the cutter, and the areas add up.
    #[test]
    fn subtract_partitions_area(solid in arb_rect(), cutter in arb_rect()) {
        let parts = solid.subtract(&cutter);
        let cut = solid.intersection(&cutter).map_or(0, |o| o.area());
        let rem: i128 = parts.iter().map(Rect::area).sum();
        prop_assert_eq!(rem + cut, solid.area());
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(!p.is_empty());
            prop_assert!(solid.contains_rect(p));
            prop_assert!(!p.overlaps(&cutter));
            for q in &parts[i + 1..] {
                prop_assert!(!p.overlaps(q));
            }
        }
    }

    /// At most four remainders ever result from one subtraction.
    #[test]
    fn subtract_yields_at_most_four(solid in arb_rect(), cutter in arb_rect()) {
        prop_assert!(solid.subtract(&cutter).len() <= 4);
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_commutes(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    /// Region area is monotone under push and never exceeds the bbox area.
    #[test]
    fn region_area_bounds(rects in prop::collection::vec(arb_rect(), 1..12)) {
        let reg: Region = rects.iter().copied().collect();
        let max_single = rects.iter().map(Rect::area).max().unwrap();
        let sum: i128 = rects.iter().map(Rect::area).sum();
        let area = reg.area();
        prop_assert!(area >= max_single);
        prop_assert!(area <= sum);
        prop_assert!(area <= reg.bbox().area());
    }

    /// covered_by is equivalent to subtract-until-empty.
    #[test]
    fn covered_by_matches_subtraction(
        solid in arb_rect(),
        covers in prop::collection::vec(arb_rect(), 0..8),
    ) {
        let reg = Region::from_rect(solid);
        let mut rem = Region::from_rect(solid);
        for c in &covers {
            rem.subtract_rect(*c);
        }
        prop_assert_eq!(reg.covered_by(covers), rem.is_empty());
    }

    /// normalize preserves covered area exactly.
    #[test]
    fn normalize_preserves_area(rects in prop::collection::vec(arb_rect(), 1..10)) {
        let mut reg: Region = rects.iter().copied().collect();
        let before = reg.area();
        reg.normalize();
        prop_assert_eq!(reg.area(), before);
    }

    /// The banded (sweep-line) region subtraction is set-equivalent to
    /// the all-pairs 16-case subtraction: same covered area, same point
    /// membership at every rectangle corner (the only places coverage
    /// can change), and the same cover verdict.
    #[test]
    fn banded_subtract_matches_allpairs(
        solid in prop::collection::vec(arb_rect(), 1..24),
        cutters in prop::collection::vec(arb_rect(), 0..24),
    ) {
        let base: Region = solid.iter().copied().collect();
        let cut: Region = cutters.iter().copied().collect();
        let mut ap = base.clone();
        ap.subtract_region_allpairs(&cut);
        let mut bd = base.clone();
        bd.subtract_region_banded(&cut);
        prop_assert_eq!(ap.area(), bd.area());
        let covers = |reg: &Region, x: i64, y: i64| -> bool {
            let probe = Rect::new(x, y, x + 1, y + 1);
            reg.rects().iter().any(|r| r.overlaps(&probe))
        };
        for r in solid.iter().chain(cutters.iter()) {
            for &(x, y) in &[
                (r.x0, r.y0), (r.x1 - 1, r.y0), (r.x0, r.y1 - 1), (r.x1 - 1, r.y1 - 1),
                (r.x0 - 1, r.y0 - 1), (r.x1, r.y1),
            ] {
                prop_assert_eq!(covers(&ap, x, y), covers(&bd, x, y));
            }
        }
        prop_assert_eq!(
            base.covered_by_allpairs(cutters.iter().copied()),
            base.covered_by_banded(&cutters)
        );
    }

    /// The public `subtract_region` (which dispatches on problem size)
    /// always agrees with the all-pairs reference in area.
    #[test]
    fn dispatched_subtract_matches_allpairs(
        solid in prop::collection::vec(arb_rect(), 1..16),
        cutters in prop::collection::vec(arb_rect(), 0..16),
    ) {
        let cut: Region = cutters.iter().copied().collect();
        let mut ap: Region = solid.iter().copied().collect();
        let mut pb = ap.clone();
        ap.subtract_region_allpairs(&cut);
        pb.subtract_region(&cut);
        prop_assert_eq!(ap.area(), pb.area());
    }

    /// Orientation transforms preserve rectangle area and are invertible.
    #[test]
    fn orient_preserves_area(r in arb_rect(), idx in 0usize..8) {
        let o = Orient::ALL[idx];
        let t = o.apply_rect(r);
        prop_assert_eq!(t.area(), r.area());
        prop_assert_eq!(o.inverse().apply_rect(t), r);
    }

    /// Point mirror is an involution.
    #[test]
    fn mirror_involution(x in -1000i64..1000, y in -1000i64..1000, ax in -1000i64..1000) {
        let p = Point::new(x, y);
        prop_assert_eq!(p.mirrored_x(ax).mirrored_x(ax), p);
        prop_assert_eq!(p.mirrored_y(ax).mirrored_y(ax), p);
    }
}

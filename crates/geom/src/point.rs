//! Planar points and displacement vectors.

use crate::coord::{Axis, Coord, Dir};

/// A point in the layout plane, in database units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

/// A displacement in the layout plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vector {
    /// Horizontal component.
    pub dx: Coord,
    /// Vertical component.
    pub dy: Coord,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: Coord, y: Coord) -> Point {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Returns the coordinate along `axis`.
    #[inline]
    pub fn along(self, axis: Axis) -> Coord {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
        }
    }

    /// Returns this point translated by `v`.
    #[inline]
    pub fn translated(self, v: Vector) -> Point {
        Point::new(self.x + v.dx, self.y + v.dy)
    }

    /// The vector from `self` to `other`.
    #[inline]
    pub fn to(self, other: Point) -> Vector {
        Vector::new(other.x - self.x, other.y - self.y)
    }

    /// Manhattan distance to `other`.
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Mirrors the point about the vertical line `x = axis_x`.
    #[inline]
    pub fn mirrored_x(self, axis_x: Coord) -> Point {
        Point::new(2 * axis_x - self.x, self.y)
    }

    /// Mirrors the point about the horizontal line `y = axis_y`.
    #[inline]
    pub fn mirrored_y(self, axis_y: Coord) -> Point {
        Point::new(self.x, 2 * axis_y - self.y)
    }
}

impl Vector {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(dx: Coord, dy: Coord) -> Vector {
        Vector { dx, dy }
    }

    /// The zero displacement.
    pub const ZERO: Vector = Vector { dx: 0, dy: 0 };

    /// A unit step of length `d` in direction `dir`.
    #[inline]
    pub fn step(dir: Dir, d: Coord) -> Vector {
        match dir {
            Dir::North => Vector::new(0, d),
            Dir::South => Vector::new(0, -d),
            Dir::East => Vector::new(d, 0),
            Dir::West => Vector::new(-d, 0),
        }
    }

    /// Component along `axis`.
    #[inline]
    pub fn along(self, axis: Axis) -> Coord {
        match axis {
            Axis::X => self.dx,
            Axis::Y => self.dy,
        }
    }

    /// Returns the negated vector.
    #[inline]
    pub fn negated(self) -> Vector {
        Vector::new(-self.dx, -self.dy)
    }
}

impl std::ops::Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vector) -> Point {
        self.translated(v)
    }
}

impl std::ops::Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vector) -> Point {
        self.translated(v.negated())
    }
}

impl std::ops::Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, o: Vector) -> Vector {
        Vector::new(self.dx + o.dx, self.dy + o.dy)
    }
}

impl std::ops::Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, o: Vector) -> Vector {
        Vector::new(self.dx - o.dx, self.dy - o.dy)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_and_difference() {
        let p = Point::new(3, 4);
        let v = Vector::new(-1, 2);
        assert_eq!(p + v, Point::new(2, 6));
        assert_eq!((p + v) - v, p);
        assert_eq!(p.to(p + v), v);
    }

    #[test]
    fn step_matches_direction_sign() {
        assert_eq!(Vector::step(Dir::North, 5), Vector::new(0, 5));
        assert_eq!(Vector::step(Dir::South, 5), Vector::new(0, -5));
        assert_eq!(Vector::step(Dir::East, 5), Vector::new(5, 0));
        assert_eq!(Vector::step(Dir::West, 5), Vector::new(-5, 0));
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(0, 0);
        let b = Point::new(3, -4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(b.manhattan_distance(a), 7);
    }

    #[test]
    fn mirror_about_axes() {
        let p = Point::new(3, 4);
        assert_eq!(p.mirrored_x(0), Point::new(-3, 4));
        assert_eq!(p.mirrored_x(5), Point::new(7, 4));
        assert_eq!(p.mirrored_y(4), p);
        assert_eq!(p.mirrored_x(5).mirrored_x(5), p);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Vector::new(1, 2);
        let b = Vector::new(3, -1);
        assert_eq!(a + b, Vector::new(4, 1));
        assert_eq!(a - b, Vector::new(-2, 3));
        assert_eq!(a.negated() + a, Vector::ZERO);
        assert_eq!(a.along(Axis::X), 1);
        assert_eq!(a.along(Axis::Y), 2);
    }
}

//! Integer geometry kernel for the analog module generator environment.
//!
//! All coordinates are integers in **database units** (1 du = 1 nanometre),
//! mirroring the rectangle-only data model of Wolf/Kleine/Hosticka
//! (DATE 1996): *"To keep the layout data structure efficient, polygons are
//! converted into simple rectangular structures."*
//!
//! The crate provides:
//!
//! * [`Coord`], [`Point`] and [`Vector`] — scalar and planar primitives,
//! * [`Rect`] — closed axis-aligned rectangles with the full algebra the
//!   paper relies on: intersection, containment, inflation and the
//!   **16-case subtraction** used by the latch-up rule check (Fig. 1),
//! * [`Region`] — a set of rectangles with cover tests and exact area
//!   bookkeeping,
//! * [`RectTree`] — a bulk-loaded packed R-tree for deterministic window
//!   queries, the engine behind the database's spatial index,
//! * [`Dir`] / [`Axis`] — the four compaction directions of the successive
//!   compactor,
//! * [`Interval`] — one-dimensional interval arithmetic used by the
//!   compaction constraint scan,
//! * [`Orient`] — the eight Manhattan orientations used for mirrored and
//!   common-centroid device placement,
//! * [`poly`] — decomposition of rectilinear polygons into rectangles.
//!
//! # Example
//!
//! ```
//! use amgen_geom::{Rect, Region};
//!
//! // Fig. 1 of the paper: a temporary rectangle around a substrate contact
//! // must, together with its peers, cover every active area.
//! let active = Rect::new(0, 0, 10_000, 4_000);
//! let temp_a = Rect::new(-2_000, -2_000, 6_000, 6_000);
//! let temp_b = Rect::new(4_000, -2_000, 12_000, 6_000);
//! let mut remaining = Region::from_rect(active);
//! remaining.subtract_rect(temp_a);
//! remaining.subtract_rect(temp_b);
//! assert!(remaining.is_empty(), "latch-up rule fulfilled");
//! ```

pub mod coord;
pub mod interval;
pub mod orient;
pub mod point;
pub mod poly;
pub mod rect;
pub mod region;
pub mod rtree;

pub use coord::{nm, um, Axis, Coord, Dir};
pub use interval::Interval;
pub use orient::Orient;
pub use point::{Point, Vector};
pub use rect::{HOverlap, Rect, VOverlap};
pub use region::Region;
pub use rtree::RectTree;

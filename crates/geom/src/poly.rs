//! Rectilinear polygon → rectangle decomposition.
//!
//! The paper keeps the database rectangle-only: *"polygons are converted
//! into simple rectangular structures"*. [`decompose`] slices a rectilinear
//! polygon into horizontal slabs between consecutive distinct y
//! coordinates of its vertices; inside each slab a parity scan over the
//! vertical edges yields the covered x-ranges.

use crate::coord::Coord;
use crate::point::Point;
use crate::rect::Rect;

/// Errors from polygon decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// Fewer than four vertices.
    TooFewVertices(usize),
    /// An edge is neither horizontal nor vertical.
    NotRectilinear { from: Point, to: Point },
    /// A slab had an odd number of crossing edges (self-intersecting or
    /// degenerate outline).
    OddCrossings { y: Coord },
}

impl std::fmt::Display for PolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyError::TooFewVertices(n) => {
                write!(f, "rectilinear polygon needs at least 4 vertices, got {n}")
            }
            PolyError::NotRectilinear { from, to } => {
                write!(f, "edge {from} -> {to} is neither horizontal nor vertical")
            }
            PolyError::OddCrossings { y } => {
                write!(f, "odd number of edge crossings in slab starting at y={y}")
            }
        }
    }
}

impl std::error::Error for PolyError {}

/// Decomposes a simple rectilinear polygon (vertices in order, implicitly
/// closed) into disjoint rectangles covering exactly its interior.
///
/// # Example
/// ```
/// use amgen_geom::{poly::decompose, Point};
/// // An L-shape.
/// let l = [
///     Point::new(0, 0), Point::new(10, 0), Point::new(10, 4),
///     Point::new(4, 4), Point::new(4, 10), Point::new(0, 10),
/// ];
/// let rects = decompose(&l).unwrap();
/// let area: i128 = rects.iter().map(|r| r.area()).sum();
/// assert_eq!(area, 10 * 4 + 4 * 6);
/// ```
pub fn decompose(vertices: &[Point]) -> Result<Vec<Rect>, PolyError> {
    if vertices.len() < 4 {
        return Err(PolyError::TooFewVertices(vertices.len()));
    }
    // Collect vertical edges and validate rectilinearity.
    let mut vedges: Vec<(Coord, Coord, Coord)> = Vec::new(); // (x, ylo, yhi)
    let mut ys: Vec<Coord> = Vec::new();
    let n = vertices.len();
    for i in 0..n {
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        if a.x == b.x && a.y != b.y {
            vedges.push((a.x, a.y.min(b.y), a.y.max(b.y)));
        } else if a.y == b.y && a.x != b.x {
            // horizontal edge: only contributes y breakpoints
        } else if a == b {
            continue; // repeated vertex, ignore
        } else {
            return Err(PolyError::NotRectilinear { from: a, to: b });
        }
        ys.push(a.y);
    }
    ys.sort_unstable();
    ys.dedup();
    let mut rects = Vec::new();
    for w in ys.windows(2) {
        let (y0, y1) = (w[0], w[1]);
        // Vertical edges crossing this slab, by x.
        let mut xs: Vec<Coord> = vedges
            .iter()
            .filter(|&&(_, lo, hi)| lo <= y0 && hi >= y1)
            .map(|&(x, _, _)| x)
            .collect();
        xs.sort_unstable();
        if !xs.len().is_multiple_of(2) {
            return Err(PolyError::OddCrossings { y: y0 });
        }
        for pair in xs.chunks(2) {
            if pair[0] != pair[1] {
                rects.push(Rect::new(pair[0], y0, pair[1], y1));
            }
        }
    }
    Ok(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: Coord, y: Coord) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn rectangle_decomposes_to_itself() {
        let sq = [p(0, 0), p(10, 0), p(10, 10), p(0, 10)];
        assert_eq!(decompose(&sq).unwrap(), vec![Rect::new(0, 0, 10, 10)]);
    }

    #[test]
    fn l_shape_two_slabs() {
        let l = [p(0, 0), p(10, 0), p(10, 4), p(4, 4), p(4, 10), p(0, 10)];
        let rects = decompose(&l).unwrap();
        assert_eq!(rects.len(), 2);
        let area: i128 = rects.iter().map(|r| r.area()).sum();
        assert_eq!(area, 64);
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn u_shape_has_split_slab() {
        // A "U": outer 12x10, notch 4..8 x 4..10.
        let u = [
            p(0, 0),
            p(12, 0),
            p(12, 10),
            p(8, 10),
            p(8, 4),
            p(4, 4),
            p(4, 10),
            p(0, 10),
        ];
        let rects = decompose(&u).unwrap();
        let area: i128 = rects.iter().map(|r| r.area()).sum();
        assert_eq!(area, 12 * 10 - 4 * 6);
        // The slab above y=4 splits into two arms.
        assert!(rects.iter().any(|r| r.x1 <= 4 && r.y0 >= 4));
        assert!(rects.iter().any(|r| r.x0 >= 8 && r.y0 >= 4));
    }

    #[test]
    fn diagonal_edge_is_rejected() {
        let bad = [p(0, 0), p(10, 5), p(10, 10), p(0, 10)];
        assert!(matches!(
            decompose(&bad),
            Err(PolyError::NotRectilinear { .. })
        ));
    }

    #[test]
    fn too_few_vertices_is_rejected() {
        assert_eq!(
            decompose(&[p(0, 0), p(1, 0)]),
            Err(PolyError::TooFewVertices(2))
        );
    }

    #[test]
    fn reversed_winding_gives_same_cover() {
        let l = [p(0, 0), p(10, 0), p(10, 4), p(4, 4), p(4, 10), p(0, 10)];
        let mut rev = l;
        rev.reverse();
        let a: i128 = decompose(&l).unwrap().iter().map(|r| r.area()).sum();
        let b: i128 = decompose(&rev).unwrap().iter().map(|r| r.area()).sum();
        assert_eq!(a, b);
    }
}

//! Scalar coordinate type, unit helpers and the Manhattan directions.

/// A coordinate in database units (1 du = 1 nm).
///
/// `i64` gives ±9.2 × 10¹⁸ nm of range; chip-scale layouts use well under
/// 10⁹, so all intermediate sums stay far from overflow. Areas are computed
/// in [`i128`] (see [`crate::Rect::area`]).
pub type Coord = i64;

/// Converts nanometres to database units (identity, kept for readability).
#[inline]
pub const fn nm(v: i64) -> Coord {
    v
}

/// Converts micrometres to database units.
///
/// # Example
/// ```
/// assert_eq!(amgen_geom::um(5), 5_000);
/// ```
#[inline]
pub const fn um(v: i64) -> Coord {
    v * 1_000
}

/// The two Manhattan axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// Horizontal (x) axis.
    X,
    /// Vertical (y) axis.
    Y,
}

impl Axis {
    /// Returns the perpendicular axis.
    #[inline]
    pub fn perp(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

/// A compaction / abutment direction.
///
/// In the paper's language the direction is the **movement direction** of
/// the compacted object: `compact(polycon, SOUTH, "poly")` slides the poly
/// contact southwards until it rests against the existing structure at the
/// minimum design-rule distance (Fig. 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Towards +y.
    North,
    /// Towards −y.
    South,
    /// Towards +x.
    East,
    /// Towards −x.
    West,
}

impl Dir {
    /// All four directions, in a fixed order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

    /// The axis along which this direction moves.
    #[inline]
    pub fn axis(self) -> Axis {
        match self {
            Dir::North | Dir::South => Axis::Y,
            Dir::East | Dir::West => Axis::X,
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
        }
    }

    /// +1 if the direction increases its axis coordinate, −1 otherwise.
    #[inline]
    pub fn sign(self) -> Coord {
        match self {
            Dir::North | Dir::East => 1,
            Dir::South | Dir::West => -1,
        }
    }

    /// Parses a direction name as used by the layout description language
    /// (`NORTH`, `SOUTH`, `EAST`, `WEST`, case-insensitive).
    pub fn parse(s: &str) -> Option<Dir> {
        match s.to_ascii_uppercase().as_str() {
            "NORTH" | "N" | "UP" => Some(Dir::North),
            "SOUTH" | "S" | "DOWN" => Some(Dir::South),
            "EAST" | "E" | "RIGHT" => Some(Dir::East),
            "WEST" | "W" | "LEFT" => Some(Dir::West),
            _ => None,
        }
    }
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dir::North => "NORTH",
            Dir::South => "SOUTH",
            Dir::East => "EAST",
            Dir::West => "WEST",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert_eq!(nm(250), 250);
        assert_eq!(um(1), 1_000);
        assert_eq!(um(592), 592_000);
    }

    #[test]
    fn axis_perp_is_involution() {
        assert_eq!(Axis::X.perp(), Axis::Y);
        assert_eq!(Axis::Y.perp(), Axis::X);
        for a in [Axis::X, Axis::Y] {
            assert_eq!(a.perp().perp(), a);
        }
    }

    #[test]
    fn dir_axis_and_sign() {
        assert_eq!(Dir::North.axis(), Axis::Y);
        assert_eq!(Dir::East.axis(), Axis::X);
        assert_eq!(Dir::North.sign(), 1);
        assert_eq!(Dir::South.sign(), -1);
        assert_eq!(Dir::East.sign(), 1);
        assert_eq!(Dir::West.sign(), -1);
    }

    #[test]
    fn dir_opposite_is_involution() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.opposite().axis(), d.axis());
            assert_eq!(d.opposite().sign(), -d.sign());
        }
    }

    #[test]
    fn dir_parse_accepts_dsl_spellings() {
        assert_eq!(Dir::parse("SOUTH"), Some(Dir::South));
        assert_eq!(Dir::parse("south"), Some(Dir::South));
        assert_eq!(Dir::parse("W"), Some(Dir::West));
        assert_eq!(Dir::parse("sideways"), None);
    }

    #[test]
    fn dir_display_round_trips() {
        for d in Dir::ALL {
            assert_eq!(Dir::parse(&d.to_string()), Some(d));
        }
    }
}

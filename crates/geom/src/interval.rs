//! Half-open one-dimensional intervals.
//!
//! The successive compactor works one axis at a time: whether two shapes
//! constrain each other depends on whether their projections on the
//! perpendicular axis — inflated by the required spacing — overlap.
//! [`Interval`] carries that projection arithmetic.

use crate::coord::Coord;

/// A half-open interval `[lo, hi)` on one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Coord,
    /// Exclusive upper bound.
    pub hi: Coord,
}

impl Interval {
    /// Creates an interval, sorting the bounds.
    #[inline]
    pub fn new(a: Coord, b: Coord) -> Interval {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Length (`hi − lo`).
    #[inline]
    pub fn len(&self) -> Coord {
        self.hi - self.lo
    }

    /// True if the interval has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// True if the interiors overlap.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// True if the closed intervals touch or overlap.
    #[inline]
    pub fn touches(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Overlap length (0 when disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Interval) -> Coord {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0)
    }

    /// Grows both ends by `d` (clamped to empty when over-deflated).
    pub fn inflated(&self, d: Coord) -> Interval {
        let lo = self.lo - d;
        let hi = self.hi + d;
        if lo > hi {
            let m = self.lo + self.len() / 2;
            Interval { lo: m, hi: m }
        } else {
            Interval { lo, hi }
        }
    }

    /// Intersection; `None` when the interiors are disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        })
    }

    /// True if `other` lies fully inside `self`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// True if the point is inside (half-open).
    #[inline]
    pub fn contains_point(&self, p: Coord) -> bool {
        self.lo <= p && p < self.hi
    }

    /// Hull of the two intervals.
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts() {
        assert_eq!(Interval::new(5, 2), Interval::new(2, 5));
        assert_eq!(Interval::new(2, 5).len(), 3);
        assert!(Interval::new(4, 4).is_empty());
    }

    #[test]
    fn overlap_vs_touch() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20);
        assert!(!a.overlaps(&b));
        assert!(a.touches(&b));
        assert!(a.overlaps(&Interval::new(9, 11)));
        assert_eq!(a.overlap_len(&Interval::new(9, 11)), 1);
        assert_eq!(a.overlap_len(&b), 0);
    }

    #[test]
    fn inflation() {
        let a = Interval::new(10, 20);
        assert_eq!(a.inflated(3), Interval::new(7, 23));
        assert!(a.inflated(-6).is_empty());
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersection(&b), Some(Interval::new(5, 10)));
        assert_eq!(a.intersection(&Interval::new(10, 20)), None);
        assert_eq!(a.hull(&b), Interval::new(0, 15));
        assert_eq!(a.hull(&Interval::new(7, 7)), a);
    }

    #[test]
    fn containment() {
        let a = Interval::new(0, 10);
        assert!(a.contains(&Interval::new(0, 10)));
        assert!(a.contains(&Interval::new(3, 7)));
        assert!(!a.contains(&Interval::new(3, 11)));
        assert!(a.contains_point(0));
        assert!(!a.contains_point(10));
    }
}

//! Rectangle sets with exact area bookkeeping and cover tests.
//!
//! [`Region`] implements the data structure behind the paper's latch-up
//! rule check (Fig. 1): a list of "solid" rectangles from which enclosing
//! "temporary" rectangles are subtracted one by one; the rule is fulfilled
//! when nothing remains.

use crate::coord::Coord;
use crate::rect::Rect;

/// A set of (possibly overlapping) rectangles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Region {
        Region::default()
    }

    /// Creates a region from one rectangle (empty rectangles are dropped).
    pub fn from_rect(r: Rect) -> Region {
        let mut reg = Region::new();
        reg.push(r);
        reg
    }

    /// Creates a region from rectangles (empty ones are dropped).
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Region {
        let mut reg = Region::new();
        for r in rects {
            reg.push(r);
        }
        reg
    }

    /// Adds a rectangle (no-op for empty rectangles).
    pub fn push(&mut self, r: Rect) {
        if !r.is_empty() {
            self.rects.push(r);
        }
    }

    /// The stored rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// True if nothing remains.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Bounding box of all rectangles.
    pub fn bbox(&self) -> Rect {
        self.rects
            .iter()
            .fold(Rect::EMPTY, |acc, r| acc.union_bbox(r))
    }

    /// Exact covered area, counting overlapping parts once.
    ///
    /// Uses a coordinate-compressed sweep; cost is O(n² log n) which is
    /// ample for module-sized rectangle counts.
    pub fn area(&self) -> i128 {
        if self.rects.is_empty() {
            return 0;
        }
        let mut xs: Vec<Coord> = Vec::with_capacity(self.rects.len() * 2);
        for r in &self.rects {
            xs.push(r.x0);
            xs.push(r.x1);
        }
        xs.sort_unstable();
        xs.dedup();
        let mut total: i128 = 0;
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            if x0 == x1 {
                continue;
            }
            // Union of y-intervals of rects spanning this slab.
            let mut ys: Vec<(Coord, Coord)> = self
                .rects
                .iter()
                .filter(|r| r.x0 <= x0 && r.x1 >= x1)
                .map(|r| (r.y0, r.y1))
                .collect();
            ys.sort_unstable();
            let mut covered: i128 = 0;
            let mut cur: Option<(Coord, Coord)> = None;
            for (lo, hi) in ys {
                match cur {
                    None => cur = Some((lo, hi)),
                    Some((clo, chi)) => {
                        if lo > chi {
                            covered += (chi - clo) as i128;
                            cur = Some((lo, hi));
                        } else {
                            cur = Some((clo, chi.max(hi)));
                        }
                    }
                }
            }
            if let Some((clo, chi)) = cur {
                covered += (chi - clo) as i128;
            }
            total += covered * (x1 - x0) as i128;
        }
        total
    }

    /// Exact perimeter of the covered area (outer + hole boundaries),
    /// counting overlapping parts once.
    ///
    /// Implemented by coordinate compression: the plane is cut into cells
    /// by all rectangle edges; every cell boundary between a covered and
    /// an uncovered cell contributes its length.
    pub fn perimeter(&self) -> i128 {
        if self.rects.is_empty() {
            return 0;
        }
        let mut xs: Vec<Coord> = Vec::new();
        let mut ys: Vec<Coord> = Vec::new();
        for r in &self.rects {
            xs.extend([r.x0, r.x1]);
            ys.extend([r.y0, r.y1]);
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        let nx = xs.len() - 1;
        let ny = ys.len() - 1;
        // covered[i][j] for cell (xs[i]..xs[i+1]) x (ys[j]..ys[j+1]).
        let mut covered = vec![false; nx * ny];
        for r in &self.rects {
            let i0 = xs.binary_search(&r.x0).expect("edge is a breakpoint");
            let i1 = xs.binary_search(&r.x1).expect("edge is a breakpoint");
            let j0 = ys.binary_search(&r.y0).expect("edge is a breakpoint");
            let j1 = ys.binary_search(&r.y1).expect("edge is a breakpoint");
            for i in i0..i1 {
                for j in j0..j1 {
                    covered[i * ny + j] = true;
                }
            }
        }
        let cell = |i: isize, j: isize| -> bool {
            if i < 0 || j < 0 || i as usize >= nx || j as usize >= ny {
                false
            } else {
                covered[i as usize * ny + j as usize]
            }
        };
        let mut total: i128 = 0;
        for i in 0..nx as isize {
            for j in 0..ny as isize {
                if !cell(i, j) {
                    continue;
                }
                let w = (xs[i as usize + 1] - xs[i as usize]) as i128;
                let h = (ys[j as usize + 1] - ys[j as usize]) as i128;
                if !cell(i - 1, j) {
                    total += h;
                }
                if !cell(i + 1, j) {
                    total += h;
                }
                if !cell(i, j - 1) {
                    total += w;
                }
                if !cell(i, j + 1) {
                    total += w;
                }
            }
        }
        total
    }

    /// Subtracts one rectangle from every stored rectangle, replacing each
    /// by its remainders — the paper's *"only the overlapping part is cut
    /// while the remaining part of the rectangle is still stored in the
    /// database"*.
    pub fn subtract_rect(&mut self, cutter: Rect) {
        if cutter.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.rects.len());
        for r in self.rects.drain(..) {
            out.extend(r.subtract(&cutter));
        }
        self.rects = out;
    }

    /// Subtracts every rectangle of `other`.
    pub fn subtract_region(&mut self, other: &Region) {
        for c in &other.rects {
            self.subtract_rect(*c);
            if self.rects.is_empty() {
                return;
            }
        }
    }

    /// True if the given cover rectangles jointly contain every rectangle
    /// of this region — the latch-up cover test of Fig. 1.
    ///
    /// # Example
    /// ```
    /// use amgen_geom::{Rect, Region};
    /// let active = Region::from_rect(Rect::new(0, 0, 8, 2));
    /// assert!(active.covered_by([Rect::new(0, 0, 5, 2), Rect::new(4, 0, 8, 2)]));
    /// assert!(!active.covered_by([Rect::new(0, 0, 5, 2)]));
    /// ```
    pub fn covered_by<I: IntoIterator<Item = Rect>>(&self, covers: I) -> bool {
        let mut remaining = self.clone();
        for c in covers {
            remaining.subtract_rect(c);
            if remaining.is_empty() {
                return true;
            }
        }
        remaining.is_empty()
    }

    /// True if any stored rectangle overlaps `r`.
    pub fn intersects(&self, r: &Rect) -> bool {
        self.rects.iter().any(|s| s.overlaps(r))
    }

    /// Translates the whole region.
    pub fn translated(&self, v: crate::point::Vector) -> Region {
        Region {
            rects: self.rects.iter().map(|r| r.translated(v)).collect(),
        }
    }

    /// Merges abutting/overlapping rectangles where possible by repeated
    /// pairwise joins of rectangles whose union is itself a rectangle.
    ///
    /// Used by the compactor's auto-connect step after same-potential
    /// geometry has been brought into contact.
    pub fn normalize(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            'outer: for i in 0..self.rects.len() {
                for j in (i + 1)..self.rects.len() {
                    let a = self.rects[i];
                    let b = self.rects[j];
                    if let Some(m) = merge_pair(&a, &b) {
                        self.rects[i] = m;
                        self.rects.swap_remove(j);
                        changed = true;
                        break 'outer;
                    }
                }
            }
        }
    }
}

/// Merges two rectangles when one contains the other or their union is an
/// exact rectangle (same x-range stacked in y, or same y-range side by
/// side, touching or overlapping).
fn merge_pair(a: &Rect, b: &Rect) -> Option<Rect> {
    if a.contains_rect(b) {
        return Some(*a);
    }
    if b.contains_rect(a) {
        return Some(*b);
    }
    if a.x0 == b.x0 && a.x1 == b.x1 && a.y_range().touches(&b.y_range()) {
        return Some(Rect::new(a.x0, a.y0.min(b.y0), a.x1, a.y1.max(b.y1)));
    }
    if a.y0 == b.y0 && a.y1 == b.y1 && a.x_range().touches(&b.x_range()) {
        return Some(Rect::new(a.x0.min(b.x0), a.y0, a.x1.max(b.x1), a.y1));
    }
    None
}

impl FromIterator<Rect> for Region {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Region {
        Region::from_rects(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_of_disjoint_rects() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(20, 0, 30, 5)]);
        assert_eq!(reg.area(), 150);
    }

    #[test]
    fn area_counts_overlap_once() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(5, 5, 15, 15)]);
        assert_eq!(reg.area(), 100 + 100 - 25);
    }

    #[test]
    fn area_of_empty_region() {
        assert_eq!(Region::new().area(), 0);
        assert_eq!(Region::from_rect(Rect::EMPTY).area(), 0);
    }

    #[test]
    fn subtract_cuts_and_keeps_remainder() {
        let mut reg = Region::from_rect(Rect::new(0, 0, 10, 10));
        reg.subtract_rect(Rect::new(0, 0, 10, 6));
        assert_eq!(reg.rects(), &[Rect::new(0, 6, 10, 10)]);
        assert_eq!(reg.area(), 40);
    }

    #[test]
    fn covered_by_two_partial_covers() {
        let reg = Region::from_rect(Rect::new(0, 0, 100, 20));
        assert!(reg.covered_by([Rect::new(-5, -5, 60, 25), Rect::new(50, -5, 105, 25)]));
        assert!(
            !reg.covered_by([Rect::new(-5, -5, 60, 25), Rect::new(70, -5, 105, 25)]),
            "a 10-wide gap remains uncovered"
        );
    }

    #[test]
    fn covered_by_empty_region_is_trivially_true() {
        assert!(Region::new().covered_by([]));
    }

    #[test]
    fn normalize_merges_stacked_rects() {
        let mut reg = Region::from_rects([
            Rect::new(0, 0, 10, 5),
            Rect::new(0, 5, 10, 10),
            Rect::new(0, 10, 10, 12),
        ]);
        reg.normalize();
        assert_eq!(reg.rects(), &[Rect::new(0, 0, 10, 12)]);
    }

    #[test]
    fn normalize_merges_contained_rects() {
        let mut reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(2, 2, 5, 5)]);
        reg.normalize();
        assert_eq!(reg.rects(), &[Rect::new(0, 0, 10, 10)]);
    }

    #[test]
    fn normalize_keeps_l_shape_as_two_rects() {
        let mut reg = Region::from_rects([Rect::new(0, 0, 10, 5), Rect::new(0, 5, 4, 10)]);
        reg.normalize();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.area(), 50 + 20);
    }

    #[test]
    fn perimeter_of_single_rect() {
        assert_eq!(Region::from_rect(Rect::new(0, 0, 10, 4)).perimeter(), 28);
        assert_eq!(Region::new().perimeter(), 0);
    }

    #[test]
    fn perimeter_of_abutting_rects_merges() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 4), Rect::new(10, 0, 20, 4)]);
        assert_eq!(reg.perimeter(), 2 * (20 + 4));
    }

    #[test]
    fn perimeter_of_overlapping_rects() {
        // Two 10x10 squares overlapping by 5 in x: outline is a 15x10
        // rectangle.
        let reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(5, 0, 15, 10)]);
        assert_eq!(reg.perimeter(), 2 * (15 + 10));
    }

    #[test]
    fn perimeter_of_l_shape() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 4), Rect::new(0, 4, 4, 10)]);
        // L outline: 10 + 4 + 6 + 6 + 4 + 10 = 40.
        assert_eq!(reg.perimeter(), 40);
    }

    #[test]
    fn perimeter_of_disjoint_rects_adds() {
        let reg = Region::from_rects([Rect::new(0, 0, 2, 2), Rect::new(10, 10, 12, 12)]);
        assert_eq!(reg.perimeter(), 16);
    }

    #[test]
    fn intersects_and_bbox() {
        let reg = Region::from_rects([Rect::new(0, 0, 2, 2), Rect::new(8, 8, 12, 12)]);
        assert!(reg.intersects(&Rect::new(1, 1, 9, 9)));
        assert!(!reg.intersects(&Rect::new(3, 3, 7, 7)));
        assert_eq!(reg.bbox(), Rect::new(0, 0, 12, 12));
    }

    #[test]
    fn subtract_region_empties_when_fully_covered() {
        let mut reg = Region::from_rect(Rect::new(0, 0, 4, 4));
        let cover = Region::from_rects([Rect::new(0, 0, 2, 4), Rect::new(2, 0, 4, 4)]);
        reg.subtract_region(&cover);
        assert!(reg.is_empty());
    }
}

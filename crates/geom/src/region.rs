//! Rectangle sets with exact area bookkeeping and cover tests.
//!
//! [`Region`] implements the data structure behind the paper's latch-up
//! rule check (Fig. 1): a list of "solid" rectangles from which enclosing
//! "temporary" rectangles are subtracted one by one; the rule is fulfilled
//! when nothing remains.

use crate::coord::Coord;
use crate::rect::Rect;

/// A set of (possibly overlapping) rectangles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Region {
    rects: Vec<Rect>,
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Region {
        Region::default()
    }

    /// Creates a region from one rectangle (empty rectangles are dropped).
    pub fn from_rect(r: Rect) -> Region {
        let mut reg = Region::new();
        reg.push(r);
        reg
    }

    /// Creates a region from rectangles (empty ones are dropped).
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Region {
        let mut reg = Region::new();
        for r in rects {
            reg.push(r);
        }
        reg
    }

    /// Adds a rectangle (no-op for empty rectangles).
    pub fn push(&mut self, r: Rect) {
        if !r.is_empty() {
            self.rects.push(r);
        }
    }

    /// The stored rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// True if nothing remains.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Number of stored rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Bounding box of all rectangles.
    pub fn bbox(&self) -> Rect {
        self.rects
            .iter()
            .fold(Rect::EMPTY, |acc, r| acc.union_bbox(r))
    }

    /// Exact covered area, counting overlapping parts once.
    ///
    /// Uses a coordinate-compressed sweep; cost is O(n² log n) which is
    /// ample for module-sized rectangle counts.
    pub fn area(&self) -> i128 {
        if self.rects.is_empty() {
            return 0;
        }
        let mut xs: Vec<Coord> = Vec::with_capacity(self.rects.len() * 2);
        for r in &self.rects {
            xs.push(r.x0);
            xs.push(r.x1);
        }
        xs.sort_unstable();
        xs.dedup();
        let mut total: i128 = 0;
        for w in xs.windows(2) {
            let (x0, x1) = (w[0], w[1]);
            if x0 == x1 {
                continue;
            }
            // Union of y-intervals of rects spanning this slab.
            let mut ys: Vec<(Coord, Coord)> = self
                .rects
                .iter()
                .filter(|r| r.x0 <= x0 && r.x1 >= x1)
                .map(|r| (r.y0, r.y1))
                .collect();
            ys.sort_unstable();
            let mut covered: i128 = 0;
            let mut cur: Option<(Coord, Coord)> = None;
            for (lo, hi) in ys {
                match cur {
                    None => cur = Some((lo, hi)),
                    Some((clo, chi)) => {
                        if lo > chi {
                            covered += (chi - clo) as i128;
                            cur = Some((lo, hi));
                        } else {
                            cur = Some((clo, chi.max(hi)));
                        }
                    }
                }
            }
            if let Some((clo, chi)) = cur {
                covered += (chi - clo) as i128;
            }
            total += covered * (x1 - x0) as i128;
        }
        total
    }

    /// Exact perimeter of the covered area (outer + hole boundaries),
    /// counting overlapping parts once.
    ///
    /// Implemented by coordinate compression: the plane is cut into cells
    /// by all rectangle edges; every cell boundary between a covered and
    /// an uncovered cell contributes its length.
    pub fn perimeter(&self) -> i128 {
        if self.rects.is_empty() {
            return 0;
        }
        let mut xs: Vec<Coord> = Vec::new();
        let mut ys: Vec<Coord> = Vec::new();
        for r in &self.rects {
            xs.extend([r.x0, r.x1]);
            ys.extend([r.y0, r.y1]);
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        let nx = xs.len() - 1;
        let ny = ys.len() - 1;
        // covered[i][j] for cell (xs[i]..xs[i+1]) x (ys[j]..ys[j+1]).
        let mut covered = vec![false; nx * ny];
        for r in &self.rects {
            let i0 = xs.binary_search(&r.x0).expect("edge is a breakpoint");
            let i1 = xs.binary_search(&r.x1).expect("edge is a breakpoint");
            let j0 = ys.binary_search(&r.y0).expect("edge is a breakpoint");
            let j1 = ys.binary_search(&r.y1).expect("edge is a breakpoint");
            for i in i0..i1 {
                for j in j0..j1 {
                    covered[i * ny + j] = true;
                }
            }
        }
        let cell = |i: isize, j: isize| -> bool {
            if i < 0 || j < 0 || i as usize >= nx || j as usize >= ny {
                false
            } else {
                covered[i as usize * ny + j as usize]
            }
        };
        let mut total: i128 = 0;
        for i in 0..nx as isize {
            for j in 0..ny as isize {
                if !cell(i, j) {
                    continue;
                }
                let w = (xs[i as usize + 1] - xs[i as usize]) as i128;
                let h = (ys[j as usize + 1] - ys[j as usize]) as i128;
                if !cell(i - 1, j) {
                    total += h;
                }
                if !cell(i + 1, j) {
                    total += h;
                }
                if !cell(i, j - 1) {
                    total += w;
                }
                if !cell(i, j + 1) {
                    total += w;
                }
            }
        }
        total
    }

    /// Subtracts one rectangle from every stored rectangle, replacing each
    /// by its remainders — the paper's *"only the overlapping part is cut
    /// while the remaining part of the rectangle is still stored in the
    /// database"*.
    pub fn subtract_rect(&mut self, cutter: Rect) {
        if cutter.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.rects.len());
        for r in self.rects.drain(..) {
            out.extend(r.subtract(&cutter));
        }
        self.rects = out;
    }

    /// Subtracts every rectangle of `other`.
    ///
    /// Small operand pairs run the classic sequential 16-case
    /// subtraction (allocation-light, fastest at module scale); larger
    /// ones run the banded x-sweep. The two paths cover the identical
    /// point set but may decompose the remainder into different
    /// rectangle lists — only set semantics are part of the contract.
    pub fn subtract_region(&mut self, other: &Region) {
        if self.rects.is_empty() || other.rects.is_empty() {
            return;
        }
        if self.rects.len().saturating_mul(other.rects.len()) <= BAND_THRESHOLD {
            self.subtract_region_allpairs(other);
        } else {
            self.subtract_region_banded(other);
        }
    }

    /// The pre-index all-pairs subtraction: one [`subtract_rect`]
    /// (16-case) pass per cutter. Kept public (hidden) as the reference
    /// implementation the banded path is property-tested against.
    ///
    /// [`subtract_rect`]: Region::subtract_rect
    #[doc(hidden)]
    pub fn subtract_region_allpairs(&mut self, other: &Region) {
        for c in &other.rects {
            self.subtract_rect(*c);
            if self.rects.is_empty() {
                return;
            }
        }
    }

    /// Banded subtraction: sweep the x-breakpoints of both operands and
    /// do one-dimensional interval arithmetic per band, coalescing
    /// x-adjacent bands with identical column footprints. Replaces the
    /// all-pairs cascade for chip-scale operands; output is disjoint,
    /// ordered left-to-right then bottom-to-top.
    #[doc(hidden)]
    pub fn subtract_region_banded(&mut self, other: &Region) {
        self.rects = band_subtract(&self.rects, &other.rects, false);
    }

    /// True if the given cover rectangles jointly contain every rectangle
    /// of this region — the latch-up cover test of Fig. 1.
    ///
    /// Dispatches like [`subtract_region`](Region::subtract_region):
    /// all-pairs subtraction for small inputs, banded sweep at scale.
    /// The result is a pure set predicate, identical on both paths.
    ///
    /// # Example
    /// ```
    /// use amgen_geom::{Rect, Region};
    /// let active = Region::from_rect(Rect::new(0, 0, 8, 2));
    /// assert!(active.covered_by([Rect::new(0, 0, 5, 2), Rect::new(4, 0, 8, 2)]));
    /// assert!(!active.covered_by([Rect::new(0, 0, 5, 2)]));
    /// ```
    pub fn covered_by<I: IntoIterator<Item = Rect>>(&self, covers: I) -> bool {
        if self.rects.is_empty() {
            return true;
        }
        let covers: Vec<Rect> = covers.into_iter().collect();
        if self.rects.len().saturating_mul(covers.len()) <= BAND_THRESHOLD {
            self.covered_by_allpairs(covers)
        } else {
            self.covered_by_banded(&covers)
        }
    }

    /// The pre-index cover test: clone and subtract covers one by one.
    /// Reference implementation for the banded path's property tests.
    #[doc(hidden)]
    pub fn covered_by_allpairs<I: IntoIterator<Item = Rect>>(&self, covers: I) -> bool {
        let mut remaining = self.clone();
        for c in covers {
            remaining.subtract_rect(c);
            if remaining.is_empty() {
                return true;
            }
        }
        remaining.is_empty()
    }

    /// Banded cover test: the x-sweep of
    /// [`subtract_region_banded`](Region::subtract_region_banded) with an
    /// early exit on the first uncovered band.
    #[doc(hidden)]
    pub fn covered_by_banded(&self, covers: &[Rect]) -> bool {
        band_subtract(&self.rects, covers, true).is_empty()
    }

    /// True if any stored rectangle overlaps `r`.
    pub fn intersects(&self, r: &Rect) -> bool {
        self.rects.iter().any(|s| s.overlaps(r))
    }

    /// Translates the whole region.
    pub fn translated(&self, v: crate::point::Vector) -> Region {
        Region {
            rects: self.rects.iter().map(|r| r.translated(v)).collect(),
        }
    }

    /// Merges abutting/overlapping rectangles where possible by repeated
    /// pairwise joins of rectangles whose union is itself a rectangle.
    ///
    /// Used by the compactor's auto-connect step after same-potential
    /// geometry has been brought into contact.
    pub fn normalize(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            'outer: for i in 0..self.rects.len() {
                for j in (i + 1)..self.rects.len() {
                    let a = self.rects[i];
                    let b = self.rects[j];
                    if let Some(m) = merge_pair(&a, &b) {
                        self.rects[i] = m;
                        self.rects.swap_remove(j);
                        changed = true;
                        break 'outer;
                    }
                }
            }
        }
    }
}

/// Operand-size product up to which the sequential 16-case path beats
/// the banded sweep (no event sort, no interval buffers).
const BAND_THRESHOLD: usize = 256;

/// One x-sweep event: a rectangle's y-interval entering (`open`) or
/// leaving the active set at `x`, on the solid or the cutter side.
#[derive(Clone, Copy)]
struct Ev {
    x: Coord,
    open: bool,
    solid: bool,
    y0: Coord,
    y1: Coord,
}

/// Sorted union of a multiset of half-open intervals (touching intervals
/// merge — `[a,b) ∪ [b,c) = [a,c)`).
fn union_intervals(v: &[(Coord, Coord)]) -> Vec<(Coord, Coord)> {
    let mut s = v.to_vec();
    s.sort_unstable();
    let mut out: Vec<(Coord, Coord)> = Vec::with_capacity(s.len());
    for (lo, hi) in s {
        match out.last_mut() {
            Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// `su − cu` for two sorted disjoint interval lists.
fn subtract_intervals(su: &[(Coord, Coord)], cu: &[(Coord, Coord)]) -> Vec<(Coord, Coord)> {
    let mut out = Vec::new();
    let mut ci = 0;
    for &(lo, hi) in su {
        let mut lo = lo;
        while ci < cu.len() && cu[ci].1 <= lo {
            ci += 1;
        }
        let mut cj = ci;
        while lo < hi && cj < cu.len() && cu[cj].0 < hi {
            let (clo, chi) = cu[cj];
            if clo > lo {
                out.push((lo, clo.min(hi)));
            }
            lo = lo.max(chi);
            cj += 1;
        }
        if lo < hi {
            out.push((lo, hi));
        }
    }
    out
}

/// The banded sweep: `solid − cutters` as a disjoint rectangle list.
///
/// Both operands' x-edges cut the plane into vertical bands; inside one
/// band every rectangle is just a y-interval, so the subtraction is
/// one-dimensional. Bands whose column footprint matches the previous
/// band coalesce back into wide rectangles. With `stop_early`, returns a
/// single witness rectangle as soon as any band has a remainder (the
/// cover test needs only emptiness).
fn band_subtract(solid: &[Rect], cutters: &[Rect], stop_early: bool) -> Vec<Rect> {
    if solid.is_empty() {
        return Vec::new();
    }
    let hull = solid.iter().fold(solid[0], |a, r| a.union_bbox(r));
    let mut evs: Vec<Ev> = Vec::with_capacity(2 * (solid.len() + cutters.len()));
    let push_rect = |evs: &mut Vec<Ev>, r: &Rect, solid: bool| {
        evs.push(Ev {
            x: r.x0,
            open: true,
            solid,
            y0: r.y0,
            y1: r.y1,
        });
        evs.push(Ev {
            x: r.x1,
            open: false,
            solid,
            y0: r.y0,
            y1: r.y1,
        });
    };
    for r in solid {
        push_rect(&mut evs, r, true);
    }
    for c in cutters {
        // Cutters that miss the solid hull can only add breakpoints.
        if c.overlaps(&hull) {
            push_rect(&mut evs, c, false);
        }
    }
    evs.sort_unstable_by_key(|e| e.x);
    let mut act_s: Vec<(Coord, Coord)> = Vec::new();
    let mut act_c: Vec<(Coord, Coord)> = Vec::new();
    let mut out: Vec<Rect> = Vec::new();
    // The open run of bands sharing one column footprint.
    let mut run: Vec<(Coord, Coord)> = Vec::new();
    let (mut run_x0, mut run_x1) = (0, 0);
    let flush = |out: &mut Vec<Rect>, run: &[(Coord, Coord)], x0: Coord, x1: Coord| {
        out.extend(run.iter().map(|&(lo, hi)| Rect::new(x0, lo, x1, hi)));
    };
    let mut i = 0;
    while i < evs.len() {
        let x = evs[i].x;
        while i < evs.len() && evs[i].x == x {
            let e = evs[i];
            i += 1;
            let set = if e.solid { &mut act_s } else { &mut act_c };
            if e.open {
                set.push((e.y0, e.y1));
            } else {
                let p = set
                    .iter()
                    .position(|&iv| iv == (e.y0, e.y1))
                    .expect("interval was opened");
                set.swap_remove(p);
            }
        }
        let Some(next) = evs.get(i) else { break };
        let ys = if act_s.is_empty() {
            Vec::new()
        } else {
            subtract_intervals(&union_intervals(&act_s), &union_intervals(&act_c))
        };
        if stop_early {
            if let Some(&(lo, hi)) = ys.first() {
                return vec![Rect::new(x, lo, next.x, hi)];
            }
        }
        if ys == run && run_x1 == x {
            run_x1 = next.x;
        } else {
            flush(&mut out, &run, run_x0, run_x1);
            run = ys;
            run_x0 = x;
            run_x1 = next.x;
        }
    }
    flush(&mut out, &run, run_x0, run_x1);
    out
}

/// Merges two rectangles when one contains the other or their union is an
/// exact rectangle (same x-range stacked in y, or same y-range side by
/// side, touching or overlapping).
fn merge_pair(a: &Rect, b: &Rect) -> Option<Rect> {
    if a.contains_rect(b) {
        return Some(*a);
    }
    if b.contains_rect(a) {
        return Some(*b);
    }
    if a.x0 == b.x0 && a.x1 == b.x1 && a.y_range().touches(&b.y_range()) {
        return Some(Rect::new(a.x0, a.y0.min(b.y0), a.x1, a.y1.max(b.y1)));
    }
    if a.y0 == b.y0 && a.y1 == b.y1 && a.x_range().touches(&b.x_range()) {
        return Some(Rect::new(a.x0.min(b.x0), a.y0, a.x1.max(b.x1), a.y1));
    }
    None
}

impl FromIterator<Rect> for Region {
    fn from_iter<T: IntoIterator<Item = Rect>>(iter: T) -> Region {
        Region::from_rects(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_of_disjoint_rects() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(20, 0, 30, 5)]);
        assert_eq!(reg.area(), 150);
    }

    #[test]
    fn area_counts_overlap_once() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(5, 5, 15, 15)]);
        assert_eq!(reg.area(), 100 + 100 - 25);
    }

    #[test]
    fn area_of_empty_region() {
        assert_eq!(Region::new().area(), 0);
        assert_eq!(Region::from_rect(Rect::EMPTY).area(), 0);
    }

    #[test]
    fn subtract_cuts_and_keeps_remainder() {
        let mut reg = Region::from_rect(Rect::new(0, 0, 10, 10));
        reg.subtract_rect(Rect::new(0, 0, 10, 6));
        assert_eq!(reg.rects(), &[Rect::new(0, 6, 10, 10)]);
        assert_eq!(reg.area(), 40);
    }

    #[test]
    fn covered_by_two_partial_covers() {
        let reg = Region::from_rect(Rect::new(0, 0, 100, 20));
        assert!(reg.covered_by([Rect::new(-5, -5, 60, 25), Rect::new(50, -5, 105, 25)]));
        assert!(
            !reg.covered_by([Rect::new(-5, -5, 60, 25), Rect::new(70, -5, 105, 25)]),
            "a 10-wide gap remains uncovered"
        );
    }

    #[test]
    fn covered_by_empty_region_is_trivially_true() {
        assert!(Region::new().covered_by([]));
    }

    #[test]
    fn normalize_merges_stacked_rects() {
        let mut reg = Region::from_rects([
            Rect::new(0, 0, 10, 5),
            Rect::new(0, 5, 10, 10),
            Rect::new(0, 10, 10, 12),
        ]);
        reg.normalize();
        assert_eq!(reg.rects(), &[Rect::new(0, 0, 10, 12)]);
    }

    #[test]
    fn normalize_merges_contained_rects() {
        let mut reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(2, 2, 5, 5)]);
        reg.normalize();
        assert_eq!(reg.rects(), &[Rect::new(0, 0, 10, 10)]);
    }

    #[test]
    fn normalize_keeps_l_shape_as_two_rects() {
        let mut reg = Region::from_rects([Rect::new(0, 0, 10, 5), Rect::new(0, 5, 4, 10)]);
        reg.normalize();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.area(), 50 + 20);
    }

    #[test]
    fn perimeter_of_single_rect() {
        assert_eq!(Region::from_rect(Rect::new(0, 0, 10, 4)).perimeter(), 28);
        assert_eq!(Region::new().perimeter(), 0);
    }

    #[test]
    fn perimeter_of_abutting_rects_merges() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 4), Rect::new(10, 0, 20, 4)]);
        assert_eq!(reg.perimeter(), 2 * (20 + 4));
    }

    #[test]
    fn perimeter_of_overlapping_rects() {
        // Two 10x10 squares overlapping by 5 in x: outline is a 15x10
        // rectangle.
        let reg = Region::from_rects([Rect::new(0, 0, 10, 10), Rect::new(5, 0, 15, 10)]);
        assert_eq!(reg.perimeter(), 2 * (15 + 10));
    }

    #[test]
    fn perimeter_of_l_shape() {
        let reg = Region::from_rects([Rect::new(0, 0, 10, 4), Rect::new(0, 4, 4, 10)]);
        // L outline: 10 + 4 + 6 + 6 + 4 + 10 = 40.
        assert_eq!(reg.perimeter(), 40);
    }

    #[test]
    fn perimeter_of_disjoint_rects_adds() {
        let reg = Region::from_rects([Rect::new(0, 0, 2, 2), Rect::new(10, 10, 12, 12)]);
        assert_eq!(reg.perimeter(), 16);
    }

    #[test]
    fn intersects_and_bbox() {
        let reg = Region::from_rects([Rect::new(0, 0, 2, 2), Rect::new(8, 8, 12, 12)]);
        assert!(reg.intersects(&Rect::new(1, 1, 9, 9)));
        assert!(!reg.intersects(&Rect::new(3, 3, 7, 7)));
        assert_eq!(reg.bbox(), Rect::new(0, 0, 12, 12));
    }

    #[test]
    fn subtract_region_empties_when_fully_covered() {
        let mut reg = Region::from_rect(Rect::new(0, 0, 4, 4));
        let cover = Region::from_rects([Rect::new(0, 0, 2, 4), Rect::new(2, 0, 4, 4)]);
        reg.subtract_region(&cover);
        assert!(reg.is_empty());
    }

    /// Deterministic pseudo-random rectangles for path-equivalence tests.
    fn random_region(n: usize, seed: u64) -> Region {
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 41) as Coord
        };
        Region::from_rects((0..n).map(|_| {
            let (x, y, w, h) = (next(), next(), 1 + next() % 12, 1 + next() % 12);
            Rect::new(x, y, x + w, y + h)
        }))
    }

    fn membership_grid(a: &Region, b: &Region) {
        use crate::point::Point;
        let hull = a.bbox().union_bbox(&b.bbox()).inflated(1);
        for x in hull.x0..hull.x1 {
            for y in hull.y0..hull.y1 {
                let p = Point::new(x, y);
                let ia = a.rects().iter().any(|r| r.contains_point(p));
                let ib = b.rects().iter().any(|r| r.contains_point(p));
                assert_eq!(ia, ib, "membership differs at ({x},{y})");
            }
        }
    }

    #[test]
    fn banded_subtract_matches_allpairs() {
        for seed in 0..12u64 {
            let solid = random_region(10 + seed as usize, 100 + seed);
            let cutters = random_region(8 + seed as usize, 500 + seed);
            let mut naive = solid.clone();
            naive.subtract_region_allpairs(&cutters);
            let mut banded = solid.clone();
            banded.subtract_region_banded(&cutters);
            assert_eq!(naive.area(), banded.area(), "seed {seed}");
            membership_grid(&naive, &banded);
            assert_eq!(
                solid.covered_by_banded(cutters.rects()),
                solid.covered_by_allpairs(cutters.rects().iter().copied()),
                "cover test differs, seed {seed}"
            );
        }
    }

    #[test]
    fn banded_output_is_disjoint() {
        let solid = random_region(20, 9);
        let cutters = random_region(6, 77);
        let mut banded = solid.clone();
        banded.subtract_region_banded(&cutters);
        for (i, a) in banded.rects().iter().enumerate() {
            for b in &banded.rects()[i + 1..] {
                assert!(
                    !a.overlaps(b),
                    "banded output must be disjoint: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn banded_handles_touching_cutters() {
        // A cutter that only abuts must not cut (interior semantics).
        let solid = Region::from_rect(Rect::new(0, 0, 10, 10));
        let mut banded = solid.clone();
        banded.subtract_region_banded(&Region::from_rect(Rect::new(10, 0, 20, 10)));
        assert_eq!(banded.area(), 100);
        assert!(solid.covered_by_banded(&[Rect::new(0, 0, 10, 10)]));
        assert!(!solid.covered_by_banded(&[Rect::new(0, 0, 10, 9)]));
    }
}

//! The eight Manhattan orientations (D4 symmetry group).
//!
//! Matched analog devices are placed in mirrored and rotated copies — the
//! cross-coupled, common-centroid arrangements of the paper's §3 (blocks C
//! and E). [`Orient`] applies those transforms to points and rectangles.

use crate::point::Point;
use crate::rect::Rect;

/// An element of the square's symmetry group: a rotation by a multiple of
/// 90° optionally preceded by a mirror about the y-axis (`x → −x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orient {
    /// Identity.
    #[default]
    R0,
    /// Rotate 90° counter-clockwise.
    R90,
    /// Rotate 180°.
    R180,
    /// Rotate 270° counter-clockwise.
    R270,
    /// Mirror about the y-axis.
    MX,
    /// Mirror then rotate 90°.
    MX90,
    /// Mirror then rotate 180° (= mirror about the x-axis).
    MX180,
    /// Mirror then rotate 270°.
    MX270,
}

impl Orient {
    /// All eight orientations.
    pub const ALL: [Orient; 8] = [
        Orient::R0,
        Orient::R90,
        Orient::R180,
        Orient::R270,
        Orient::MX,
        Orient::MX90,
        Orient::MX180,
        Orient::MX270,
    ];

    /// Applies the orientation to a point (about the origin).
    pub fn apply_point(self, p: Point) -> Point {
        let m = match self {
            Orient::R0 | Orient::R90 | Orient::R180 | Orient::R270 => p,
            _ => Point::new(-p.x, p.y),
        };
        match self {
            Orient::R0 | Orient::MX => m,
            Orient::R90 | Orient::MX90 => Point::new(-m.y, m.x),
            Orient::R180 | Orient::MX180 => Point::new(-m.x, -m.y),
            Orient::R270 | Orient::MX270 => Point::new(m.y, -m.x),
        }
    }

    /// Applies the orientation to a rectangle (about the origin).
    pub fn apply_rect(self, r: Rect) -> Rect {
        let a = self.apply_point(r.ll());
        let b = self.apply_point(r.ur());
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Composes two orientations: `self.then(o)` applies `self` first.
    pub fn then(self, o: Orient) -> Orient {
        // Composition found by probing two independent points.
        let p1 = Point::new(1, 0);
        let p2 = Point::new(0, 1);
        let q1 = o.apply_point(self.apply_point(p1));
        let q2 = o.apply_point(self.apply_point(p2));
        for c in Orient::ALL {
            if c.apply_point(p1) == q1 && c.apply_point(p2) == q2 {
                return c;
            }
        }
        unreachable!("D4 is closed under composition")
    }

    /// The inverse orientation.
    pub fn inverse(self) -> Orient {
        for c in Orient::ALL {
            if self.then(c) == Orient::R0 {
                return c;
            }
        }
        unreachable!("every D4 element has an inverse")
    }

    /// True for the four mirrored orientations.
    pub fn is_mirrored(self) -> bool {
        matches!(
            self,
            Orient::MX | Orient::MX90 | Orient::MX180 | Orient::MX270
        )
    }

    /// True if the orientation swaps the x and y extents of a rectangle.
    pub fn swaps_axes(self) -> bool {
        matches!(
            self,
            Orient::R90 | Orient::R270 | Orient::MX90 | Orient::MX270
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations_act_on_points() {
        let p = Point::new(2, 1);
        assert_eq!(Orient::R0.apply_point(p), p);
        assert_eq!(Orient::R90.apply_point(p), Point::new(-1, 2));
        assert_eq!(Orient::R180.apply_point(p), Point::new(-2, -1));
        assert_eq!(Orient::R270.apply_point(p), Point::new(1, -2));
        assert_eq!(Orient::MX.apply_point(p), Point::new(-2, 1));
        assert_eq!(Orient::MX180.apply_point(p), Point::new(2, -1));
    }

    #[test]
    fn rect_transform_preserves_area() {
        let r = Rect::new(1, 2, 5, 9);
        for o in Orient::ALL {
            let t = o.apply_rect(r);
            assert_eq!(t.area(), r.area(), "{o:?}");
            if o.swaps_axes() {
                assert_eq!(t.width(), r.height());
            } else {
                assert_eq!(t.width(), r.width());
            }
        }
    }

    #[test]
    fn group_axioms() {
        for a in Orient::ALL {
            assert_eq!(a.then(Orient::R0), a);
            assert_eq!(Orient::R0.then(a), a);
            assert_eq!(a.then(a.inverse()), Orient::R0);
            for b in Orient::ALL {
                // Composition agrees with point action.
                let p = Point::new(3, 7);
                assert_eq!(
                    a.then(b).apply_point(p),
                    b.apply_point(a.apply_point(p)),
                    "{a:?} then {b:?}"
                );
            }
        }
    }

    #[test]
    fn rotation_subgroup_is_cyclic() {
        assert_eq!(Orient::R90.then(Orient::R90), Orient::R180);
        assert_eq!(Orient::R90.then(Orient::R180), Orient::R270);
        assert_eq!(Orient::R90.then(Orient::R270), Orient::R0);
    }

    #[test]
    fn mirror_classification() {
        assert!(Orient::MX.is_mirrored());
        assert!(!Orient::R180.is_mirrored());
        assert!(Orient::R90.swaps_axes());
        assert!(!Orient::MX.swaps_axes());
    }
}

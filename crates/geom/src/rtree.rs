//! A packed R-tree over payload-carrying rectangles.
//!
//! [`RectTree`] is the window-query engine behind the layout database's
//! spatial index: it answers *"which rectangles come near this window?"*
//! in logarithmic time instead of a linear scan. The tree is bulk-loaded
//! once (Sort-Tile-Recursive packing) and immutable afterwards — the
//! database rebuilds it lazily after mutations, which matches the
//! generator pipeline where bursts of construction alternate with bursts
//! of read-only analysis (DRC, extraction, latch-up).
//!
//! # Candidate semantics
//!
//! Queries return a **candidate superset** under closed-interval
//! comparison of the raw corner coordinates: a stored rectangle is a
//! candidate for `window` when their coordinate ranges touch, which
//! covers strict interior overlap, edge/corner abutment, and degenerate
//! (zero-area) rectangles alike. Callers re-apply their exact predicate
//! ([`Rect::overlaps`], [`Rect::abuts`], a gap rule, …) on the
//! candidates; the tree only guarantees it never *misses* one.
//!
//! # Determinism
//!
//! Construction sorts entries by a total key (tile centre, corner,
//! payload), so the packing — and therefore every traversal order — is a
//! pure function of the input multiset. [`RectTree::query`] additionally
//! sorts the surviving payloads ascending, giving consumers the same
//! iteration order a linear scan over payload-ordered storage would
//! produce. That property is what lets the DRC/extract rewrites stay
//! byte-identical with their linear-scan baselines.

use crate::coord::Coord;
use crate::rect::Rect;

/// Leaf fan-out: entries per leaf and children per internal node.
const FANOUT: usize = 8;

/// Closed-interval proximity of raw corner coordinates. True when the
/// coordinate ranges touch in both axes — the candidate predicate. Unlike
/// [`Rect::overlaps`]/[`Rect::abuts`] it deliberately does *not* special
/// case empty rectangles: a degenerate rectangle still has a position,
/// and a scan-equivalent index must surface it to the caller's filter.
#[inline]
fn near(a: &Rect, b: &Rect) -> bool {
    a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1
}

/// Coordinate hull of two rectangles, keeping degenerate positions
/// (unlike [`Rect::union_bbox`], which drops empty operands).
#[inline]
fn hull(a: &Rect, b: &Rect) -> Rect {
    Rect {
        x0: a.x0.min(b.x0),
        y0: a.y0.min(b.y0),
        x1: a.x1.max(b.x1),
        y1: a.y1.max(b.y1),
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Coordinate hull of everything below this node.
    bbox: Rect,
    /// Leaf: range into `entries`. Internal: range into `nodes`.
    first: u32,
    count: u32,
    leaf: bool,
}

/// An immutable, bulk-loaded R-tree over `(Rect, payload)` entries.
///
/// Payloads are opaque `u32`s — shape indices in the layout database,
/// fragment indices in the extractor. See the module docs for candidate
/// semantics and the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct RectTree {
    entries: Vec<(Rect, u32)>,
    /// Level by level, leaves first; the root is the last node.
    nodes: Vec<Node>,
}

impl RectTree {
    /// Bulk-loads a tree with Sort-Tile-Recursive packing.
    ///
    /// Deterministic: the packing depends only on the multiset of
    /// entries (ties broken by corner coordinates, then payload).
    pub fn build<I: IntoIterator<Item = (Rect, u32)>>(items: I) -> RectTree {
        let mut entries: Vec<(Rect, u32)> = items.into_iter().collect();
        if entries.is_empty() {
            return RectTree::default();
        }
        let leaves = entries.len().div_ceil(FANOUT);
        // Vertical slices of √(leaves) tiles, each sliced by y: classic STR.
        let slice = leaves.isqrt().max(1);
        let per_slice = slice * FANOUT;
        entries.sort_unstable_by_key(|(r, p)| (r.x0 + r.x1, r.x0, r.y0, *p));
        for chunk in entries.chunks_mut(per_slice) {
            chunk.sort_unstable_by_key(|(r, p)| (r.y0 + r.y1, r.y0, r.x0, *p));
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(2 * leaves);
        let mut first = 0u32;
        for chunk in entries.chunks(FANOUT) {
            let bbox = chunk
                .iter()
                .map(|(r, _)| r)
                .fold(chunk[0].0, |acc, r| hull(&acc, r));
            nodes.push(Node {
                bbox,
                first,
                count: chunk.len() as u32,
                leaf: true,
            });
            first += chunk.len() as u32;
        }
        // Pack each level's consecutive nodes under parents until one
        // root remains. Consecutive grouping keeps the STR locality.
        let (mut lo, mut hi) = (0usize, nodes.len());
        while hi - lo > 1 {
            for start in (lo..hi).step_by(FANOUT) {
                let end = (start + FANOUT).min(hi);
                let bbox = nodes[start..end]
                    .iter()
                    .fold(nodes[start].bbox, |acc, n| hull(&acc, &n.bbox));
                nodes.push(Node {
                    bbox,
                    first: start as u32,
                    count: (end - start) as u32,
                    leaf: false,
                });
            }
            lo = hi;
            hi = nodes.len();
        }
        RectTree { entries, nodes }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the tree holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Coordinate hull of every entry ([`Rect::EMPTY`] when empty).
    /// Degenerate entries contribute their position to the hull.
    pub fn bounds(&self) -> Rect {
        self.nodes.last().map_or(Rect::EMPTY, |root| root.bbox)
    }

    /// Calls `f(payload, rect)` for every candidate near `window`
    /// (closed-interval test, see the module docs), in **tree order** —
    /// deterministic for a given tree, but *not* payload-ascending. Use
    /// [`query`](Self::query) when ordering matters.
    #[inline]
    pub fn for_each_candidate<F: FnMut(u32, &Rect)>(&self, window: &Rect, mut f: F) {
        if let Some(root) = self.nodes.len().checked_sub(1) {
            self.visit(root, window, &mut f);
        }
    }

    fn visit<F: FnMut(u32, &Rect)>(&self, ni: usize, window: &Rect, f: &mut F) {
        let n = &self.nodes[ni];
        if !near(&n.bbox, window) {
            return;
        }
        let (first, count) = (n.first as usize, n.count as usize);
        if n.leaf {
            for (r, p) in &self.entries[first..first + count] {
                if near(r, window) {
                    f(*p, r);
                }
            }
        } else {
            for ci in first..first + count {
                self.visit(ci, window, f);
            }
        }
    }

    /// Candidate payloads near `window`, sorted ascending — the same
    /// order a linear scan over payload-ordered storage would visit.
    pub fn query(&self, window: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(window, &mut out);
        out
    }

    /// [`query`](Self::query) into a reusable buffer (cleared first).
    pub fn query_into(&self, window: &Rect, out: &mut Vec<u32>) {
        out.clear();
        self.for_each_candidate(window, |p, _| out.push(p));
        out.sort_unstable();
    }

    /// True if any candidate near `window` satisfies `pred`; descends
    /// only subtrees whose hull touches the window and stops at the
    /// first hit. Order of evaluation is tree order, so `pred` should be
    /// order-insensitive (a pure geometric test).
    pub fn any_candidate<F: FnMut(u32, &Rect) -> bool>(&self, window: &Rect, mut pred: F) -> bool {
        self.nodes
            .len()
            .checked_sub(1)
            .is_some_and(|root| self.visit_any(root, window, &mut pred))
    }

    fn visit_any<F: FnMut(u32, &Rect) -> bool>(
        &self,
        ni: usize,
        window: &Rect,
        pred: &mut F,
    ) -> bool {
        let n = &self.nodes[ni];
        if !near(&n.bbox, window) {
            return false;
        }
        let (first, count) = (n.first as usize, n.count as usize);
        if n.leaf {
            self.entries[first..first + count]
                .iter()
                .any(|(r, p)| near(r, window) && pred(*p, r))
        } else {
            (first..first + count).any(|ci| self.visit_any(ci, window, pred))
        }
    }

    /// All index pairs `(i, j)` with `i < j` whose rectangles come
    /// within `dist` of each other (closed-interval test on rectangles
    /// inflated by `dist`), in lexicographic order. `dist = 0` yields
    /// exactly the touching-or-overlapping candidate pairs.
    pub fn pairs_within(&self, dist: Coord) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for (r, i) in &self.entries {
            self.query_into(&r.inflated(dist.max(0)), &mut buf);
            out.extend(buf.iter().filter(|&&j| j > *i).map(|&j| (*i, j)));
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(items: &[(Rect, u32)], window: &Rect) -> Vec<u32> {
        let mut v: Vec<u32> = items
            .iter()
            .filter(|(r, _)| near(r, window))
            .map(|(_, p)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Deterministic pseudo-random rectangles (xorshift, fixed seed).
    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, u32)> {
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 97) as Coord
        };
        (0..n)
            .map(|i| {
                let (x, y, w, h) = (next(), next(), next() % 13, next() % 13);
                (Rect::new(x, y, x + w, y + h), i as u32)
            })
            .collect()
    }

    #[test]
    fn query_matches_linear_scan() {
        for n in [0usize, 1, 5, 8, 9, 64, 65, 300] {
            let items = random_rects(n, 0x5eed + n as u64);
            let tree = RectTree::build(items.clone());
            assert_eq!(tree.len(), n);
            for seed in 0..40u64 {
                let w = random_rects(1, 1000 + seed)[0].0;
                assert_eq!(tree.query(&w), scan(&items, &w), "n={n} window={w:?}");
            }
            // Whole-plane window returns everything.
            let all = Rect::new(-1000, -1000, 1000, 1000);
            assert_eq!(tree.query(&all).len(), n);
        }
    }

    #[test]
    fn degenerate_rects_are_candidates() {
        // A zero-width rectangle still occupies a position; the index
        // must surface it so callers can apply their own emptiness rule.
        let items = vec![(Rect::new(5, 0, 5, 10), 0), (Rect::new(20, 0, 30, 10), 1)];
        let tree = RectTree::build(items);
        assert_eq!(tree.query(&Rect::new(0, 0, 6, 6)), vec![0]);
        assert_eq!(
            tree.query(&Rect::new(5, 10, 25, 20)),
            vec![0, 1],
            "corner touch counts"
        );
    }

    #[test]
    fn bounds_and_empty() {
        let tree = RectTree::default();
        assert!(tree.is_empty());
        assert_eq!(tree.bounds(), Rect::EMPTY);
        assert!(tree.query(&Rect::new(-100, -100, 100, 100)).is_empty());
        let tree = RectTree::build([(Rect::new(2, 3, 10, 7), 7), (Rect::new(-4, 5, 1, 20), 9)]);
        assert_eq!(tree.bounds(), Rect::new(-4, 3, 10, 20));
    }

    #[test]
    fn build_is_deterministic_under_input_order() {
        let mut items = random_rects(100, 42);
        let a = RectTree::build(items.clone());
        items.reverse();
        let b = RectTree::build(items);
        assert_eq!(a.entries, b.entries, "packing is input-order independent");
    }

    #[test]
    fn pairs_within_matches_all_pairs() {
        let items = random_rects(60, 7);
        let tree = RectTree::build(items.clone());
        for dist in [0, 3, 10] {
            let mut expect = Vec::new();
            for (i, (a, _)) in items.iter().enumerate() {
                for (j, (b, _)) in items.iter().enumerate().skip(i + 1) {
                    if near(&a.inflated(dist), b) {
                        expect.push((i as u32, j as u32));
                    }
                }
            }
            expect.sort_unstable();
            assert_eq!(tree.pairs_within(dist), expect, "dist={dist}");
        }
    }

    #[test]
    fn any_candidate_early_exit() {
        let tree = RectTree::build(random_rects(50, 3));
        let w = Rect::new(0, 0, 97, 97);
        assert!(tree.any_candidate(&w, |_, r| !r.is_empty()));
        assert!(!tree.any_candidate(&Rect::new(500, 500, 600, 600), |_, _| true));
    }
}

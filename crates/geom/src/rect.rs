//! Axis-aligned rectangles and the rectangle algebra of the paper.
//!
//! Rectangles use **half-open** semantics: a rectangle spans
//! `[x0, x1) × [y0, y1)`. Two rectangles that merely share an edge have
//! zero-area intersection and are said to *abut*.
//!
//! The centrepiece is [`Rect::subtract`], the operation behind the paper's
//! latch-up rule check (Fig. 1): when a temporary enclosing rectangle does
//! not fully cover a solid rectangle, *"only the overlapping part is cut
//! while the remaining part of the rectangle is still stored"*. The figure
//! enumerates 16 overlap cases — four horizontal × four vertical — which
//! here fall out of one clamping computation and are reified for testing by
//! [`Rect::classify_overlap`].

use crate::coord::{Axis, Coord, Dir};
use crate::interval::Interval;
use crate::point::{Point, Vector};

/// A half-open, axis-aligned rectangle `[x0, x1) × [y0, y1)`.
///
/// Invariant: `x0 <= x1 && y0 <= y1` (enforced by [`Rect::new`], which
/// sorts its arguments). A rectangle with zero width or height is *empty*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rect {
    /// Left edge.
    pub x0: Coord,
    /// Bottom edge.
    pub y0: Coord,
    /// Right edge (exclusive).
    pub x1: Coord,
    /// Top edge (exclusive).
    pub y1: Coord,
}

/// Horizontal overlap class of a cutting rectangle relative to a solid one
/// (the four columns of the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HOverlap {
    /// The cutter spans the full width of the solid rectangle.
    Full,
    /// The cutter covers the left part only; a right remainder survives.
    Left,
    /// The cutter covers the right part only; a left remainder survives.
    Right,
    /// The cutter sits strictly inside; left and right remainders survive.
    Middle,
    /// The x-ranges do not overlap at all.
    Disjoint,
}

/// Vertical overlap class (the four rows of the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VOverlap {
    /// The cutter spans the full height of the solid rectangle.
    Full,
    /// The cutter covers the bottom part only.
    Bottom,
    /// The cutter covers the top part only.
    Top,
    /// The cutter sits strictly inside vertically.
    Middle,
    /// The y-ranges do not overlap at all.
    Disjoint,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    #[inline]
    pub fn new(xa: Coord, ya: Coord, xb: Coord, yb: Coord) -> Rect {
        Rect {
            x0: xa.min(xb),
            y0: ya.min(yb),
            x1: xa.max(xb),
            y1: ya.max(yb),
        }
    }

    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// Negative sizes are folded towards the corner (like [`Rect::new`]).
    #[inline]
    pub fn from_origin_size(origin: Point, w: Coord, h: Coord) -> Rect {
        Rect::new(origin.x, origin.y, origin.x + w, origin.y + h)
    }

    /// Creates a `w × h` rectangle centred at `c` (rounded down for odd
    /// sizes).
    #[inline]
    pub fn centered_at(c: Point, w: Coord, h: Coord) -> Rect {
        Rect::new(c.x - w / 2, c.y - h / 2, c.x - w / 2 + w, c.y - h / 2 + h)
    }

    /// The empty rectangle at the origin.
    pub const EMPTY: Rect = Rect {
        x0: 0,
        y0: 0,
        x1: 0,
        y1: 0,
    };

    /// Width (`x1 − x0`, never negative).
    #[inline]
    pub fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Height (`y1 − y0`, never negative).
    #[inline]
    pub fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// Extent along `axis`.
    #[inline]
    pub fn size(&self, axis: Axis) -> Coord {
        match axis {
            Axis::X => self.width(),
            Axis::Y => self.height(),
        }
    }

    /// Exact area in du², computed in `i128` to avoid overflow.
    #[inline]
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// True if the rectangle has zero width or height.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// Lower-left corner.
    #[inline]
    pub fn ll(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Upper-right corner.
    #[inline]
    pub fn ur(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// Centre point (rounded towards the lower-left for odd sizes).
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.x0 + self.width() / 2, self.y0 + self.height() / 2)
    }

    /// The x-extent as an interval.
    #[inline]
    pub fn x_range(&self) -> Interval {
        Interval::new(self.x0, self.x1)
    }

    /// The y-extent as an interval.
    #[inline]
    pub fn y_range(&self) -> Interval {
        Interval::new(self.y0, self.y1)
    }

    /// Extent along `axis` as an interval.
    #[inline]
    pub fn range(&self, axis: Axis) -> Interval {
        match axis {
            Axis::X => self.x_range(),
            Axis::Y => self.y_range(),
        }
    }

    /// The coordinate of the edge facing direction `dir`.
    ///
    /// `edge(North)` is the top edge, `edge(West)` the left edge.
    #[inline]
    pub fn edge(&self, dir: Dir) -> Coord {
        match dir {
            Dir::North => self.y1,
            Dir::South => self.y0,
            Dir::East => self.x1,
            Dir::West => self.x0,
        }
    }

    /// Returns a copy with the edge facing `dir` moved to `pos`.
    ///
    /// The caller is responsible for keeping the rectangle non-inverted;
    /// the result is normalised through [`Rect::new`].
    #[inline]
    pub fn with_edge(&self, dir: Dir, pos: Coord) -> Rect {
        match dir {
            Dir::North => Rect::new(self.x0, self.y0, self.x1, pos),
            Dir::South => Rect::new(self.x0, pos, self.x1, self.y1),
            Dir::East => Rect::new(self.x0, self.y0, pos, self.y1),
            Dir::West => Rect::new(pos, self.y0, self.x1, self.y1),
        }
    }

    /// Translates by `v`.
    #[inline]
    pub fn translated(&self, v: Vector) -> Rect {
        Rect {
            x0: self.x0 + v.dx,
            y0: self.y0 + v.dy,
            x1: self.x1 + v.dx,
            y1: self.y1 + v.dy,
        }
    }

    /// Grows every side outward by `d` (shrinks for negative `d`; collapses
    /// to an empty rectangle rather than inverting).
    #[inline]
    pub fn inflated(&self, d: Coord) -> Rect {
        self.inflated_xy(d, d)
    }

    /// Grows horizontally by `dx` and vertically by `dy` on each side.
    pub fn inflated_xy(&self, dx: Coord, dy: Coord) -> Rect {
        let x0 = self.x0 - dx;
        let x1 = self.x1 + dx;
        let y0 = self.y0 - dy;
        let y1 = self.y1 + dy;
        if x0 > x1 || y0 > y1 {
            // Deflated past its own size: collapse around the centre.
            let c = self.center();
            Rect::new(c.x, c.y, c.x, c.y)
        } else {
            Rect { x0, y0, x1, y1 }
        }
    }

    /// True if `self` and `other` share interior points.
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x0 < other.x1
            && other.x0 < self.x1
            && self.y0 < other.y1
            && other.y0 < self.y1
    }

    /// True if `self` and `other` abut: they share boundary but no
    /// interior. Corner-only contact counts as abutment.
    pub fn abuts(&self, other: &Rect) -> bool {
        if self.is_empty() || other.is_empty() || self.overlaps(other) {
            return false;
        }
        let x_touch = self.x0 <= other.x1 && other.x0 <= self.x1;
        let y_touch = self.y0 <= other.y1 && other.y0 <= self.y1;
        x_touch && y_touch
    }

    /// True if `self` fully contains `other` (empty `other` is contained
    /// anywhere inside).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (self.x0 <= other.x0
                && self.y0 <= other.y0
                && self.x1 >= other.x1
                && self.y1 >= other.y1)
    }

    /// True if the point lies inside (half-open semantics).
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.x0 <= p.x && p.x < self.x1 && self.y0 <= p.y && p.y < self.y1
    }

    /// Intersection with `other`; `None` if the interiors are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// Smallest rectangle containing both (empty inputs are ignored).
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Minimum Manhattan separation between the two rectangles along
    /// `axis`, ignoring the other axis (negative if they overlap along
    /// `axis`).
    pub fn gap_along(&self, other: &Rect, axis: Axis) -> Coord {
        let a = self.range(axis);
        let b = other.range(axis);
        if a.lo >= b.hi {
            a.lo - b.hi
        } else if b.lo >= a.hi {
            b.lo - a.hi
        } else {
            -(a.hi.min(b.hi) - a.lo.max(b.lo))
        }
    }

    /// Classifies how `cutter` overlaps `self`, per axis — the 4 × 4 grid
    /// of the paper's Fig. 1.
    pub fn classify_overlap(&self, cutter: &Rect) -> (HOverlap, VOverlap) {
        let h = if cutter.x1 <= self.x0 || cutter.x0 >= self.x1 {
            HOverlap::Disjoint
        } else if cutter.x0 <= self.x0 && cutter.x1 >= self.x1 {
            HOverlap::Full
        } else if cutter.x0 <= self.x0 {
            HOverlap::Left
        } else if cutter.x1 >= self.x1 {
            HOverlap::Right
        } else {
            HOverlap::Middle
        };
        let v = if cutter.y1 <= self.y0 || cutter.y0 >= self.y1 {
            VOverlap::Disjoint
        } else if cutter.y0 <= self.y0 && cutter.y1 >= self.y1 {
            VOverlap::Full
        } else if cutter.y0 <= self.y0 {
            VOverlap::Bottom
        } else if cutter.y1 >= self.y1 {
            VOverlap::Top
        } else {
            VOverlap::Middle
        };
        (h, v)
    }

    /// Subtracts `cutter` from `self`, returning the non-overlapped parts
    /// as up to four disjoint rectangles.
    ///
    /// This is the operation of the paper's Fig. 1: *"the not overlapped
    /// parts of the rectangle are converted to single rectangles"*. The
    /// decomposition is bottom strip, top strip, then left and right middle
    /// slabs; together with `self ∩ cutter` it partitions `self` exactly.
    ///
    /// # Example
    /// ```
    /// use amgen_geom::Rect;
    /// let solid = Rect::new(0, 0, 10, 10);
    /// let cutter = Rect::new(3, 3, 7, 7); // strictly inside: 4 remainders
    /// let parts = solid.subtract(&cutter);
    /// assert_eq!(parts.len(), 4);
    /// let remaining: i128 = parts.iter().map(Rect::area).sum();
    /// assert_eq!(remaining, solid.area() - cutter.area());
    /// ```
    pub fn subtract(&self, cutter: &Rect) -> Vec<Rect> {
        if self.is_empty() {
            return Vec::new();
        }
        let Some(ov) = self.intersection(cutter) else {
            return vec![*self];
        };
        let mut parts = Vec::with_capacity(4);
        // Bottom strip (full width).
        if ov.y0 > self.y0 {
            parts.push(Rect::new(self.x0, self.y0, self.x1, ov.y0));
        }
        // Top strip (full width).
        if ov.y1 < self.y1 {
            parts.push(Rect::new(self.x0, ov.y1, self.x1, self.y1));
        }
        // Left slab (overlap height only).
        if ov.x0 > self.x0 {
            parts.push(Rect::new(self.x0, ov.y0, ov.x0, ov.y1));
        }
        // Right slab (overlap height only).
        if ov.x1 < self.x1 {
            parts.push(Rect::new(ov.x1, ov.y0, self.x1, ov.y1));
        }
        parts
    }

    /// Expands the rectangle so it contains `other`; no-op if it already
    /// does. Empty `self` becomes `other`.
    pub fn expanded_to_contain(&self, other: &Rect) -> Rect {
        self.union_bbox(other)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {} .. {}, {}]", self.x0, self.y0, self.x1, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Rect {
        Rect::new(x0, y0, x1, y1)
    }

    #[test]
    fn new_normalises_corners() {
        assert_eq!(r(10, 10, 0, 0), r(0, 0, 10, 10));
        assert_eq!(
            Rect::from_origin_size(Point::new(1, 2), 3, 4),
            r(1, 2, 4, 6)
        );
        assert_eq!(
            Rect::from_origin_size(Point::new(1, 2), -3, 4),
            r(-2, 2, 1, 6)
        );
    }

    #[test]
    fn size_and_area() {
        let a = r(0, 0, 10, 4);
        assert_eq!(a.width(), 10);
        assert_eq!(a.height(), 4);
        assert_eq!(a.area(), 40);
        assert_eq!(a.size(Axis::X), 10);
        assert_eq!(a.size(Axis::Y), 4);
        assert!(r(5, 5, 5, 9).is_empty());
        assert!(!a.is_empty());
    }

    #[test]
    fn centered_at_has_requested_size() {
        let c = Point::new(10, 10);
        let a = Rect::centered_at(c, 4, 6);
        assert_eq!((a.width(), a.height()), (4, 6));
        assert_eq!(a.center(), c);
        let odd = Rect::centered_at(c, 5, 3);
        assert_eq!((odd.width(), odd.height()), (5, 3));
    }

    #[test]
    fn edges_by_direction() {
        let a = r(1, 2, 7, 9);
        assert_eq!(a.edge(Dir::West), 1);
        assert_eq!(a.edge(Dir::South), 2);
        assert_eq!(a.edge(Dir::East), 7);
        assert_eq!(a.edge(Dir::North), 9);
        assert_eq!(a.with_edge(Dir::North, 20), r(1, 2, 7, 20));
        assert_eq!(a.with_edge(Dir::West, 0), r(0, 2, 7, 9));
    }

    #[test]
    fn overlap_and_abutment() {
        let a = r(0, 0, 10, 10);
        assert!(a.overlaps(&r(5, 5, 15, 15)));
        assert!(
            !a.overlaps(&r(10, 0, 20, 10)),
            "edge-sharing is not overlap"
        );
        assert!(a.abuts(&r(10, 0, 20, 10)));
        assert!(a.abuts(&r(10, 10, 20, 20)), "corner contact abuts");
        assert!(!a.abuts(&r(11, 0, 20, 10)));
        assert!(!a.abuts(&r(2, 2, 3, 3)), "overlap is not abutment");
    }

    #[test]
    fn containment() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains_rect(&r(0, 0, 10, 10)));
        assert!(a.contains_rect(&r(2, 2, 8, 8)));
        assert!(!a.contains_rect(&r(2, 2, 11, 8)));
        assert!(a.contains_point(Point::new(0, 0)));
        assert!(
            !a.contains_point(Point::new(10, 10)),
            "half-open upper corner"
        );
    }

    #[test]
    fn intersection_cases() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.intersection(&r(5, 5, 15, 15)), Some(r(5, 5, 10, 10)));
        assert_eq!(a.intersection(&r(10, 0, 20, 10)), None);
        assert_eq!(a.intersection(&a), Some(a));
    }

    #[test]
    fn union_bbox_ignores_empty() {
        let a = r(0, 0, 2, 2);
        let b = r(5, 5, 8, 9);
        assert_eq!(a.union_bbox(&b), r(0, 0, 8, 9));
        assert_eq!(a.union_bbox(&Rect::EMPTY), a);
        assert_eq!(Rect::EMPTY.union_bbox(&b), b);
    }

    #[test]
    fn inflate_and_deflate() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.inflated(2), r(-2, -2, 12, 12));
        assert_eq!(a.inflated(-2), r(2, 2, 8, 8));
        assert!(a.inflated(-6).is_empty(), "over-deflation collapses");
        assert_eq!(a.inflated_xy(1, 3), r(-1, -3, 11, 13));
    }

    #[test]
    fn gap_along_axis() {
        let a = r(0, 0, 10, 10);
        let b = r(13, 0, 20, 10);
        assert_eq!(a.gap_along(&b, Axis::X), 3);
        assert_eq!(b.gap_along(&a, Axis::X), 3);
        assert_eq!(a.gap_along(&b, Axis::Y), -10);
        let c = r(5, 12, 8, 20);
        assert_eq!(a.gap_along(&c, Axis::Y), 2);
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = r(0, 0, 10, 10);
        assert_eq!(a.subtract(&r(20, 20, 30, 30)), vec![a]);
        assert_eq!(
            a.subtract(&r(10, 0, 20, 10)),
            vec![a],
            "abutting cutter removes nothing"
        );
    }

    #[test]
    fn subtract_full_cover_returns_nothing() {
        let a = r(0, 0, 10, 10);
        assert!(a.subtract(&r(-1, -1, 11, 11)).is_empty());
        assert!(a.subtract(&a).is_empty());
    }

    /// All 16 overlapping cases of the paper's Fig. 1: the four horizontal
    /// overlap classes × the four vertical overlap classes. For each case
    /// the remainder count and exact area are checked.
    #[test]
    fn subtract_sixteen_cases_of_fig1() {
        let solid = r(0, 0, 100, 100);
        // (x0, x1, expected horizontal class, horizontal remainder pieces)
        let h_cases = [
            (-10, 110, HOverlap::Full, 0),
            (-10, 40, HOverlap::Left, 1),
            (60, 110, HOverlap::Right, 1),
            (30, 70, HOverlap::Middle, 2),
        ];
        let v_cases = [
            (-10, 110, VOverlap::Full, 0),
            (-10, 40, VOverlap::Bottom, 1),
            (60, 110, VOverlap::Top, 1),
            (30, 70, VOverlap::Middle, 2),
        ];
        for &(cx0, cx1, hclass, _hrem) in &h_cases {
            for &(cy0, cy1, vclass, _vrem) in &v_cases {
                let cutter = r(cx0, cy0, cx1, cy1);
                assert_eq!(solid.classify_overlap(&cutter), (hclass, vclass));
                let parts = solid.subtract(&cutter);
                // Remainders are pairwise disjoint.
                for (i, p) in parts.iter().enumerate() {
                    assert!(!p.is_empty());
                    for q in &parts[i + 1..] {
                        assert!(!p.overlaps(q), "{p} overlaps {q}");
                    }
                    assert!(solid.contains_rect(p));
                    assert!(!p.overlaps(&cutter));
                }
                // Area bookkeeping is exact.
                let cut = solid.intersection(&cutter).map_or(0, |o| o.area());
                let rem: i128 = parts.iter().map(Rect::area).sum();
                assert_eq!(rem + cut, solid.area(), "cutter {cutter}");
                // Expected piece count: strips for V class + slabs for H
                // class, except slabs vanish when the V overlap is empty.
                let strips = match vclass {
                    VOverlap::Full => 0,
                    VOverlap::Bottom | VOverlap::Top => 1,
                    VOverlap::Middle => 2,
                    VOverlap::Disjoint => unreachable!(),
                };
                let slabs = match hclass {
                    HOverlap::Full => 0,
                    HOverlap::Left | HOverlap::Right => 1,
                    HOverlap::Middle => 2,
                    HOverlap::Disjoint => unreachable!(),
                };
                assert_eq!(parts.len(), strips + slabs, "cutter {cutter}");
            }
        }
    }

    #[test]
    fn classify_disjoint() {
        let solid = r(0, 0, 100, 100);
        let far = r(200, 200, 300, 300);
        assert_eq!(
            solid.classify_overlap(&far),
            (HOverlap::Disjoint, VOverlap::Disjoint)
        );
    }
}

//! Plain-text hierarchical run report.
//!
//! Replays the event stream per thread, matching span begin/end pairs on
//! a stack, and aggregates:
//!
//! * per-**category** (pipeline stage) total time of top-level spans and
//!   *self* time of all spans (duration minus nested children), so a
//!   stage that mostly waits on a sub-stage shows up honestly;
//! * the top-N hottest span **names** by accumulated duration — this is
//!   where per-entity / per-object hot spots surface;
//! * **counters**: instant events grouped by `cat:name` (rebuilds,
//!   optimizer prunes, incumbents, ...).
//!
//! The renderer is a pure function of the [`Trace`], so it works both on
//! live drains and on reconstructed event lists in tests.

use crate::{Phase, Trace};
use std::collections::HashMap;

struct Open {
    cat: &'static str,
    name: String,
    begin_ns: u64,
    child_ns: u64,
}

#[derive(Default)]
struct CatStat {
    total_ns: u64, // top-level spans only
    self_ns: u64,  // all spans, minus children
    spans: u64,
}

/// Renders the report; `top_n` bounds the hottest-entities table.
pub fn render(trace: &Trace, top_n: usize) -> String {
    let mut stacks: HashMap<u32, Vec<Open>> = HashMap::new();
    let mut cats: Vec<(&'static str, CatStat)> = Vec::new();
    // span (cat, name) → (accumulated duration, count)
    type NameKey = (&'static str, String);
    let mut names: HashMap<NameKey, (u64, u64)> = HashMap::new();
    let mut counters: HashMap<(&'static str, String), u64> = HashMap::new();
    let mut unmatched_ends = 0u64;

    let cat_stat = |cats: &mut Vec<(&'static str, CatStat)>, cat: &'static str| -> usize {
        match cats.iter().position(|(c, _)| *c == cat) {
            Some(i) => i,
            None => {
                cats.push((cat, CatStat::default()));
                cats.len() - 1
            }
        }
    };

    for ev in &trace.events {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase {
            Phase::Begin => stack.push(Open {
                cat: ev.cat,
                name: ev.name.to_string(),
                begin_ns: ev.t_ns,
                child_ns: 0,
            }),
            Phase::End => {
                // Tolerate imbalance (a drain between begin and end):
                // only close a frame that matches this end's cat.
                let Some(top) = stack.last() else {
                    unmatched_ends += 1;
                    continue;
                };
                if top.cat != ev.cat {
                    unmatched_ends += 1;
                    continue;
                }
                let open = stack.pop().unwrap();
                let dur = ev.t_ns.saturating_sub(open.begin_ns);
                let i = cat_stat(&mut cats, open.cat);
                cats[i].1.self_ns += dur.saturating_sub(open.child_ns);
                cats[i].1.spans += 1;
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += dur;
                } else {
                    cats[i].1.total_ns += dur;
                }
                let e = names.entry((open.cat, open.name)).or_insert((0, 0));
                e.0 += dur;
                e.1 += 1;
            }
            Phase::Instant => {
                *counters.entry((ev.cat, ev.name.to_string())).or_insert(0) += 1;
            }
        }
    }
    let unclosed: usize = stacks.values().map(Vec::len).sum();

    let mut out = String::new();
    out.push_str(&format!(
        "trace report — {} events across {} thread(s)\n",
        trace.events.len(),
        trace.threads.len().max(stacks.len())
    ));

    if !cats.is_empty() {
        cats.sort_by_key(|(_, st)| std::cmp::Reverse(st.self_ns));
        out.push_str("\nper-stage time (total = top-level spans, self = minus children)\n");
        out.push_str(&format!(
            "  {:<10} {:>12} {:>12} {:>8}\n",
            "stage", "total", "self", "spans"
        ));
        for (cat, st) in &cats {
            out.push_str(&format!(
                "  {:<10} {:>12} {:>12} {:>8}\n",
                cat,
                fmt_ns(st.total_ns),
                fmt_ns(st.self_ns),
                st.spans
            ));
        }
    }

    if !names.is_empty() && top_n > 0 {
        let mut hot: Vec<(NameKey, (u64, u64))> = names.into_iter().collect();
        hot.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(&b.0)));
        hot.truncate(top_n);
        out.push_str(&format!("\nhottest entities (top {top_n} by span time)\n"));
        for (rank, ((cat, name), (dur, count))) in hot.iter().enumerate() {
            out.push_str(&format!(
                "  {:>2}. {:<28} {:>12}  ×{}\n",
                rank + 1,
                format!("{cat}:{name}"),
                fmt_ns(*dur),
                count
            ));
        }
    }

    if !counters.is_empty() {
        let mut counts: Vec<((&'static str, String), u64)> = counters.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.push_str("\ncounters (instant events)\n");
        for ((cat, name), n) in counts {
            out.push_str(&format!("  {:<32} {:>8}\n", format!("{cat}:{name}"), n));
        }
    }

    if unclosed > 0 || unmatched_ends > 0 {
        out.push_str(&format!(
            "\n({unclosed} span(s) still open, {unmatched_ends} unmatched end(s) — partial drain?)\n"
        ));
    }
    out
}

/// Human duration: picks ns / µs / ms / s to keep 3-4 significant digits.
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Phase, Trace};

    fn ev(t: u64, phase: Phase, cat: &'static str, name: &str) -> Event {
        Event::new(t, 0, phase, cat, name.to_string())
    }

    #[test]
    fn self_time_excludes_children() {
        let trace = Trace {
            events: vec![
                ev(0, Phase::Begin, "dsl", "run"),
                ev(100, Phase::Begin, "compact", "step:a"),
                ev(700, Phase::End, "compact", "step:a"),
                ev(1_000, Phase::End, "dsl", "run"),
                ev(1_100, Phase::Instant, "compact", "rebuild"),
            ],
            threads: vec![],
        };
        let report = render(&trace, 5);
        // dsl: total 1000, self 400; compact nested: total 0 (not top-level), self 600.
        assert!(report.contains("dsl"), "{report}");
        assert!(report.contains("1000ns"), "{report}");
        assert!(report.contains("400ns"), "{report}");
        assert!(report.contains("600ns"), "{report}");
        assert!(report.contains("compact:rebuild"), "{report}");
        assert!(!report.contains("still open"), "{report}");
    }

    #[test]
    fn partial_drains_are_reported_not_miscounted() {
        let trace = Trace {
            events: vec![
                ev(0, Phase::Begin, "opt", "expand"),
                ev(50, Phase::End, "drc", "check"), // end with no matching begin
            ],
            threads: vec![],
        };
        let report = render(&trace, 5);
        assert!(report.contains("1 span(s) still open"), "{report}");
        assert!(report.contains("1 unmatched end(s)"), "{report}");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(25_500), "25.5µs");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(12_000_000_000), "12.00s");
    }
}

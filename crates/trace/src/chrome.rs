//! Chrome `trace_event` JSON exporter.
//!
//! Emits the *JSON Object Format* (`{"traceEvents": [...]}`) understood
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! `B`/`E` pair per span, `i` for instants (thread scope), and `M`
//! metadata records naming the process and each named thread track.
//! Timestamps are microseconds with nanosecond precision kept in the
//! fractional part. The output is a pure function of the [`Trace`], so
//! golden tests compare it byte-for-byte.

use crate::{ArgValue, Event, Phase, Trace};

/// The fixed pid used for all events — one process, many tracks.
const PID: u32 = 1;

/// Serializes a drained trace to Chrome JSON. See the module docs.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    // Process metadata first, then named thread tracks, then the events.
    let mut records: Vec<String> = Vec::new();
    records.push(format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"amgen\"}}}}"
    ));
    for th in &trace.threads {
        if let Some(name) = &th.name {
            records.push(format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                th.tid,
                json_string(name)
            ));
        }
    }
    for ev in &trace.events {
        records.push(event_record(ev));
    }
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&rec);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn event_record(ev: &Event) -> String {
    let ph = match ev.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    };
    let mut rec = format!(
        "{{\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"cat\":{},\"name\":{}",
        ev.tid,
        micros(ev.t_ns),
        json_string(ev.cat),
        json_string(&ev.name),
    );
    if ev.phase == Phase::Instant {
        rec.push_str(",\"s\":\"t\""); // thread-scoped instant
    }
    if !ev.args.is_empty() {
        rec.push_str(",\"args\":{");
        for (i, (key, value)) in ev.args.iter().enumerate() {
            if i > 0 {
                rec.push(',');
            }
            rec.push_str(&json_string(key));
            rec.push(':');
            rec.push_str(&arg_json(value));
        }
        rec.push('}');
    }
    rec.push('}');
    rec
}

/// Nanoseconds → microsecond timestamp string, nanosecond precision
/// preserved in three fixed decimals (deterministic formatting).
fn micros(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

fn arg_json(value: &ArgValue) -> String {
    match value {
        ArgValue::Int(i) => i.to_string(),
        ArgValue::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point (1.0, not 1) and round-trips.
                format!("{f:?}")
            } else {
                // JSON has no Inf/NaN — degrade to a string.
                format!("\"{f}\"")
            }
        }
        ArgValue::Str(s) => json_string(s),
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Phase, ThreadInfo, Trace};

    #[test]
    fn timestamps_are_fractional_micros() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_000_007), "1000.007");
    }

    #[test]
    fn escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn instants_carry_thread_scope_and_args() {
        let trace = Trace {
            events: vec![
                Event::new(500, 2, Phase::Instant, "opt", "prune").with_arg("bound", 12.5f64)
            ],
            threads: vec![ThreadInfo {
                tid: 2,
                name: Some("opt-worker-2".into()),
            }],
        };
        let json = to_chrome_json(&trace);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"bound\":12.5"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"opt-worker-2\""));
    }
}

//! Low-overhead structured event tracing for the generation pipeline.
//!
//! The compactor and the order optimizer make thousands of small
//! decisions — abutment steps, contact-array rebuilds, pruned search
//! orders — that aggregate counters cannot explain. This crate records
//! them as **typed events** (span begin/end pairs and instant markers,
//! each with a category, a name and small key/value arguments) into a
//! [`TraceSink`] that is cheap enough to leave compiled into every hot
//! path:
//!
//! * the **disabled path costs one branch** — [`TraceSink::enabled`] is a
//!   relaxed atomic load, and span names/arguments are built lazily, so
//!   nothing allocates until tracing is switched on;
//! * recording has **two detail levels** — [`Detail::Coarse`] captures
//!   stage-level spans (a module-generator call, a DRC run, an optimizer
//!   search), [`Detail::Fine`] adds the high-frequency interior events
//!   (every compaction step, primitive shape function and optimizer node
//!   expansion) that cost real time on sub-microsecond paths;
//! * the **enabled path is contention-free** — every thread writes to its
//!   own buffer (registered on first use, kept alive by the sink even
//!   after the thread exits), so parallel optimizer workers never
//!   serialize on a shared log;
//! * events are **drained on demand** into a [`Trace`], which exports to
//!   the Chrome `trace_event` JSON format (loadable in `chrome://tracing`
//!   and [Perfetto](https://ui.perfetto.dev)) or renders as a plain-text
//!   hierarchical run report.
//!
//! # Example
//!
//! ```
//! use amgen_trace::TraceSink;
//!
//! let sink = TraceSink::new();
//! sink.set_enabled(true);
//! {
//!     let mut span = sink.span("compact", || "step:row");
//!     span.arg("shrunk_edges", 2i64);
//!     sink.instant("compact", || "rebuild");
//! } // span ends here
//! let trace = sink.drain();
//! assert_eq!(trace.events.len(), 3); // begin + instant + end
//! let json = trace.to_chrome_json();
//! assert!(json.contains("\"ph\":\"B\"") && json.contains("step:row"));
//! ```

#![warn(missing_docs)]

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod chrome;
pub mod report;

/// How much a [`TraceSink`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Detail {
    /// Nothing — every probe is one relaxed atomic load.
    Off,
    /// Stage-level spans: module-generator and entity calls, DRC /
    /// extraction / routing runs, the optimizer search and its
    /// incumbents. Cheap enough to leave on around whole benches.
    Coarse,
    /// Everything: adds per-compaction-step and per-primitive-call
    /// spans, group rebuilds and per-search-node events. Full
    /// flame-graph fidelity; measurably slows paths whose real work is
    /// well under a microsecond.
    Fine,
}

/// The phase of one trace event (a subset of the Chrome phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point event with no duration (`ph: "i"`).
    Instant,
}

/// A small typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An integer (counts, coordinates, deltas).
    Int(i64),
    /// A float (scores, ratios).
    Float(f64),
    /// A string (entity names, layers).
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::Float(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// Bytes a [`Name`] can hold without touching the heap — sized so the
/// inline variant is no larger than the `String` one.
const NAME_INLINE_CAP: usize = 30;

#[derive(Clone)]
enum NameRepr {
    Static(&'static str),
    Inline(u8, [u8; NAME_INLINE_CAP]),
    Owned(String),
}

/// An event name: a static string, a short string stored **inline**, or
/// a heap `String`. Formatted names up to 30 bytes never allocate —
/// build them with the [`name!`] macro on hot paths:
///
/// ```
/// use amgen_trace::{name, Name};
///
/// let n: Name = name!("step:{}", "finger");
/// assert_eq!(n, "step:finger");
/// ```
#[derive(Clone)]
pub struct Name(NameRepr);

impl Name {
    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        match &self.0 {
            NameRepr::Static(s) => s,
            // Inline bytes are whole `str` fragments concatenated by
            // `fmt::Write`, so they are always valid UTF-8.
            NameRepr::Inline(len, buf) => std::str::from_utf8(&buf[..*len as usize]).unwrap_or(""),
            NameRepr::Owned(s) => s,
        }
    }

    /// Builds a name from preformatted arguments (what [`name!`]
    /// expands to), spilling to the heap only past the inline capacity.
    pub fn format(args: std::fmt::Arguments<'_>) -> Name {
        if let Some(s) = args.as_str() {
            return Name(NameRepr::Static(s));
        }
        struct W {
            len: usize,
            buf: [u8; NAME_INLINE_CAP],
            spill: Option<String>,
        }
        impl std::fmt::Write for W {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                if let Some(sp) = &mut self.spill {
                    sp.push_str(s);
                    return Ok(());
                }
                let b = s.as_bytes();
                if self.len + b.len() <= NAME_INLINE_CAP {
                    self.buf[self.len..self.len + b.len()].copy_from_slice(b);
                    self.len += b.len();
                } else {
                    let mut sp = String::with_capacity(self.len + b.len() + 16);
                    sp.push_str(std::str::from_utf8(&self.buf[..self.len]).unwrap_or(""));
                    sp.push_str(s);
                    self.spill = Some(sp);
                }
                Ok(())
            }
        }
        let mut w = W {
            len: 0,
            buf: [0; NAME_INLINE_CAP],
            spill: None,
        };
        let _ = std::fmt::write(&mut w, args);
        match w.spill {
            Some(s) => Name(NameRepr::Owned(s)),
            None => Name(NameRepr::Inline(w.len as u8, w.buf)),
        }
    }
}

/// Formats an event name without allocating when the result fits the
/// inline buffer: `sink.span("compact", || name!("step:{}", obj))`.
#[macro_export]
macro_rules! name {
    ($($arg:tt)*) => { $crate::Name::format(core::format_args!($($arg)*)) };
}

impl Default for Name {
    fn default() -> Name {
        Name(NameRepr::Static(""))
    }
}

impl From<&'static str> for Name {
    fn from(s: &'static str) -> Name {
        Name(NameRepr::Static(s))
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name(NameRepr::Owned(s))
    }
}

impl From<Cow<'static, str>> for Name {
    fn from(s: Cow<'static, str>) -> Name {
        match s {
            Cow::Borrowed(s) => Name(NameRepr::Static(s)),
            Cow::Owned(s) => Name(NameRepr::Owned(s)),
        }
    }
}

impl std::ops::Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Name {}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the sink's epoch (its creation).
    pub t_ns: u64,
    /// The recording thread's track id (registration order, 0-based).
    pub tid: u32,
    /// Begin / End / Instant.
    pub phase: Phase,
    /// Event category — by convention the pipeline stage name
    /// (`"compact"`, `"opt"`, `"dsl"`, ...).
    pub cat: &'static str,
    /// Event name (`"step:row"`, `"expand"`, `"rebuild"`, ...).
    pub name: Name,
    /// Key/value arguments; carried on `End` and `Instant` events.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// Builds an event explicitly — the exporters are pure functions of
    /// `Trace`, so tests construct fixed event lists with this.
    pub fn new(
        t_ns: u64,
        tid: u32,
        phase: Phase,
        cat: &'static str,
        name: impl Into<Name>,
    ) -> Event {
        Event {
            t_ns,
            tid,
            phase,
            cat,
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// Attaches an argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Event {
        self.args.push((key, value.into()));
        self
    }
}

/// One thread's track in a drained [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadInfo {
    /// Track id (registration order with the sink).
    pub tid: u32,
    /// Optional display name (set via [`TraceSink::set_thread_name`]).
    pub name: Option<String>,
}

/// A per-thread event buffer. The sink holds an `Arc` so the buffer
/// survives its thread (scoped optimizer workers end before the drain).
struct Shard {
    tid: u32,
    name: Mutex<Option<String>>,
    /// Locked only by the owning thread (appends) and the drain — in
    /// steady state the lock is uncontended.
    events: Mutex<Vec<Event>>,
}

thread_local! {
    /// Shards this thread registered, keyed by the owning sink's unique
    /// id (so the cache can hold the `Arc` directly — no upgrade on the
    /// hot path, and a new sink can never collide with a dead one).
    static LOCAL_SHARDS: RefCell<Vec<(u64, Arc<Shard>)>> = const { RefCell::new(Vec::new()) };
}

/// Source of unique [`TraceSink`] ids.
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(0);

/// The event collector threaded through the generation context.
///
/// Disabled by default; every recording entry point starts with the
/// [`enabled`](TraceSink::enabled) branch, and name/argument closures run
/// only when it passes, so an attached-but-disabled sink costs one
/// relaxed atomic load per call site.
#[derive(Debug)]
pub struct TraceSink {
    /// The current [`Detail`] as its discriminant (0 / 1 / 2).
    level: AtomicU8,
    /// Unique per process; keys the thread-local shard cache.
    id: u64,
    epoch: Instant,
    /// Raw counter reading taken together with `epoch`; event stamps are
    /// stored as counter deltas and scaled to nanoseconds at drain time.
    epoch_ticks: u64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

/// Reads the raw timestamp counter: one `rdtsc` on x86_64 (a fraction of
/// a `clock_gettime` call), the monotonic clock elsewhere. Raw ticks are
/// meaningless on their own — [`TraceSink::collect`] measures the tick
/// rate against `epoch` when converting to nanoseconds, so no up-front
/// calibration is needed. Assumes an invariant TSC (any x86_64 part from
/// the last decade); on exotic hardware the fallback still works.
#[inline]
fn now_ticks(epoch: &Instant) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let _ = epoch;
        // SAFETY: `rdtsc` is unprivileged and baseline on x86_64.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        epoch.elapsed().as_nanos() as u64
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard").field("tid", &self.tid).finish()
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A fresh, **disabled** sink.
    pub fn new() -> TraceSink {
        let epoch = Instant::now();
        TraceSink {
            level: AtomicU8::new(Detail::Off as u8),
            id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
            epoch_ticks: now_ticks(&epoch),
            epoch,
            shards: Mutex::new(Vec::new()),
        }
    }

    /// Whether events are being recorded at all. The one branch every
    /// instrumentation site pays when tracing is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level.load(Ordering::Relaxed) > Detail::Off as u8
    }

    /// Whether high-frequency interior events are being recorded too.
    #[inline]
    pub fn fine(&self) -> bool {
        self.level.load(Ordering::Relaxed) > Detail::Coarse as u8
    }

    /// The current recording depth.
    pub fn detail(&self) -> Detail {
        match self.level.load(Ordering::Relaxed) {
            0 => Detail::Off,
            1 => Detail::Coarse,
            _ => Detail::Fine,
        }
    }

    /// Sets the recording depth. Spans already open keep recording
    /// their end events so begin/end stay balanced.
    pub fn set_detail(&self, detail: Detail) {
        self.level.store(detail as u8, Ordering::Relaxed);
    }

    /// Switches recording on ([`Detail::Coarse`]) or off.
    pub fn set_enabled(&self, on: bool) {
        self.set_detail(if on { Detail::Coarse } else { Detail::Off });
    }

    /// Raw ticks since the sink was created ([`collect`](Self::collect)
    /// scales them to nanoseconds).
    #[inline]
    fn now_raw(&self) -> u64 {
        now_ticks(&self.epoch).wrapping_sub(self.epoch_ticks)
    }

    /// This thread's shard, registering it with the sink on first use.
    fn shard(&self) -> Arc<Shard> {
        LOCAL_SHARDS.with(|local| {
            let mut local = local.borrow_mut();
            for (k, shard) in local.iter() {
                if *k == self.id {
                    return Arc::clone(shard);
                }
            }
            let mut shards = self.shards.lock().unwrap();
            let shard = Arc::new(Shard {
                tid: shards.len() as u32,
                name: Mutex::new(None),
                // Preallocated so the first few hundred events never
                // realloc; `drain` keeps the capacity via `append`.
                events: Mutex::new(Vec::with_capacity(256)),
            });
            shards.push(Arc::clone(&shard));
            drop(shards);
            // Dead sinks leave their cache entry's Arc as the only
            // strong reference — evict those while we're here anyway.
            local.retain(|(_, s)| Arc::strong_count(s) > 1);
            local.push((self.id, Arc::clone(&shard)));
            shard
        })
    }

    /// Names the calling thread's track (e.g. `opt-worker-3`); the name
    /// appears in the Chrome export and the run report. No-op while the
    /// sink is disabled.
    pub fn set_thread_name(&self, name: impl Into<String>) {
        if !self.enabled() {
            return;
        }
        *self.shard().name.lock().unwrap() = Some(name.into());
    }

    fn record(
        &self,
        phase: Phase,
        cat: &'static str,
        name: Name,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        // `t_ns` holds raw ticks until `collect` scales the batch.
        let t_ns = self.now_raw();
        let shard = self.shard();
        let ev = Event {
            t_ns,
            tid: shard.tid,
            phase,
            cat,
            name,
            args,
        };
        shard.events.lock().unwrap().push(ev);
    }

    /// Opens a span. The name closure runs only when the sink is
    /// enabled, so formatted names are free on the disabled path:
    ///
    /// ```
    /// use amgen_trace::TraceSink;
    /// let sink = TraceSink::new(); // disabled
    /// let _span = sink.span("compact", || format!("step:{}", "row"));
    /// assert!(sink.drain().events.is_empty()); // nothing was recorded
    /// ```
    #[inline]
    pub fn span<N, F>(&self, cat: &'static str, name: F) -> Span<'_>
    where
        N: Into<Name>,
        F: FnOnce() -> N,
    {
        if !self.enabled() {
            return Span::inert(cat);
        }
        // The begin event is *deferred*: the guard remembers the open
        // timestamp and pushes begin + end together on drop — one shard
        // access and no name clone per span. `drain` re-sorts by
        // timestamp, which restores begin/end nesting order.
        Span {
            sink: Some(self),
            cat,
            name: name().into(),
            begin_raw: self.now_raw(),
            args: Vec::new(),
        }
    }

    /// Opens a span recorded only at [`Detail::Fine`] — for
    /// high-frequency interior work (a single primitive call, one
    /// optimizer node) whose tracing cost rivals the work itself.
    #[inline]
    pub fn span_fine<N, F>(&self, cat: &'static str, name: F) -> Span<'_>
    where
        N: Into<Name>,
        F: FnOnce() -> N,
    {
        if !self.fine() {
            return Span::inert(cat);
        }
        self.span(cat, name)
    }

    /// Records a point event (no duration).
    #[inline]
    pub fn instant<N, F>(&self, cat: &'static str, name: F)
    where
        N: Into<Name>,
        F: FnOnce() -> N,
    {
        if !self.enabled() {
            return;
        }
        self.record(Phase::Instant, cat, name().into(), Vec::new());
    }

    /// Records a point event only at [`Detail::Fine`].
    #[inline]
    pub fn instant_fine<N, F>(&self, cat: &'static str, name: F)
    where
        N: Into<Name>,
        F: FnOnce() -> N,
    {
        if !self.fine() {
            return;
        }
        self.record(Phase::Instant, cat, name().into(), Vec::new());
    }

    /// Records a point event with arguments; the argument closure runs
    /// only when the sink is enabled.
    #[inline]
    pub fn instant_args<N, F, A>(&self, cat: &'static str, name: F, args: A)
    where
        N: Into<Name>,
        F: FnOnce() -> N,
        A: FnOnce() -> Vec<(&'static str, ArgValue)>,
    {
        if !self.enabled() {
            return;
        }
        self.record(Phase::Instant, cat, name().into(), args());
    }

    /// Takes all recorded events, leaving the buffers empty. Events are
    /// sorted by time (per-thread order preserved among equal stamps).
    pub fn drain(&self) -> Trace {
        self.collect(true)
    }

    /// Copies all recorded events without clearing the buffers.
    pub fn snapshot_events(&self) -> Trace {
        self.collect(false)
    }

    fn collect(&self, take: bool) -> Trace {
        // Measure the tick rate against the wall clock over the sink's
        // whole lifetime — by drain time that baseline is long enough
        // that the scale factor is accurate to well under a percent.
        let elapsed_ns = self.epoch.elapsed().as_nanos() as u64;
        let elapsed_ticks = self.now_raw();
        let scale = if elapsed_ticks == 0 {
            1.0
        } else {
            elapsed_ns as f64 / elapsed_ticks as f64
        };
        let shards = self.shards.lock().unwrap();
        let mut events = Vec::new();
        let mut threads = Vec::new();
        for shard in shards.iter() {
            let mut buf = shard.events.lock().unwrap();
            if take {
                events.append(&mut buf);
            } else {
                events.extend(buf.iter().cloned());
            }
            threads.push(ThreadInfo {
                tid: shard.tid,
                name: shard.name.lock().unwrap().clone(),
            });
        }
        // Sort on the *raw* stamps: a span pushes its begin event only
        // at drop (after any inner spans), so per-shard buffer order is
        // not time order, and raw counter readings are effectively
        // unique while scaled ones can tie and break nesting.
        events.sort_by_key(|e| e.t_ns);
        for e in &mut events {
            e.t_ns = (e.t_ns as f64 * scale) as u64;
        }
        Trace { events, threads }
    }
}

/// RAII span guard returned by [`TraceSink::span`]: records the span's
/// begin and end events together when dropped (the begin timestamp was
/// captured at open). Inert — a no-op holding no allocation — when the
/// sink was disabled. The name travels on the begin event and the
/// attached arguments on the end event, which carries an empty name.
#[derive(Debug)]
pub struct Span<'s> {
    sink: Option<&'s TraceSink>,
    cat: &'static str,
    name: Name,
    /// Raw counter reading at span open.
    begin_raw: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl Span<'_> {
    /// The no-op span handed out while recording is off.
    fn inert(cat: &'static str) -> Span<'static> {
        Span {
            sink: None,
            cat,
            name: Name::default(),
            begin_raw: 0,
            args: Vec::new(),
        }
    }

    /// True when the span will be recorded — use to skip computing
    /// expensive argument values on the disabled path.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.sink.is_some()
    }

    /// Attaches an argument, carried on the span's end event.
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.sink.is_some() {
            if self.args.is_empty() {
                self.args.reserve(8);
            }
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            // Stamp the end first so the span's duration does not
            // include the shard lookup below.
            let end_raw = sink.now_raw();
            let shard = sink.shard();
            let tid = shard.tid;
            let mut buf = shard.events.lock().unwrap();
            buf.push(Event {
                t_ns: self.begin_raw,
                tid,
                phase: Phase::Begin,
                cat: self.cat,
                name: std::mem::take(&mut self.name),
                args: Vec::new(),
            });
            buf.push(Event {
                t_ns: end_raw,
                tid,
                phase: Phase::End,
                cat: self.cat,
                name: Name::default(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

/// A drained set of events, ready for export.
///
/// ```
/// use amgen_trace::{Event, Phase, Trace};
///
/// let trace = Trace {
///     events: vec![
///         Event::new(1_000, 0, Phase::Begin, "compact", "step:row"),
///         Event::new(9_000, 0, Phase::End, "compact", "step:row").with_arg("bridges", 1i64),
///     ],
///     threads: vec![],
/// };
/// assert!(trace.to_chrome_json().starts_with("{\"traceEvents\":["));
/// assert!(trace.report(5).contains("compact"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All events, sorted by `t_ns`.
    pub events: Vec<Event>,
    /// The threads (tracks) that recorded, in tid order.
    pub threads: Vec<ThreadInfo>,
}

impl Trace {
    /// Serializes to Chrome `trace_event` JSON — load the string (saved
    /// as a `.json` file) in `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// Writes the Chrome JSON to a file.
    pub fn write_chrome_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Renders the plain-text hierarchical run report (per-category
    /// self/total time, the `top_n` hottest span names, instant-event
    /// counters).
    pub fn report(&self, top_n: usize) -> String {
        report::render(self, top_n)
    }
}

/// Scans the process arguments for `--trace <path>` / `--trace=<path>`,
/// falling back to the `AMGEN_TRACE` environment variable — the shared
/// convention of the workspace's binaries and examples.
pub fn trace_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(std::path::PathBuf::from(p));
        }
    }
    std::env::var_os("AMGEN_TRACE").map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        assert!(!sink.enabled());
        {
            let mut s = sink.span("compact", || -> &'static str {
                panic!("name closure must not run when disabled")
            });
            #[allow(unreachable_code)]
            s.arg("k", 1i64);
        }
        sink.instant("opt", || -> &'static str { panic!("must not run") });
        assert!(sink.drain().events.is_empty());
    }

    #[test]
    fn spans_balance_and_nest() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        {
            let _outer = sink.span("dsl", || "outer");
            let mut inner = sink.span("compact", || "inner");
            inner.arg("n", 3i64);
        }
        let t = sink.drain();
        let phases: Vec<Phase> = t.events.iter().map(|e| e.phase).collect();
        assert_eq!(
            phases,
            vec![Phase::Begin, Phase::Begin, Phase::End, Phase::End]
        );
        // The name rides on the begin event, the args on the end event
        // (which carries an empty name — matched by category).
        assert_eq!(t.events[1].name, "inner");
        assert_eq!(t.events[2].name, "");
        assert_eq!(t.events[2].cat, "compact");
        assert_eq!(t.events[2].args, vec![("n", ArgValue::Int(3))]);
        // Drain cleared the buffers.
        assert!(sink.drain().events.is_empty());
    }

    #[test]
    fn threads_get_distinct_tracks() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        sink.instant("main", || "here");
        std::thread::scope(|scope| {
            for i in 0..3 {
                let sink = &sink;
                scope.spawn(move || {
                    sink.set_thread_name(format!("worker-{i}"));
                    let _s = sink.span("opt", || "work");
                });
            }
        });
        let t = sink.drain();
        let tids: std::collections::HashSet<u32> = t.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "main + three workers: {t:?}");
        assert_eq!(t.threads.len(), 4);
        let names: Vec<_> = t.threads.iter().filter_map(|th| th.name.clone()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn toggling_mid_span_keeps_the_end_event() {
        let sink = TraceSink::new();
        sink.set_enabled(true);
        let span = sink.span("drc", || "check");
        sink.set_enabled(false);
        drop(span);
        let t = sink.drain();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[1].phase, Phase::End);
    }

    #[test]
    fn two_sinks_do_not_share_shards() {
        let a = TraceSink::new();
        let b = TraceSink::new();
        a.set_enabled(true);
        b.set_enabled(true);
        a.instant("x", || "a");
        b.instant("x", || "b");
        assert_eq!(a.drain().events.len(), 1);
        assert_eq!(b.drain().events.len(), 1);
    }

    #[test]
    fn fine_probes_record_only_at_fine_detail() {
        let sink = TraceSink::new();
        sink.set_enabled(true); // Coarse
        assert_eq!(sink.detail(), Detail::Coarse);
        {
            let _coarse = sink.span("compact", || "step:row");
            let _fine = sink.span_fine("prim", || -> &'static str {
                panic!("fine name closure must not run at coarse detail")
            });
            sink.instant_fine("opt", || -> &'static str {
                panic!("fine name closure must not run at coarse detail")
            });
        }
        assert_eq!(sink.drain().events.len(), 2); // the coarse pair only

        sink.set_detail(Detail::Fine);
        {
            let _coarse = sink.span("compact", || "step:row");
            let _fine = sink.span_fine("prim", || "inbox");
            sink.instant_fine("opt", || "prune");
        }
        assert_eq!(sink.drain().events.len(), 5);
    }

    #[test]
    fn trace_path_parsing_ignores_unrelated_args() {
        // Only checks the env fallback: args of the test harness have no
        // --trace flag.
        std::env::remove_var("AMGEN_TRACE");
        assert!(trace_path_from_args().is_none());
    }
}

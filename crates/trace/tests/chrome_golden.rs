//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! A fixed, hand-built [`Trace`] must serialize byte for byte to
//! `tests/golden/chrome_basic.json`. The exporter is a pure function of
//! the trace (timestamps are carried in the events, never read from the
//! clock), so the output is fully deterministic.
//!
//! Regenerate after an intentional format change with
//! `UPDATE_EXPECTED=1 cargo test -p amgen-trace`.

use std::path::{Path, PathBuf};

use amgen_trace::{Event, Phase, ThreadInfo, Trace};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_basic.json")
}

/// A small trace exercising every record kind the exporter emits:
/// thread-name metadata, nested spans, a second worker track, sub-µs
/// timestamps, an instant event, and args of all three value types
/// (including a string that needs JSON escaping).
fn fixture() -> Trace {
    let events = vec![
        Event::new(0, 0, Phase::Begin, "opt", "search"),
        Event::new(1_500, 1, Phase::Begin, "opt", "expand:depth0"),
        Event::new(2_000, 0, Phase::Instant, "opt", "incumbent")
            .with_arg("score", 12.5)
            .with_arg("depth", 3i64),
        Event::new(4_250, 1, Phase::End, "opt", "expand:depth0").with_arg("children", 4i64),
        Event::new(9_000, 0, Phase::End, "opt", "search")
            .with_arg("note", "quote \" backslash \\ newline \n done")
            .with_arg("explored", 17i64),
    ];
    let threads = vec![
        ThreadInfo {
            tid: 0,
            name: Some("main".to_string()),
        },
        ThreadInfo {
            tid: 1,
            name: Some("opt-worker-0".to_string()),
        },
    ];
    Trace { events, threads }
}

#[test]
fn chrome_json_matches_golden_file() {
    let rendered = fixture().to_chrome_json();
    let path = golden_path();
    if std::env::var_os("UPDATE_EXPECTED").is_some() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing {path:?}; run UPDATE_EXPECTED=1 cargo test"));
    assert_eq!(
        rendered, expected,
        "Chrome JSON diverged from golden file (UPDATE_EXPECTED=1 to regenerate)"
    );
}

#[test]
fn golden_fixture_covers_the_format() {
    // Belt and braces alongside the byte comparison: the fixture must
    // keep exercising each structural feature the golden file locks in.
    let json = fixture().to_chrome_json();
    for needle in [
        "\"traceEvents\":[",               // container
        "\"displayTimeUnit\":\"ms\"",      // trailing metadata
        "\"ph\":\"M\"",                    // thread_name metadata records
        "\"name\":\"thread_name\"",        //
        "\"opt-worker-0\"",                // worker track naming
        "\"ph\":\"B\"",                    // span begin
        "\"ph\":\"E\"",                    // span end
        "\"ph\":\"i\"",                    // instant event...
        "\"s\":\"t\"",                     // ...with thread scope
        "\"ts\":1.500",                    // sub-µs timestamp formatting
        "\"score\":12.5",                  // float arg
        "\"depth\":3",                     // int arg
        "\\\" backslash \\\\ newline \\n", // string escaping
    ] {
        assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
    }
}

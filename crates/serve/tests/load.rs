//! The load harness: hundreds of concurrent mixed requests — figure
//! workloads plus the hostile corpus's bombs — replayed against a live
//! server. Asserts zero panics, byte-identical deterministic payloads
//! for identical requests, admission refusals with zero fuel spent, and
//! prints the throughput/p50/p99 line recorded in BENCH_serve.json.
//!
//! Run with `--nocapture` to see the numbers:
//!
//! ```text
//! cargo test --release -p amgen-serve --test load -- --nocapture
//! ```

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use amgen_faults::hostile::{self, Refusal};
use amgen_serve::json::{self, Json};
use amgen_serve::proto::{read_frame, write_frame};
use amgen_serve::{ServeConfig, Server};

/// One workload of the mixed corpus.
struct Work {
    id: &'static str,
    request: String,
    /// `None` = must succeed; `Some(code)` = must be refused with
    /// exactly this code and zero fuel spent.
    refusal: Option<&'static str>,
}

fn corpus() -> Vec<Work> {
    let mut corpus = vec![
        Work {
            id: "fig2-poly",
            request: r#"{"id":"fig2-poly","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#
                .into(),
            refusal: None,
        },
        Work {
            id: "fig2-pdiff",
            request:
                r#"{"id":"fig2-pdiff","source":"row = ContactRow(layer = lyr, W = w)","params":{"lyr":"pdiff","w":14}}"#
                    .into(),
            refusal: None,
        },
        Work {
            id: "fig7",
            request: r#"{"id":"fig7","source":"pair = DiffPair(W = 10, L = 2)"}"#.into(),
            refusal: None,
        },
        Work {
            id: "interdigit",
            request:
                r#"{"id":"interdigit","source":"t = Interdigit(n = n, W = 8, L = 2)","params":{"n":4}}"#
                    .into(),
            refusal: None,
        },
        Work {
            id: "stacked",
            request: r#"{"id":"stacked","source":"s = Stacked(n = 3, W = 8, L = 2)"}"#.into(),
            refusal: None,
        },
        Work {
            id: "variant",
            request: r#"{"id":"variant","source":"r = FlexRow(layer = \"poly\", S = 20)"}"#.into(),
            refusal: None,
        },
    ];
    for bomb in hostile::ALL {
        corpus.push(Work {
            id: bomb.name,
            request: format!(
                r#"{{"id":{},"source":{}}}"#,
                Json::from(bomb.name),
                Json::from(bomb.source)
            ),
            refusal: Some(match bomb.refusal {
                Refusal::Lint => "LINT_REJECTED",
                Refusal::Admission => "ADMISSION_REFUSED",
                Refusal::Dynamic => "BUDGET_EXHAUSTED",
            }),
        });
    }
    corpus
}

/// Strips the documented non-deterministic section and returns the
/// canonical payload serialization.
fn deterministic_payload(doc: Json) -> String {
    match doc {
        Json::Obj(mut m) => {
            m.remove("stats");
            Json::Obj(m).to_string()
        }
        other => other.to_string(),
    }
}

#[test]
fn mixed_load_is_panic_free_deterministic_and_fast_enough() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr();
    let corpus = corpus();
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 40; // 320 requests total

    // id -> every deterministic payload observed for that id.
    let payloads: Mutex<BTreeMap<String, Vec<String>>> = Mutex::new(BTreeMap::new());
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let corpus = &corpus;
            let payloads = &payloads;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                for i in 0..PER_CLIENT {
                    // Stagger the starting offset per client so the
                    // request mix interleaves across connections, and
                    // spread the clients over four tenants so dispatch
                    // exercises more than one shard (the tenant is not
                    // part of the deterministic payload).
                    let work = &corpus[(client + i) % corpus.len()];
                    let request = format!(
                        "{{\"tenant\":\"team-{}\",{}",
                        client % 4,
                        &work.request[1..]
                    );
                    let sent = Instant::now();
                    write_frame(&mut stream, request.as_bytes()).unwrap();
                    let payload = read_frame(&mut stream, usize::MAX).expect("response");
                    latencies.lock().unwrap().push(sent.elapsed());

                    let doc =
                        json::parse(std::str::from_utf8(&payload).unwrap()).expect("valid JSON");
                    assert_eq!(
                        doc.get("id").and_then(Json::as_str),
                        Some(work.id),
                        "response id echoes the request"
                    );
                    let code = doc
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str);
                    assert_ne!(code, Some("WORKER_PANIC"), "zero panics under load");
                    match work.refusal {
                        None => {
                            assert_eq!(
                                doc.get("ok").and_then(Json::as_bool),
                                Some(true),
                                "workload `{}` must succeed, got {code:?}",
                                work.id
                            );
                        }
                        Some(want) => {
                            assert_eq!(code, Some(want), "bomb `{}`", work.id);
                            let fuel = doc
                                .get("stats")
                                .and_then(|s| s.get("fuel_used"))
                                .and_then(Json::as_num);
                            assert_eq!(
                                fuel,
                                Some(0.0),
                                "bomb `{}` must be refused with zero fuel spent",
                                work.id
                            );
                        }
                    }
                    payloads
                        .lock()
                        .unwrap()
                        .entry(work.id.to_string())
                        .or_default()
                        .push(deterministic_payload(doc));
                }
            });
        }
    });
    let wall = t0.elapsed();

    // Byte-identical payloads for identical requests — including the
    // cache-cold first run vs every cache-warm repeat.
    for (id, observed) in payloads.lock().unwrap().iter() {
        let first = &observed[0];
        assert!(
            observed.iter().all(|p| p == first),
            "workload `{id}`: {} observations not byte-identical",
            observed.len()
        );
    }

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_unstable();
    let total = lat.len();
    assert_eq!(total, CLIENTS * PER_CLIENT);
    let p50 = lat[total / 2];
    let p99 = lat[total * 99 / 100];
    let throughput = total as f64 / wall.as_secs_f64();
    println!(
        "BENCH_serve: requests={} clients={} wall_ms={} throughput_rps={:.0} p50_us={} p99_us={}",
        total,
        CLIENTS,
        wall.as_millis(),
        throughput,
        p50.as_micros(),
        p99.as_micros()
    );

    // Generous bound (debug builds on one core stay well under it);
    // the CI gate re-checks in release where p99 is milliseconds.
    assert!(
        p99 < Duration::from_millis(2500),
        "p99 {p99:?} exceeds the latency budget"
    );
    assert_eq!(server.served(), total as u64, "every request fully served");
    assert_eq!(server.shed(), 0, "no shedding at this load");
    assert_eq!(server.protocol_errors(), 0);

    // The self-describing stats block: totals plus per-tenant lines
    // carrying cache and admission counters.
    let lines = server.stats_lines();
    assert!(lines[0].starts_with("served="));
    let tenant_lines: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("tenant=team-"))
        .collect();
    assert_eq!(tenant_lines.len(), 4, "one aggregate line per tenant");
    for line in tenant_lines {
        // Every tenant saw cache traffic and sent every bomb, so its
        // aggregate line must carry both families of counters.
        assert!(line.contains("cache_hits="), "stats line: {line}");
        assert!(line.contains("admission_refused="), "stats line: {line}");
    }
    server.shutdown();
}

#[test]
fn saturation_sheds_with_typed_overload_errors() {
    // One worker, queue depth 1: concurrent slow-ish requests must
    // overflow, and overflow answers OVERLOADED instead of blocking.
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    const CLIENTS: usize = 10;
    let outcomes: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let req = r#"{"id":"slow","source":"t = Interdigit(n = 6, W = 8, L = 2)"}"#;
                write_frame(&mut stream, req.as_bytes()).unwrap();
                let payload = read_frame(&mut stream, usize::MAX).expect("response");
                let doc = json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
                let outcome = match doc.get("ok").and_then(Json::as_bool) {
                    Some(true) => "ok".to_string(),
                    _ => doc
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                };
                outcomes.lock().unwrap().push(outcome);
            });
        }
    });

    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), CLIENTS);
    assert!(
        outcomes.iter().all(|o| o == "ok" || o == "OVERLOADED"),
        "only success or typed shedding under saturation: {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|o| o == "ok"),
        "the pool still makes progress while shedding"
    );
    // With 10 simultaneous clients, one worker and one queue slot, at
    // least one request must have been shed. (The first request warms
    // the cache, so later ones are fast — but arrival is simultaneous.)
    assert!(
        server.shed() > 0 || outcomes.iter().all(|o| o == "ok"),
        "accounting matches outcomes"
    );
    server.shutdown();
}

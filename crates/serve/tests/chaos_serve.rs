//! Service-level chaos: workers killed and wedged mid-load, shutdown
//! while clients are still sending, truncated connections, tripping
//! circuit breakers, warm restarts from a cache snapshot. The contract
//! under test is one sentence: **every accepted request gets exactly
//! one typed response, and the process never dies.**
//!
//! Worker kills ride the test-only [`WorkerChaos`] hook, driven by a
//! seeded `amgen-faults` plan so the kill schedule is deterministic
//! and replayable.
//!
//! The `#[ignore]` soak at the bottom is the CI endurance gate:
//!
//! ```text
//! cargo test --release -p amgen-serve --test chaos_serve -- --ignored --nocapture
//! ```

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use amgen_core::{FaultAction, FaultHook, FaultSite};
use amgen_faults::hostile::{self, Refusal};
use amgen_faults::FaultPlan;
use amgen_serve::json::{self, Json};
use amgen_serve::proto::{read_frame, write_frame};
use amgen_serve::{ServeConfig, Server, WorkerChaos, WorkerFate};

/// The figure workloads of the load harness — requests that must
/// succeed when they are not the one in a killed worker's hand.
const FIGURES: [(&str, &str); 4] = [
    (
        "fig2-poly",
        r#"{"id":"fig2-poly","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#,
    ),
    (
        "fig7",
        r#"{"id":"fig7","source":"pair = DiffPair(W = 10, L = 2)"}"#,
    ),
    (
        "interdigit",
        r#"{"id":"interdigit","source":"t = Interdigit(n = 4, W = 8, L = 2)"}"#,
    ),
    (
        "stacked",
        r#"{"id":"stacked","source":"s = Stacked(n = 3, W = 8, L = 2)"}"#,
    ),
];

/// A chaos hook killing the occurrences a seeded fault plan names: the
/// plan's per-site counter makes "kill the 3rd, 7th and 11th dequeue"
/// deterministic in *count* regardless of thread interleaving.
#[derive(Debug)]
struct PlanChaos(Arc<FaultPlan>);

impl WorkerChaos for PlanChaos {
    fn fate(&self, _shard: usize, _seq: u64) -> WorkerFate {
        match self.0.decide(FaultSite::OptWorker, "serve-worker") {
            FaultAction::Panic => WorkerFate::Kill,
            _ => WorkerFate::Run,
        }
    }
}

/// Wedges (sleeps through) exactly the first `n` dequeues, process-wide.
#[derive(Debug)]
struct WedgeFirst {
    remaining: AtomicU64,
    wedge: Duration,
}

impl WorkerChaos for WedgeFirst {
    fn fate(&self, _shard: usize, _seq: u64) -> WorkerFate {
        let prev = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .unwrap_or(0);
        if prev > 0 {
            WorkerFate::Wedge(self.wedge)
        } else {
            WorkerFate::Run
        }
    }
}

fn request(stream: &mut TcpStream, req: &str) -> Json {
    write_frame(stream, req.as_bytes()).expect("write request");
    let payload = read_frame(stream, usize::MAX).expect("read response");
    json::parse(std::str::from_utf8(&payload).unwrap()).expect("valid response JSON")
}

/// "ok" or the error code — every response must be one or the other.
fn outcome(doc: &Json) -> String {
    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        return "ok".to_string();
    }
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("failed response carries error.code")
        .to_string()
}

/// Strips the documented non-deterministic `stats` section.
fn deterministic_payload(doc: Json) -> String {
    match doc {
        Json::Obj(mut m) => {
            m.remove("stats");
            Json::Obj(m).to_string()
        }
        other => other.to_string(),
    }
}

fn stat(doc: &Json, field: &str) -> f64 {
    doc.get("stats")
        .and_then(|s| s.get(field))
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("stats.{field} present"))
}

/// Reference payloads from a quiet (chaos-free) server, for the
/// byte-identical-after-recovery assertions.
fn quiet_payloads() -> BTreeMap<String, String> {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut payloads = BTreeMap::new();
    for (id, req) in FIGURES {
        let doc = request(&mut stream, req);
        assert_eq!(outcome(&doc), "ok", "quiet run serves `{id}`");
        payloads.insert(id.to_string(), deterministic_payload(doc));
    }
    drop(stream);
    server.shutdown();
    payloads
}

#[test]
fn killed_workers_are_respawned_and_no_request_is_lost() {
    let reference = quiet_payloads();

    // Kill the 3rd, 7th and 11th dequeue — three worker deaths spread
    // through the run, each with a job in hand.
    let (plan, _hook) = FaultPlan::new(0xC4A05)
        .panic_at(FaultSite::OptWorker, &[3, 7, 11])
        .build();
    let config = ServeConfig {
        workers: 2,
        worker_chaos: Some(Arc::new(PlanChaos(plan.clone()))),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 10;
    let outcomes: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let payloads: Mutex<BTreeMap<String, Vec<String>>> = Mutex::new(BTreeMap::new());

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let outcomes = &outcomes;
            let payloads = &payloads;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                for i in 0..PER_CLIENT {
                    let (id, req) = FIGURES[(client + i) % FIGURES.len()];
                    // Distinct tenants spread the load over both shards.
                    let req = format!("{{\"tenant\":\"chaos-{client}\",{}", &req[1..]);
                    let doc = request(&mut stream, &req);
                    assert_eq!(
                        doc.get("id").and_then(Json::as_str),
                        Some(id),
                        "every accepted request is answered under its own id"
                    );
                    let o = outcome(&doc);
                    if o == "ok" {
                        payloads
                            .lock()
                            .unwrap()
                            .entry(id.to_string())
                            .or_default()
                            .push(deterministic_payload(doc));
                    }
                    outcomes.lock().unwrap().push(o);
                }
            });
        }
    });

    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), CLIENTS * PER_CLIENT, "one response each");
    let panics = outcomes.iter().filter(|o| *o == "WORKER_PANIC").count();
    let oks = outcomes.iter().filter(|o| *o == "ok").count();
    assert!(
        outcomes.iter().all(|o| o == "ok" || o == "WORKER_PANIC"),
        "only success or the kill's own typed error: {outcomes:?}"
    );
    // The plan fired exactly its three scheduled kills; each killed
    // exactly one in-hand job and no other.
    assert_eq!(plan.injected(), 3, "the kill schedule ran to completion");
    assert_eq!(panics, 3, "each kill costs exactly the job in hand");
    assert_eq!(oks, CLIENTS * PER_CLIENT - 3);

    // Wait out the supervisor's poll interval for the last respawn.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.respawns() < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.worker_panics(), 3, "every death was observed");
    assert_eq!(server.respawns(), 3, "every death was replaced");

    // Post-recovery payloads are byte-identical to the quiet run's.
    for (id, observed) in payloads.lock().unwrap().iter() {
        for p in observed {
            assert_eq!(p, &reference[id], "payload for `{id}` after recovery");
        }
    }
    server.shutdown();
}

#[test]
fn wedged_worker_trips_the_watchdog_and_is_replaced() {
    // One worker, a tight watchdog, and a first job that sleeps far
    // past twice the watchdog: the supervisor must cancel, then abandon
    // and respawn. The wedged thread still answers its job late —
    // better a late answer than a dropped one.
    let config = ServeConfig {
        workers: 1,
        watchdog: Duration::from_millis(100),
        worker_chaos: Some(Arc::new(WedgeFirst {
            remaining: AtomicU64::new(1),
            wedge: Duration::from_millis(700),
        })),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    let wedged = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let doc = request(&mut stream, FIGURES[0].1);
        outcome(&doc)
    });

    // While the first job is wedged, the replacement worker must serve
    // fresh traffic on the same shard.
    std::thread::sleep(Duration::from_millis(350));
    assert!(server.respawns() >= 1, "the wedged worker was replaced");
    assert!(server.watchdog_cancels() >= 1, "the watchdog fired first");
    let mut stream = TcpStream::connect(addr).expect("connect");
    let doc = request(&mut stream, FIGURES[1].1);
    assert_eq!(outcome(&doc), "ok", "replacement serves while wedged");

    let late = wedged.join().expect("client thread");
    assert_eq!(late, "ok", "the wedged job is still answered");
    server.shutdown();
}

#[test]
fn shutdown_mid_load_answers_every_accepted_request() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr();
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 30;
    let outcomes: Mutex<Vec<String>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let outcomes = &outcomes;
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                for i in 0..PER_CLIENT {
                    let (_, req) = FIGURES[(client + i) % FIGURES.len()];
                    let doc = request(&mut stream, req);
                    outcomes.lock().unwrap().push(outcome(&doc));
                }
            });
        }
        // Pull the plug mid-load; the scope still joins every client,
        // so every request written above must have been answered.
        std::thread::sleep(Duration::from_millis(30));
        server.begin_shutdown();
    });

    let outcomes = outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), CLIENTS * PER_CLIENT, "one response each");
    assert!(
        outcomes
            .iter()
            .all(|o| o == "ok" || o == "SHUTTING_DOWN" || o == "OVERLOADED"),
        "only success or typed refusals during drain: {outcomes:?}"
    );
    assert!(
        outcomes.iter().any(|o| o == "ok"),
        "work accepted before the signal was served"
    );
    assert!(
        outcomes.iter().any(|o| o == "SHUTTING_DOWN"),
        "work arriving after the signal was refused, typed"
    );
    // Blocks until drained and joined; a hang here is the failure.
    server.shutdown();
}

#[test]
fn truncated_connections_under_chaos_leave_the_server_serving() {
    let (plan, _hook) = FaultPlan::new(7)
        .panic_at(FaultSite::OptWorker, &[2, 4])
        .build();
    let config = ServeConfig {
        worker_chaos: Some(Arc::new(PlanChaos(plan))),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();

    for round in 0..8 {
        // A client that declares a frame and vanishes mid-payload…
        {
            use std::io::Write;
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"5000\n{\"id\":\"gone").unwrap();
        }
        // …interleaved with real traffic that keeps hitting the kill
        // schedule. Both kinds of abuse at once must leave the server
        // answering: ok or the kill's typed error, never a hang.
        let (id, req) = FIGURES[round % FIGURES.len()];
        let mut stream = TcpStream::connect(addr).expect("connect");
        let doc = request(&mut stream, req);
        assert_eq!(doc.get("id").and_then(Json::as_str), Some(id));
        let o = outcome(&doc);
        assert!(o == "ok" || o == "WORKER_PANIC", "round {round}: {o}");
    }

    // The probe after all abuse: a fresh connection and a clean answer.
    let mut stream = TcpStream::connect(addr).expect("connect");
    assert_eq!(outcome(&request(&mut stream, FIGURES[0].1)), "ok");
    assert_eq!(server.worker_panics(), 2, "the kill schedule completed");
    server.shutdown();
}

#[test]
fn breaker_trips_on_a_refusal_storm_and_recovers_after_cooldown() {
    let lint_bomb = hostile::ALL
        .iter()
        .find(|b| matches!(b.refusal, Refusal::Lint))
        .expect("hostile corpus has a lint-rejected program");
    let config = ServeConfig {
        breaker_window: 8,
        breaker_cooldown: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    let mut evil = TcpStream::connect(addr).expect("connect");
    let mut good = TcpStream::connect(addr).expect("connect");

    let bomb_req = format!(
        r#"{{"id":"storm","tenant":"evil","source":{}}}"#,
        Json::from(lint_bomb.source)
    );
    let good_req = |tenant: &str| {
        format!(
            r#"{{"id":"fine","tenant":"{tenant}","source":"row = ContactRow(layer = \"poly\", W = 10)"}}"#
        )
    };

    // Fill the window with refusals: each is answered LINT_REJECTED
    // (the breaker is *recording*, not yet refusing).
    for i in 0..8 {
        let doc = request(&mut evil, &bomb_req);
        assert_eq!(outcome(&doc), "LINT_REJECTED", "storm request {i}");
    }
    // The window is full and 100% caller-fault: open. Fast refusal with
    // the documented deterministic retry hint (= the cooldown).
    let doc = request(&mut evil, &bomb_req);
    assert_eq!(outcome(&doc), "CIRCUIT_OPEN");
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_num),
        Some(300.0),
        "retry_after_ms is the configured cooldown, not a measured time"
    );
    assert!(server.breaker_refused() >= 1);

    // Another tenant is untouched by evil's breaker.
    let doc = request(&mut good, &good_req("good"));
    assert_eq!(outcome(&doc), "ok", "breakers are per-tenant");

    // After the cooldown the breaker admits one probe; a good probe
    // closes it and normal service resumes.
    std::thread::sleep(Duration::from_millis(350));
    let doc = request(&mut evil, &good_req("evil"));
    assert_eq!(outcome(&doc), "ok", "the half-open probe is admitted");
    let doc = request(&mut evil, &good_req("evil"));
    assert_eq!(outcome(&doc), "ok", "a good probe closes the breaker");
    server.shutdown();
}

#[test]
fn snapshot_warm_restart_hits_the_cache_and_corruption_means_cold_start() {
    let reference = quiet_payloads();
    let path = std::env::temp_dir().join(format!("amgen-chaos-snap-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = || ServeConfig {
        cache_snapshot: Some(path.clone()),
        ..ServeConfig::default()
    };

    // Server A: populate the cache, then save it on graceful shutdown.
    {
        let server = Server::start("127.0.0.1:0", config()).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        for (_, req) in FIGURES {
            assert_eq!(outcome(&request(&mut stream, req)), "ok");
        }
        drop(stream);
        server.shutdown();
    }
    assert!(path.exists(), "graceful shutdown wrote the snapshot");

    // Server B: the very first figure request is a cache hit, and the
    // payload matches the quiet reference byte for byte.
    {
        let server = Server::start("127.0.0.1:0", config()).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let (id, req) = FIGURES[0];
        let doc = request(&mut stream, req);
        assert_eq!(outcome(&doc), "ok");
        assert!(
            stat(&doc, "cache_hits") >= 1.0,
            "warm restart serves the first repeat from the cache: {doc}"
        );
        assert_eq!(stat(&doc, "cache_misses"), 0.0);
        assert_eq!(
            deterministic_payload(doc),
            reference[id],
            "restored cache changes nothing in the payload"
        );
        drop(stream);
        server.shutdown();
    }

    // Corrupt the snapshot: flip bytes in the middle. The next start
    // must come up cold — no error a client can observe, and certainly
    // no trust in the corrupted image.
    let mut image = std::fs::read(&path).expect("snapshot readable");
    let mid = image.len() / 2;
    for b in image.iter_mut().skip(mid).take(16) {
        *b ^= 0xA5;
    }
    std::fs::write(&path, &image).expect("rewrite snapshot");
    {
        let server = Server::start("127.0.0.1:0", config()).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let (id, req) = FIGURES[0];
        let doc = request(&mut stream, req);
        assert_eq!(outcome(&doc), "ok", "corrupt snapshot still serves");
        assert!(
            stat(&doc, "cache_misses") >= 1.0,
            "corrupt snapshot means a cold cache, not a poisoned one"
        );
        assert_eq!(deterministic_payload(doc), reference[id]);
        drop(stream);
        server.shutdown();
    }
    let _ = std::fs::remove_file(&path);
}

/// The endurance gate: ≥30 s of mixed load with scheduled worker kills
/// and one mid-load graceful restart over a cache snapshot. Prints the
/// `BENCH_serve_chaos:` line ci.sh greps for.
#[test]
#[ignore = "soak: run explicitly with --ignored (the CI chaos gate)"]
fn soak_mixed_load_with_kills_and_one_restart() {
    let path = std::env::temp_dir().join(format!("amgen-soak-snap-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    const HALF: Duration = Duration::from_secs(16);
    const CLIENTS: usize = 4;
    let t0 = Instant::now();
    let total_requests = AtomicU64::new(0);
    let total_ok = AtomicU64::new(0);
    let total_panics = AtomicU64::new(0);
    let total_refused = AtomicU64::new(0);
    let mut kills = 0;
    let mut respawns = 0;

    // Two halves around one graceful restart; both halves run the kill
    // schedule near the start so recovery is exercised under load.
    for half in 0..2 {
        let (plan, _hook) = FaultPlan::new(0x50AC + half)
            .panic_at(FaultSite::OptWorker, &[10, 60, 200])
            .build();
        let config = ServeConfig {
            workers: 2,
            cache_snapshot: Some(path.clone()),
            worker_chaos: Some(Arc::new(PlanChaos(plan.clone()))),
            ..ServeConfig::default()
        };
        let server = Server::start("127.0.0.1:0", config).expect("bind");
        let addr = server.addr();
        let deadline = Instant::now() + HALF;

        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let (requests, oks, panics, refused) =
                    (&total_requests, &total_ok, &total_panics, &total_refused);
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut i = 0usize;
                    while Instant::now() < deadline {
                        let (_, req) = FIGURES[(client + i) % FIGURES.len()];
                        i += 1;
                        let doc = request(&mut stream, req);
                        requests.fetch_add(1, Ordering::Relaxed);
                        match outcome(&doc).as_str() {
                            "ok" => {
                                oks.fetch_add(1, Ordering::Relaxed);
                            }
                            "WORKER_PANIC" => {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                            "SHUTTING_DOWN" | "OVERLOADED" => {
                                refused.fetch_add(1, Ordering::Relaxed);
                            }
                            other => panic!("untyped outcome under chaos: {other}"),
                        }
                    }
                });
            }
        });
        kills += plan.injected();
        respawns += server.respawns();
        // Mid-load restart between the halves: graceful drain + snapshot
        // save, then the second half warm-starts from it.
        server.shutdown();
    }

    let wall = t0.elapsed();
    let requests = total_requests.load(Ordering::Relaxed);
    let oks = total_ok.load(Ordering::Relaxed);
    let panics = total_panics.load(Ordering::Relaxed);
    let refused = total_refused.load(Ordering::Relaxed);
    assert!(wall >= Duration::from_secs(30), "soak must run ≥30 s");
    assert!(kills >= 3, "the soak must inject ≥3 worker kills: {kills}");
    assert_eq!(
        requests,
        oks + panics + refused,
        "every request has exactly one typed outcome"
    );
    assert!(oks > 0 && requests > 0);
    println!(
        "BENCH_serve_chaos: duration_s={} requests={} ok={} worker_panic={} refused={} \
         kills={} respawns={} restarts=1 throughput_rps={:.0}",
        wall.as_secs(),
        requests,
        oks,
        panics,
        refused,
        kills,
        respawns,
        requests as f64 / wall.as_secs_f64()
    );
    let _ = std::fs::remove_file(&path);
}

//! Hostile-client coverage: every malformed byte stream a client can
//! send must produce a typed protocol error or a clean close — never a
//! panic, never a hung worker. After each abuse the server must still
//! serve a well-formed request.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

use amgen_serve::json::{self, Json};
use amgen_serve::proto::{read_frame, write_frame, FrameError};
use amgen_serve::{ServeConfig, Server};

fn start() -> Server {
    Server::start("127.0.0.1:0", ServeConfig::default()).expect("bind test server")
}

fn connect(server: &Server) -> TcpStream {
    TcpStream::connect(server.addr()).expect("connect to test server")
}

/// Sends raw bytes, half-closes, and returns the frames the server
/// answered before closing.
fn send_raw(server: &Server, bytes: &[u8]) -> Vec<Json> {
    let mut stream = connect(server);
    stream.write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    read_all(&mut stream)
}

fn read_all(stream: &mut TcpStream) -> Vec<Json> {
    let mut docs = Vec::new();
    loop {
        match read_frame(stream, usize::MAX) {
            Ok(p) => docs.push(json::parse(std::str::from_utf8(&p).unwrap()).unwrap()),
            Err(FrameError::Closed) => break,
            Err(e) => panic!("unreadable response frame: {e}"),
        }
    }
    docs
}

fn error_code(doc: &Json) -> &str {
    doc.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error.code present")
}

/// A well-formed request must still round-trip — the recovery probe run
/// after every abuse.
fn assert_still_serving(server: &Server) {
    let mut stream = connect(server);
    let req = r#"{"id":"probe","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#;
    write_frame(&mut stream, req.as_bytes()).unwrap();
    let payload = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn malformed_length_prefixes_get_typed_errors() {
    let server = start();
    let cases: [(&[u8], &str); 4] = [
        (b"abc\n{}", "PROTO_BAD_FRAME"),
        (b"999999999\n", "PROTO_BAD_FRAME"), // 9 digits: not a length line
        (b"99999999\n", "PROTO_FRAME_TOO_LARGE"), // 8 digits, over max_frame
        (b"100\n{\"truncated", "PROTO_TRUNCATED"),
    ];
    for (bytes, want) in cases {
        let docs = send_raw(&server, bytes);
        assert_eq!(docs.len(), 1, "exactly one error frame for {want}");
        assert_eq!(error_code(&docs[0]), want);
        assert_eq!(
            docs[0]
                .get("error")
                .and_then(|e| e.get("phase"))
                .and_then(Json::as_str),
            Some("protocol")
        );
        assert_still_serving(&server);
    }
    assert_eq!(server.protocol_errors(), 4);
    server.shutdown();
}

#[test]
fn mid_request_disconnect_is_a_clean_close() {
    let server = start();
    {
        let mut stream = connect(&server);
        stream.write_all(b"5000\n{\"id\":").unwrap();
        // Drop the connection with most of the frame unsent.
    }
    {
        // Disconnect before any bytes at all.
        let _ = connect(&server);
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn mid_response_write_disconnect_is_counted_and_survived() {
    use std::time::{Duration, Instant};
    let server = start();
    // Pipeline two requests and vanish without reading either answer:
    // the server meets a dead socket mid-response-write (the first
    // response may land in kernel buffers; the second write or the
    // next read observes the reset). Either way: counted, logged, and
    // the worker that produced the responses is untouched.
    for _ in 0..4 {
        let mut stream = connect(&server);
        let req = r#"{"id":"ghost","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#;
        write_frame(&mut stream, req.as_bytes()).unwrap();
        write_frame(&mut stream, req.as_bytes()).unwrap();
        // Closing with the responses unread makes the kernel send RST
        // rather than FIN, so the server's next write or read on this
        // connection genuinely fails instead of filling a dead buffer.
        drop(stream);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.client_disconnects() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.client_disconnects() >= 1,
        "a vanished client is counted, not ignored"
    );
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn invalid_utf8_and_bad_json_keep_the_connection_usable() {
    let server = start();
    let mut stream = connect(&server);

    write_frame(&mut stream, &[0xff, 0xfe, 0x80, 0x80]).unwrap();
    let p = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
    assert_eq!(error_code(&doc), "PROTO_INVALID_UTF8");

    write_frame(&mut stream, b"{\"id\": oops").unwrap();
    let p = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
    assert_eq!(error_code(&doc), "PROTO_BAD_JSON");

    // Valid UTF-8 whose `\u` escape "digits" straddle a multi-byte
    // character — hostile input that must be a typed error, never a
    // char-boundary panic in the reader.
    write_frame(&mut stream, "{\"id\":\"\\u0µµ\"}".as_bytes()).unwrap();
    let p = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
    assert_eq!(error_code(&doc), "PROTO_BAD_JSON");

    // Document-level failures are recoverable: the same connection
    // serves a good request afterwards.
    let req = r#"{"id":"after","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#;
    write_frame(&mut stream, req.as_bytes()).unwrap();
    let p = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn schema_violations_are_bad_request() {
    let server = start();
    let mut stream = connect(&server);
    let cases = [
        r#"{"source":"x = 1","surprise":true}"#,
        r#"{"params":{"W":10}}"#,
        r#"{"source":"x = 1","budget":{"fool":1}}"#,
        r#"{"source":"x = 1","params":{"not an ident":1}}"#,
        r#"[1,2,3]"#,
        r#"{"source":"x = 1","params":{"s":"\"; DROP INBOX"}}"#,
        // A deadline that expires before an idle server can dequeue:
        // refused up front instead of misreported as OVERLOADED.
        r#"{"source":"x = 1","budget":{"wall_ms":0}}"#,
    ];
    for req in cases {
        write_frame(&mut stream, req.as_bytes()).unwrap();
        let p = read_frame(&mut stream, usize::MAX).unwrap();
        let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
        assert_eq!(error_code(&doc), "PROTO_BAD_REQUEST", "for {req}");
        assert!(
            doc.get("error").and_then(|e| e.get("message")).is_some(),
            "refusals explain themselves"
        );
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn duplicate_keys_and_depth_bombs_are_rejected() {
    let server = start();
    let mut stream = connect(&server);

    write_frame(&mut stream, br#"{"source":"x = 1","source":"y = 2"}"#).unwrap();
    let p = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
    assert_eq!(error_code(&doc), "PROTO_BAD_JSON");

    let depth_bomb = format!("{}1{}", "[".repeat(500), "]".repeat(500));
    write_frame(&mut stream, depth_bomb.as_bytes()).unwrap();
    let p = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
    assert_eq!(error_code(&doc), "PROTO_BAD_JSON");

    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn tenant_accounting_is_bounded_under_name_cycling() {
    // The tenant name is client-chosen and unauthenticated: cycling
    // names must not grow the daemon's accounting map without bound.
    let config = ServeConfig {
        max_tenants: 4,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut stream = connect(&server);
    for i in 0..12 {
        let req = format!(
            r#"{{"id":"t{i}","tenant":"cycler-{i}","source":"row = ContactRow(layer = \"poly\", W = 10)"}}"#
        );
        write_frame(&mut stream, req.as_bytes()).unwrap();
        let p = read_frame(&mut stream, usize::MAX).unwrap();
        let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
        // Requests beyond the cap still execute normally…
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "t{i}");
    }
    // …but only the first `max_tenants` names are tracked individually;
    // the rest fold into the overflow aggregate, visible in the stats
    // block rather than lost.
    assert_eq!(server.tenant_count(), 4);
    assert!(
        server
            .stats_lines()
            .iter()
            .any(|l| l.starts_with("tenant=(overflow) requests=8")),
        "stats block carries the overflow aggregate: {:?}",
        server.stats_lines()
    );
    server.shutdown();
}

#[test]
fn oversized_frames_respect_a_small_cap() {
    let config = ServeConfig {
        max_frame: 128,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut stream = connect(&server);
    let big = format!(r#"{{"id":"big","source":"{}"}}"#, "x = 1\\n".repeat(100));
    assert!(big.len() > 128);
    write_frame(&mut stream, big.as_bytes()).unwrap();
    let p = read_frame(&mut stream, usize::MAX).unwrap();
    let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
    assert_eq!(error_code(&doc), "PROTO_FRAME_TOO_LARGE");
    // Framing failures close the connection: the reader cannot resync
    // inside a stream it refused to buffer.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_still_serving(&server);
    server.shutdown();
}

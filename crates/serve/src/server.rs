//! The server: a sharded worker pool behind a TCP accept loop (or a
//! single-shot stdin/stdout runner), with per-tenant accounting and
//! admission-gated execution.
//!
//! # Life of a request
//!
//! 1. A connection thread reads one frame, parses and validates the
//!    request (framing or schema failures answer immediately with a
//!    `protocol`-phase error).
//! 2. The request is dispatched to a worker shard chosen by tenant
//!    hash — one tenant's requests serialize on one shard, so a noisy
//!    tenant contends with itself first. The shard queue is *bounded*:
//!    a full queue answers `OVERLOADED` immediately instead of queueing
//!    without limit, and a request that waited past its wall deadline
//!    is shed on dequeue without executing.
//! 3. The worker builds a fresh per-request [`GenCtx`] (fresh metrics,
//!    clamped budget, the process-wide [`GenCache`], the per-tech
//!    compiled [`RuleSet`]) and runs the program through
//!    `amgen_lint::checked_run_full` — lint errors and certified-over-
//!    budget programs are refused at admission with zero fuel spent.
//! 4. The response carries the layouts (or a typed staged error), the
//!    diagnostics, and a `stats` section; the request's metrics deltas
//!    fold into the tenant's long-lived aggregate.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use amgen_core::{Budget, GenCache, GenCtx, Metrics};
use amgen_dsl::ast::Entity;
use amgen_dsl::parser::parse;
use amgen_dsl::{DslError, Interpreter};
use amgen_lint::{checked_run_full, CheckError};
use amgen_tech::{RuleSet, Tech};

use crate::json::Json;
use crate::proto::{
    diagnostics_json, gen_error_detail, layout_json, parse_request, read_frame, stats_json,
    write_frame, ErrorCode, FrameError, Request, Response,
};

/// Server tuning knobs. [`ServeConfig::default`] is sized for tests and
/// small deployments; the binary exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards. One tenant always lands on one shard.
    pub workers: usize,
    /// Bounded depth of each shard queue; a full queue sheds.
    pub queue_depth: usize,
    /// Largest accepted request frame, bytes.
    pub max_frame: usize,
    /// The per-tenant budget *cap*: requests may tighten these knobs,
    /// never widen them.
    pub tenant_budget: Budget,
    /// Cap on the per-request wall deadline; also the shed horizon for
    /// queued requests.
    pub wall_cap: Duration,
    /// Capacity of the process-wide generation cache (modules).
    pub cache_capacity: usize,
    /// Most distinct tenants tracked individually. The tenant name is
    /// client-chosen and unauthenticated, so the accounting map must be
    /// bounded: once full, requests from new tenant names fold into one
    /// shared overflow aggregate instead of growing the map.
    pub max_tenants: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_frame: 1 << 20,
            // Generous enough for every embedded figure workload
            // (their certificates are in the hundreds-to-thousands),
            // tight enough that the hostile corpus's bombs (certified
            // fuel >= 60k) are refused at admission.
            tenant_budget: Budget::unlimited()
                .with_dsl_fuel(50_000)
                .with_max_compact_steps(200_000),
            wall_cap: Duration::from_secs(5),
            cache_capacity: 256,
            max_tenants: 64,
        }
    }
}

/// FNV-1a: the shard picker. Stable across runs so a tenant's shard
/// assignment is deterministic.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum Job {
    Req {
        req: Box<Request>,
        enqueued: Instant,
        wall: Duration,
        reply: SyncSender<Response>,
    },
    Stop,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    config: ServeConfig,
    /// The process-wide content-addressed generation cache; every
    /// request's context shares it.
    cache: Arc<GenCache>,
    /// The embedded module library, parsed once. Entities are *unbound*
    /// (see `Interpreter::load_entities`) and cloned into each
    /// per-request interpreter.
    stdlib: Vec<Entity>,
    /// Per-`tech` compiled rule kernels, built on first use.
    rulesets: Mutex<BTreeMap<String, Arc<RuleSet>>>,
    /// Per-tenant aggregate metrics; each request's deltas fold in.
    /// Bounded at `max_tenants` entries — see [`ServeConfig::max_tenants`].
    tenants: Mutex<BTreeMap<String, Arc<Metrics>>>,
    /// The shared aggregate for tenant names beyond `max_tenants`.
    overflow_tenants: Arc<Metrics>,
    /// Requests accounted to the overflow aggregate.
    overflow_requests: AtomicU64,
    shards: Vec<SyncSender<Job>>,
    served: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn new(config: ServeConfig, shards: Vec<SyncSender<Job>>) -> Shared {
        let cache = Arc::new(GenCache::with_capacity(config.cache_capacity));
        let stdlib = stdlib_entities();
        Shared {
            config,
            cache,
            stdlib,
            rulesets: Mutex::new(BTreeMap::new()),
            tenants: Mutex::new(BTreeMap::new()),
            overflow_tenants: Arc::new(Metrics::new()),
            overflow_requests: AtomicU64::new(0),
            shards,
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The compiled kernel for a technology id, or `None` for an
    /// unknown one. Kernels compile once and are shared by every
    /// request for that technology.
    fn ruleset(&self, tech: &str) -> Option<Arc<RuleSet>> {
        let mut map = self.rulesets.lock().expect("ruleset lock");
        if let Some(r) = map.get(tech) {
            return Some(Arc::clone(r));
        }
        let compiled = match tech {
            "bicmos_1u" => Tech::bicmos_1u().compile_arc(),
            "cmos_08" => Tech::cmos_08().compile_arc(),
            _ => return None,
        };
        map.insert(tech.to_string(), Arc::clone(&compiled));
        Some(compiled)
    }

    /// The aggregate a request's metrics fold into. Tenant names are
    /// client-chosen and unauthenticated, so the map is bounded: the
    /// first `max_tenants` distinct names get individual aggregates,
    /// everything after that shares the overflow bucket — a client
    /// cycling tenant names cannot grow the daemon's memory.
    fn tenant_metrics(&self, tenant: &str) -> Arc<Metrics> {
        let mut map = self.tenants.lock().expect("tenant lock");
        if let Some(m) = map.get(tenant) {
            return Arc::clone(m);
        }
        if map.len() >= self.config.max_tenants.max(1) {
            self.overflow_requests.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&self.overflow_tenants);
        }
        let m = Arc::new(Metrics::new());
        map.insert(tenant.to_string(), Arc::clone(&m));
        m
    }
}

/// Parses the embedded module library once. The sources are trusted
/// compile-time constants; a parse failure is a build defect.
fn stdlib_entities() -> Vec<Entity> {
    use amgen_dsl::stdlib;
    let mut out = Vec::new();
    for lib in [
        stdlib::FIG2_CONTACT_ROW,
        stdlib::FIG7_DIFF_PAIR,
        stdlib::INTERDIGIT,
        stdlib::STACKED,
        stdlib::CENTROID_PLACEMENT,
        stdlib::VARIANT_ROW,
    ] {
        let prog = parse(lib).expect("embedded library parses");
        out.extend(prog.entities);
    }
    out
}

/// The effective budget of one request: each spec knob clamps to the
/// tenant cap — a client can tighten its budget, never widen it.
fn effective_budget(config: &ServeConfig, req: &Request) -> Budget {
    let cap = config.tenant_budget;
    let spec = &req.budget;
    Budget::unlimited()
        .with_dsl_fuel(spec.fuel.map_or(cap.dsl_fuel, |f| f.min(cap.dsl_fuel)))
        .with_max_recursion(
            spec.recursion
                .map_or(cap.max_recursion, |r| (r as usize).min(cap.max_recursion)),
        )
        .with_max_compact_steps(
            spec.compact_steps
                .map_or(cap.max_compact_steps, |s| s.min(cap.max_compact_steps)),
        )
        .with_wall(req.wall(config.wall_cap))
}

/// Executes one admitted request end to end and builds its response.
fn process(shared: &Shared, req: &Request) -> Response {
    let Some(rules) = shared.ruleset(&req.tech) else {
        return Response::error(
            &req.id,
            ErrorCode::UnknownTech,
            Json::obj([(
                "message",
                Json::from(format!("unknown technology `{}`", req.tech)),
            )]),
            Json::Arr(Vec::new()),
        );
    };

    let ctx = GenCtx::new(Arc::clone(&rules))
        .with_budget(effective_budget(&shared.config, req))
        .with_cache(Arc::clone(&shared.cache))
        .with_tracing(req.want_trace);
    let mut interp = Interpreter::new(ctx);
    interp.load_entities(shared.stdlib.iter().cloned());

    let source = format!("{}{}", req.prelude(), req.source);
    let t0 = Instant::now();
    let (diags, result) = checked_run_full(&mut interp, &source);
    let wall = t0.elapsed();

    // Spans come out of the combined prelude + source; positions on the
    // wire are translated back to the client's own line numbers.
    let prelude_lines = req.prelude_lines();
    let diagnostics = diagnostics_json(&diags, prelude_lines);
    let mut response = match result {
        Ok(layouts) => {
            let mut objs = BTreeMap::new();
            for (name, obj) in &layouts {
                objs.insert(name.clone(), layout_json(obj, &rules));
            }
            Response::ok(&req.id, Json::Obj(objs), diagnostics)
        }
        Err(CheckError::Lint(all)) => Response::error(
            &req.id,
            ErrorCode::LintRejected,
            Json::obj([(
                "message",
                Json::from(format!(
                    "lint found {} error(s); program not run",
                    all.iter().filter(|d| d.is_error()).count()
                )),
            )]),
            diagnostics_json(&all, prelude_lines),
        ),
        Err(CheckError::Admission { estimate, reason }) => {
            let mut detail = BTreeMap::new();
            detail.insert("message".to_string(), Json::from(reason));
            if let Some(fuel) = estimate.fuel {
                detail.insert("certified_fuel".to_string(), Json::from(fuel));
            }
            Response::error(
                &req.id,
                ErrorCode::AdmissionRefused,
                Json::Obj(detail),
                diagnostics,
            )
        }
        Err(CheckError::Run(e)) => {
            let (code, detail) = match &e {
                DslError::Gen(g) => (ErrorCode::from_gen_kind(&g.kind), gen_error_detail(g)),
                other => (
                    ErrorCode::RuntimeError,
                    Json::obj([("message", Json::from(other.to_string()))]),
                ),
            };
            Response::error(&req.id, code, detail, diagnostics)
        }
    };

    // Fold this request's metrics into the tenant aggregate, then
    // attach the per-request stats section.
    let mut snap = interp.ctx().metrics.snapshot();
    snap.rule_queries = 0; // kernel counter is per-tech, not per-request
    shared.tenant_metrics(&req.tenant).absorb(&snap);
    if req.want_stats {
        let fuel_used = interp.ctx().limits.fuel_used();
        let mut flags = Vec::new();
        if snap.cache_hits > 0 {
            flags.push("cache_hit");
        }
        let trace_report = if req.want_trace {
            Some(interp.ctx().trace.drain().report(16))
        } else {
            None
        };
        response = response.with_stats(stats_json(wall, fuel_used, &snap, flags, trace_report));
    }
    response
}

/// `process` behind a panic barrier: an escaped worker panic becomes a
/// `WORKER_PANIC` response instead of a dead shard.
fn process_isolated(shared: &Shared, req: &Request) -> Response {
    match catch_unwind(AssertUnwindSafe(|| process(shared, req))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Response::error(
                &req.id,
                ErrorCode::WorkerPanic,
                Json::obj([("message", Json::from(msg))]),
                Json::Arr(Vec::new()),
            )
        }
    }
}

fn worker_loop(shared: Arc<Shared>, jobs: Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Stop => break,
            Job::Req {
                req,
                enqueued,
                wall,
                reply,
            } => {
                let response = if enqueued.elapsed() > wall {
                    // The deadline passed while the request sat in the
                    // queue; executing now would only return a result
                    // the client has given up on.
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    Response::error(
                        &req.id,
                        ErrorCode::Overloaded,
                        Json::obj([("message", Json::from("deadline expired while queued"))]),
                        Json::Arr(Vec::new()),
                    )
                } else {
                    let r = process_isolated(&shared, &req);
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    r
                };
                // A send failure means the client disconnected
                // mid-request; the result is simply dropped.
                let _ = reply.send(response);
            }
        }
    }
}

/// Handles one connection: strictly sequential request/response pairs.
/// Concurrency comes from concurrent connections.
fn connection_loop(shared: &Shared, stream: TcpStream) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, shared.config.max_frame) {
            Ok(p) => p,
            Err(e) => {
                if let Some(code) = e.code() {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::error(
                        "",
                        code,
                        Json::obj([("message", Json::from(e.to_string()))]),
                        Json::Arr(Vec::new()),
                    );
                    let _ = write_frame(&mut writer, resp.wire_string().as_bytes());
                }
                return; // framing failures are not recoverable mid-stream
            }
        };
        let response = match parse_request(&payload) {
            Err((code, message)) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    "",
                    code,
                    Json::obj([("message", Json::from(message))]),
                    Json::Arr(Vec::new()),
                )
            }
            Ok(req) => dispatch(shared, req),
        };
        if write_frame(&mut writer, response.wire_string().as_bytes()).is_err() {
            return; // client went away mid-response
        }
    }
}

/// Queues a request on its tenant's shard and waits for the result,
/// shedding instead of blocking when the shard is saturated.
fn dispatch(shared: &Shared, req: Request) -> Response {
    let wall = req.wall(shared.config.wall_cap);
    let shard = (fnv1a(&req.tenant) as usize) % shared.shards.len();
    let (reply_tx, reply_rx) = sync_channel(1);
    let id = req.id.clone();
    let job = Job::Req {
        req: Box::new(req),
        enqueued: Instant::now(),
        wall,
        reply: reply_tx,
    };
    match shared.shards[shard].try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            return Response::error(
                &id,
                ErrorCode::Overloaded,
                Json::obj([("message", Json::from("worker queue full"))]),
                Json::Arr(Vec::new()),
            );
        }
    }
    match reply_rx.recv() {
        Ok(r) => r,
        // The worker died between dequeue and reply — only possible if
        // the panic barrier itself failed.
        Err(_) => Response::error(
            &id,
            ErrorCode::WorkerPanic,
            Json::obj([("message", Json::from("worker disappeared"))]),
            Json::Arr(Vec::new()),
        ),
    }
}

/// A running server: accept loop + worker pool. Dropping the handle
/// without [`Server::shutdown`] leaves the threads running detached.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral test port), spawns the
    /// worker pool and the accept loop, and returns immediately.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers_n = config.workers.max(1);
        let mut senders = Vec::with_capacity(workers_n);
        let mut receivers = Vec::with_capacity(workers_n);
        for _ in 0..workers_n {
            let (tx, rx) = sync_channel(config.queue_depth.max(1));
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared::new(config, senders));
        let workers = receivers
            .into_iter()
            .map(|rx| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared, rx))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // Connection threads are detached: they exit when
                    // their client disconnects.
                    std::thread::spawn(move || connection_loop(&shared, stream));
                }
            })
        };
        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests fully served (admitted or refused with a typed error).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Requests shed under load (queue full or deadline expired queued).
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Frames or documents rejected at the protocol layer.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::Relaxed)
    }

    /// The periodic stats block: one totals line, then one line per
    /// tenant with its aggregate [`Metrics`] snapshot — the snapshot's
    /// `Display` now carries cache hits/misses and admission refusals,
    /// so this block is self-describing.
    pub fn stats_lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "served={} shed={} protocol_errors={}",
            self.served(),
            self.shed(),
            self.protocol_errors()
        )];
        let tenants = self.shared.tenants.lock().expect("tenant lock");
        for (tenant, metrics) in tenants.iter() {
            lines.push(format!("tenant={tenant} {}", metrics.snapshot()));
        }
        drop(tenants);
        let overflow = self.shared.overflow_requests.load(Ordering::Relaxed);
        if overflow > 0 {
            lines.push(format!(
                "tenant=(overflow) requests={overflow} {}",
                self.shared.overflow_tenants.snapshot()
            ));
        }
        lines
    }

    /// Distinct tenants tracked individually — never exceeds the
    /// configured `max_tenants`.
    pub fn tenant_count(&self) -> usize {
        self.shared.tenants.lock().expect("tenant lock").len()
    }

    /// Stops accepting, drains the workers and joins them.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for tx in &self.shared.shards {
            let _ = tx.send(Job::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// The `--once` runner: serves frames from `input` until end of stream,
/// writing responses to `output` — the whole pipeline without sockets
/// or threads, for tests and shell pipelines.
pub fn run_once(
    config: ServeConfig,
    input: &mut impl Read,
    output: &mut impl Write,
) -> std::io::Result<()> {
    let shared = Shared::new(config, Vec::new());
    loop {
        let payload = match read_frame(input, shared.config.max_frame) {
            Ok(p) => p,
            Err(FrameError::Closed) => return Ok(()),
            Err(FrameError::Io(e)) => return Err(e),
            Err(e) => {
                if let Some(code) = e.code() {
                    let resp = Response::error(
                        "",
                        code,
                        Json::obj([("message", Json::from(e.to_string()))]),
                        Json::Arr(Vec::new()),
                    );
                    write_frame(output, resp.wire_string().as_bytes())?;
                }
                return Ok(());
            }
        };
        let response = match parse_request(&payload) {
            Err((code, message)) => Response::error(
                "",
                code,
                Json::obj([("message", Json::from(message))]),
                Json::Arr(Vec::new()),
            ),
            Ok(req) => process_isolated(&shared, &req),
        };
        write_frame(output, response.wire_string().as_bytes())?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn once(requests: &[&str]) -> Vec<Json> {
        let mut input = Vec::new();
        for r in requests {
            write_frame(&mut input, r.as_bytes()).unwrap();
        }
        let mut output = Vec::new();
        run_once(ServeConfig::default(), &mut &input[..], &mut output).unwrap();
        let mut docs = Vec::new();
        let mut cursor = &output[..];
        loop {
            match read_frame(&mut cursor, usize::MAX) {
                Ok(p) => docs.push(json::parse(std::str::from_utf8(&p).unwrap()).unwrap()),
                Err(FrameError::Closed) => break,
                Err(e) => panic!("bad response frame: {e}"),
            }
        }
        docs
    }

    fn error_code(doc: &Json) -> &str {
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap()
    }

    #[test]
    fn serves_a_figure_workload() {
        let req = r#"{"id":"fig2","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#;
        let docs = once(&[req, req]);
        assert_eq!(docs.len(), 2);
        for doc in &docs {
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(doc.get("id").and_then(Json::as_str), Some("fig2"));
            let layouts = doc.get("layouts").and_then(Json::as_obj).unwrap();
            assert!(layouts.contains_key("row"));
            let shapes = layouts["row"].get("shapes").unwrap();
            assert!(matches!(shapes, Json::Arr(v) if !v.is_empty()));
        }
        // Second run hits the generation cache.
        let stats = docs[1].get("stats").and_then(Json::as_obj).unwrap();
        assert!(stats["cache_hits"].as_num().unwrap() >= 1.0);
    }

    #[test]
    fn params_reach_the_program() {
        let docs = once(&[
            r#"{"id":"p","source":"row = ContactRow(layer = lyr, W = w)","params":{"lyr":"metal1","w":12}}"#,
        ]);
        assert_eq!(docs[0].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn fuel_bomb_is_refused_at_admission_with_zero_fuel() {
        let bomb = amgen_faults::hostile::FUEL_BOMB;
        let req = format!(r#"{{"id":"bomb","source":{}}}"#, Json::from(bomb.source));
        let docs = once(&[&req]);
        assert_eq!(docs[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(error_code(&docs[0]), "ADMISSION_REFUSED");
        let stats = docs[0].get("stats").and_then(Json::as_obj).unwrap();
        assert_eq!(stats["fuel_used"].as_num(), Some(0.0));
    }

    #[test]
    fn unknown_tech_and_lint_errors_are_typed() {
        let docs = once(&[
            r#"{"id":"t","tech":"nmos_5u","source":"x = 1"}"#,
            r#"{"id":"l","source":"x = NoSuchEntity()"}"#,
        ]);
        assert_eq!(error_code(&docs[0]), "UNKNOWN_TECH");
        assert_eq!(error_code(&docs[1]), "LINT_REJECTED");
        let diags = docs[1].get("diagnostics").unwrap();
        assert!(matches!(diags, Json::Arr(v) if !v.is_empty()));
    }

    #[test]
    fn diagnostic_lines_are_in_client_coordinates() {
        // Three params put the client's line 1 at line 4 of the
        // combined prelude + source; the wire position must still be
        // line 1 — the prelude is the server's implementation detail.
        let docs =
            once(&[r#"{"id":"off","source":"x = NoSuchEntity()","params":{"a":1,"b":2,"c":3}}"#]);
        assert_eq!(error_code(&docs[0]), "LINT_REJECTED");
        let Some(Json::Arr(diags)) = docs[0].get("diagnostics") else {
            panic!("diagnostics array present");
        };
        let lines: Vec<f64> = diags
            .iter()
            .filter_map(|d| d.get("line").and_then(Json::as_num))
            .collect();
        assert!(!lines.is_empty(), "at least one positioned diagnostic");
        assert!(
            lines.iter().all(|&l| l == 1.0),
            "positions in client coordinates, got {lines:?}"
        );
    }

    #[test]
    fn budget_clamps_to_the_tenant_cap() {
        // A request asking for more fuel than the cap still gets the
        // cap: the bomb stays refused.
        let bomb = amgen_faults::hostile::FUEL_BOMB;
        let req = format!(
            r#"{{"id":"b","budget":{{"fuel":99999999}},"source":{}}}"#,
            Json::from(bomb.source)
        );
        let docs = once(&[&req]);
        assert_eq!(error_code(&docs[0]), "ADMISSION_REFUSED");
    }

    #[test]
    fn deterministic_payload_for_identical_requests() {
        let req = r#"{"id":"d","source":"row = ContactRow(layer = \"poly\", W = 8)"}"#;
        let mut payloads = Vec::new();
        for _ in 0..2 {
            let mut input = Vec::new();
            write_frame(&mut input, req.as_bytes()).unwrap();
            let mut output = Vec::new();
            run_once(ServeConfig::default(), &mut &input[..], &mut output).unwrap();
            let mut cursor = &output[..];
            let p = read_frame(&mut cursor, usize::MAX).unwrap();
            let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
            // Strip the stats section: it is the documented
            // non-deterministic remainder.
            let mut m = match doc {
                Json::Obj(m) => m,
                _ => panic!("response is an object"),
            };
            m.remove("stats");
            payloads.push(Json::Obj(m).to_string());
        }
        assert_eq!(payloads[0], payloads[1]);
    }

    #[test]
    fn stats_can_be_disabled_and_trace_enabled() {
        let docs = once(&[
            r#"{"id":"s0","stats":false,"source":"row = ContactRow(layer = \"poly\", W = 6)"}"#,
            r#"{"id":"s1","trace":true,"source":"row = ContactRow(layer = \"poly\", W = 6)"}"#,
        ]);
        assert!(docs[0].get("stats").is_none());
        let stats = docs[1].get("stats").and_then(Json::as_obj).unwrap();
        assert!(stats.contains_key("trace"));
    }
}

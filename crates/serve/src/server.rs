//! The server: a sharded worker pool behind a TCP accept loop (or a
//! single-shot stdin/stdout runner), with per-tenant accounting and
//! admission-gated execution.
//!
//! # Life of a request
//!
//! 1. A connection thread reads one frame, parses and validates the
//!    request (framing or schema failures answer immediately with a
//!    `protocol`-phase error).
//! 2. The request is dispatched to a worker shard chosen by tenant
//!    hash — one tenant's requests serialize on one shard, so a noisy
//!    tenant contends with itself first. The shard queue is *bounded*:
//!    a full queue answers `OVERLOADED` immediately instead of queueing
//!    without limit, and a request that waited past its wall deadline
//!    is shed on dequeue without executing.
//! 3. The worker builds a fresh per-request [`GenCtx`] (fresh metrics,
//!    clamped budget, the process-wide [`GenCache`], the per-tech
//!    compiled [`RuleSet`]) and runs the program through
//!    `amgen_lint::checked_run_full` — lint errors and certified-over-
//!    budget programs are refused at admission with zero fuel spent.
//! 4. The response carries the layouts (or a typed staged error), the
//!    diagnostics, and a `stats` section; the request's metrics deltas
//!    fold into the tenant's long-lived aggregate.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use amgen_core::{Budget, CancelToken, GenCache, GenCtx, Metrics};
use amgen_dsl::ast::Entity;
use amgen_dsl::parser::parse;
use amgen_dsl::{DslError, Interpreter};
use amgen_lint::{checked_run_full, CheckError};
use amgen_tech::{RuleSet, Tech};

use crate::json::Json;
use crate::proto::{
    diagnostics_json, gen_error_detail, layout_json, parse_request, read_frame, stats_json,
    write_frame, ErrorCode, FrameError, Request, Response,
};

/// Server tuning knobs. [`ServeConfig::default`] is sized for tests and
/// small deployments; the binary exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards. One tenant always lands on one shard.
    pub workers: usize,
    /// Bounded depth of each shard queue; a full queue sheds.
    pub queue_depth: usize,
    /// Largest accepted request frame, bytes.
    pub max_frame: usize,
    /// The per-tenant budget *cap*: requests may tighten these knobs,
    /// never widen them.
    pub tenant_budget: Budget,
    /// Cap on the per-request wall deadline; also the shed horizon for
    /// queued requests.
    pub wall_cap: Duration,
    /// Capacity of the process-wide generation cache (modules).
    pub cache_capacity: usize,
    /// Most distinct tenants tracked individually. The tenant name is
    /// client-chosen and unauthenticated, so the accounting map must be
    /// bounded: once full, requests from new tenant names fold into one
    /// shared overflow aggregate instead of growing the map.
    pub max_tenants: usize,
    /// How long a draining server keeps executing already-queued jobs
    /// after [`Server::begin_shutdown`]; jobs still queued past this
    /// deadline are answered `SHUTTING_DOWN` instead of executed.
    pub drain: Duration,
    /// A worker busy on one job longer than this gets its run
    /// cancelled (typed `CANCELLED` at the next checkpoint); past
    /// *twice* this, the worker is abandoned and its shard respawned.
    pub watchdog: Duration,
    /// Outcomes remembered per tenant for the circuit breaker.
    pub breaker_window: usize,
    /// The breaker trips when at least this percentage of a full
    /// window is refusals (lint/admission) or panics.
    pub breaker_threshold_pct: u32,
    /// How long a tripped breaker fast-refuses before admitting one
    /// probe request; also the `retry_after_ms` hint on `CIRCUIT_OPEN`.
    pub breaker_cooldown: Duration,
    /// The `retry_after_ms` hint on `OVERLOADED`/`SHUTTING_DOWN`
    /// responses. A config constant on purpose: the error object is
    /// part of the deterministic payload, so the hint must not depend
    /// on queue state or clocks.
    pub retry_hint: Duration,
    /// Warm-restart image of the generation cache: restored (best
    /// effort, never trusted) at startup, written at clean shutdown.
    pub cache_snapshot: Option<PathBuf>,
    /// Test-only hook deciding a fate per dequeued job — how the chaos
    /// harness kills or wedges workers deterministically. `None` in
    /// production.
    pub worker_chaos: Option<Arc<dyn WorkerChaos>>,
}

/// Test-only chaos hook: decides what happens to a worker right after
/// it dequeues a job (before the panic barrier, so a `Kill` genuinely
/// kills the thread). Implementations should be deterministic — the
/// chaos harness drives one from a seeded `amgen-faults` plan.
pub trait WorkerChaos: Send + Sync + std::fmt::Debug {
    /// Fate of the `seq`-th job (1-based) dequeued on `shard`.
    fn fate(&self, shard: usize, seq: u64) -> WorkerFate;
}

/// What [`WorkerChaos::fate`] can do to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFate {
    /// Process the job normally.
    Run,
    /// Panic outside the isolation barrier — the worker thread dies
    /// with the job in hand (its client gets `WORKER_PANIC` via the
    /// dropped reply channel) and the supervisor must respawn.
    Kill,
    /// Sleep this long before processing — a wedged worker the
    /// watchdog must notice. The job is still answered afterwards.
    Wedge(Duration),
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_frame: 1 << 20,
            // Generous enough for every embedded figure workload
            // (their certificates are in the hundreds-to-thousands),
            // tight enough that the hostile corpus's bombs (certified
            // fuel >= 60k) are refused at admission.
            tenant_budget: Budget::unlimited()
                .with_dsl_fuel(50_000)
                .with_max_compact_steps(200_000),
            wall_cap: Duration::from_secs(5),
            cache_capacity: 256,
            max_tenants: 64,
            drain: Duration::from_secs(2),
            watchdog: Duration::from_secs(10),
            breaker_window: 16,
            breaker_threshold_pct: 80,
            breaker_cooldown: Duration::from_secs(1),
            retry_hint: Duration::from_millis(50),
            cache_snapshot: None,
            worker_chaos: None,
        }
    }
}

/// Per-tenant circuit breaker over a sliding window of outcomes.
///
/// "Bad" outcomes are refusals the tenant *caused* — lint rejections,
/// certified-over-budget admissions, worker panics. `OVERLOADED` is
/// deliberately not bad: shedding is the server's state, not the
/// tenant's fault, and a breaker that tripped on overload would turn
/// one load spike into a refusal storm.
struct Breaker {
    window: VecDeque<bool>,
    bad: usize,
    state: BreakerState,
}

#[derive(Clone, Copy, PartialEq)]
enum BreakerState {
    Closed,
    Open {
        until: Instant,
    },
    /// Cooldown elapsed; the next outcome decides (good → close,
    /// bad → re-open).
    HalfOpen,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            window: VecDeque::new(),
            bad: 0,
            state: BreakerState::Closed,
        }
    }

    /// True when a request from this tenant may proceed.
    fn admit(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn record(&mut self, bad: bool, now: Instant, config: &ServeConfig) {
        let window = config.breaker_window.max(1);
        match self.state {
            BreakerState::HalfOpen => {
                // The probe's outcome decides; either way the window
                // restarts so stale history can't re-trip instantly.
                self.window.clear();
                self.bad = 0;
                self.state = if bad {
                    BreakerState::Open {
                        until: now + config.breaker_cooldown,
                    }
                } else {
                    BreakerState::Closed
                };
            }
            // In-flight stragglers finishing after the trip don't
            // extend or shorten the cooldown.
            BreakerState::Open { .. } => {}
            BreakerState::Closed => {
                self.window.push_back(bad);
                if bad {
                    self.bad += 1;
                }
                while self.window.len() > window {
                    if self.window.pop_front() == Some(true) {
                        self.bad -= 1;
                    }
                }
                let full = self.window.len() >= window;
                if full
                    && (self.bad as u64) * 100
                        >= u64::from(config.breaker_threshold_pct) * self.window.len() as u64
                {
                    self.window.clear();
                    self.bad = 0;
                    self.state = BreakerState::Open {
                        until: now + config.breaker_cooldown,
                    };
                }
            }
        }
    }
}

/// FNV-1a: the shard picker. Stable across runs so a tenant's shard
/// assignment is deterministic.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Job {
    req: Box<Request>,
    enqueued: Instant,
    wall: Duration,
    reply: SyncSender<Response>,
}

/// One worker shard. The receiver lives *here*, behind a mutex, not
/// inside the worker thread: when a worker dies or is abandoned, its
/// replacement locks the same receiver and the queued jobs survive the
/// handover — no accepted request rides a dead thread down.
struct Shard {
    tx: SyncSender<Job>,
    queue: Mutex<Receiver<Job>>,
    /// Bumped to abandon the current worker: a worker observing a
    /// generation other than its own exits at the next loop turn.
    generation: AtomicU64,
    /// Jobs dequeued on this shard so far (1-based in fate calls) —
    /// the deterministic index the chaos hook keys on.
    seq: AtomicU64,
}

/// Watchdog-visible state of one worker thread.
struct WorkerState {
    /// When the current job started, `None` while idle.
    busy_since: Mutex<Option<Instant>>,
    /// The current run's cancellation token, registered by `process`
    /// once the request context exists.
    cancel: Mutex<Option<CancelToken>>,
}

impl WorkerState {
    fn new() -> Arc<WorkerState> {
        Arc::new(WorkerState {
            busy_since: Mutex::new(None),
            cancel: Mutex::new(None),
        })
    }
}

/// Per-tenant serving state: the metrics aggregate plus the breaker.
/// Overflow tenants share one metrics bucket and get *no* breaker —
/// unrelated clients folded into one window must not trip each other.
struct TenantState {
    metrics: Arc<Metrics>,
    breaker: Mutex<Breaker>,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    config: ServeConfig,
    /// The process-wide content-addressed generation cache; every
    /// request's context shares it.
    cache: Arc<GenCache>,
    /// The embedded module library, parsed once. Entities are *unbound*
    /// (see `Interpreter::load_entities`) and cloned into each
    /// per-request interpreter.
    stdlib: Vec<Entity>,
    /// The library's content hash — the staleness gate of cache
    /// snapshots (computed once; identical in every per-request
    /// interpreter because the hash covers the pretty-printed library,
    /// not process state).
    stdlib_hash: u64,
    /// Per-`tech` compiled rule kernels, built on first use.
    rulesets: Mutex<BTreeMap<String, Arc<RuleSet>>>,
    /// Per-tenant serving state; each request's deltas fold in.
    /// Bounded at `max_tenants` entries — see [`ServeConfig::max_tenants`].
    tenants: Mutex<BTreeMap<String, Arc<TenantState>>>,
    /// The shared aggregate for tenant names beyond `max_tenants`.
    overflow_tenants: Arc<Metrics>,
    /// Requests accounted to the overflow aggregate.
    overflow_requests: AtomicU64,
    shards: Vec<Shard>,
    served: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
    respawns: AtomicU64,
    worker_panics: AtomicU64,
    watchdog_cancels: AtomicU64,
    breaker_refused: AtomicU64,
    client_disconnects: AtomicU64,
    stop: AtomicBool,
    supervisor_stop: AtomicBool,
    /// Set by `begin_shutdown`: queued jobs execute until this instant,
    /// then drain as typed `SHUTTING_DOWN` answers.
    drain_until: Mutex<Option<Instant>>,
}

impl Shared {
    fn new(config: ServeConfig, shards: Vec<Shard>) -> Shared {
        let cache = Arc::new(GenCache::with_capacity(config.cache_capacity));
        let stdlib = stdlib_entities();
        // Compute the library hash the way every per-request
        // interpreter will: load the entities and read it back. The
        // kernel used for binding does not affect the hash, but one is
        // needed to construct the interpreter — seed the ruleset map
        // with it so the compile isn't wasted.
        let rules = Tech::bicmos_1u().compile_arc();
        let mut probe = Interpreter::new(Arc::clone(&rules));
        probe.load_entities(stdlib.iter().cloned());
        let stdlib_hash = probe.lib_hash();
        let mut rulesets = BTreeMap::new();
        rulesets.insert("bicmos_1u".to_string(), rules);
        Shared {
            config,
            cache,
            stdlib,
            stdlib_hash,
            rulesets: Mutex::new(rulesets),
            tenants: Mutex::new(BTreeMap::new()),
            overflow_tenants: Arc::new(Metrics::new()),
            overflow_requests: AtomicU64::new(0),
            shards,
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            watchdog_cancels: AtomicU64::new(0),
            breaker_refused: AtomicU64::new(0),
            client_disconnects: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            supervisor_stop: AtomicBool::new(false),
            drain_until: Mutex::new(None),
        }
    }

    /// True once the drain deadline set by `begin_shutdown` has passed.
    fn drain_expired(&self) -> bool {
        match *self.drain_until.lock().expect("drain lock") {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// The compiled kernel for a technology id, or `None` for an
    /// unknown one. Kernels compile once and are shared by every
    /// request for that technology.
    fn ruleset(&self, tech: &str) -> Option<Arc<RuleSet>> {
        let mut map = self.rulesets.lock().expect("ruleset lock");
        if let Some(r) = map.get(tech) {
            return Some(Arc::clone(r));
        }
        let compiled = match tech {
            "bicmos_1u" => Tech::bicmos_1u().compile_arc(),
            "cmos_08" => Tech::cmos_08().compile_arc(),
            _ => return None,
        };
        map.insert(tech.to_string(), Arc::clone(&compiled));
        Some(compiled)
    }

    /// The tracked state of a tenant, or `None` for an overflow tenant
    /// (map full and this name not in it). Tenant names are
    /// client-chosen and unauthenticated, so the map is bounded — a
    /// client cycling names cannot grow the daemon's memory.
    fn tenant_state(&self, tenant: &str) -> Option<Arc<TenantState>> {
        let mut map = self.tenants.lock().expect("tenant lock");
        if let Some(t) = map.get(tenant) {
            return Some(Arc::clone(t));
        }
        if map.len() >= self.config.max_tenants.max(1) {
            return None;
        }
        let t = Arc::new(TenantState {
            metrics: Arc::new(Metrics::new()),
            breaker: Mutex::new(Breaker::new()),
        });
        map.insert(tenant.to_string(), Arc::clone(&t));
        Some(t)
    }

    /// The aggregate a request's metrics fold into: the tenant's own
    /// block, or the shared overflow bucket past `max_tenants`.
    fn tenant_metrics(&self, tenant: &str) -> Arc<Metrics> {
        match self.tenant_state(tenant) {
            Some(t) => Arc::clone(&t.metrics),
            None => {
                self.overflow_requests.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&self.overflow_tenants)
            }
        }
    }

    /// Breaker gate, called before any admission work is spent. `None`
    /// admits; `Some` is the fast refusal to send. Overflow tenants are
    /// never gated (no individual window exists for them).
    fn breaker_check(&self, tenant: &str, id: &str) -> Option<Response> {
        let state = self.tenant_state(tenant)?;
        let admitted = state
            .breaker
            .lock()
            .expect("breaker lock")
            .admit(Instant::now());
        if admitted {
            return None;
        }
        self.breaker_refused.fetch_add(1, Ordering::Relaxed);
        Some(Response::error(
            id,
            ErrorCode::CircuitOpen,
            Json::obj([
                (
                    "message",
                    Json::from("circuit open: recent requests dominated by refusals"),
                ),
                (
                    "retry_after_ms",
                    Json::from(self.config.breaker_cooldown.as_millis() as u64),
                ),
            ]),
            Json::Arr(Vec::new()),
        ))
    }

    /// Feeds one finished outcome into the tenant's breaker window.
    fn breaker_record(&self, tenant: &str, response: &Response) {
        let bad = matches!(
            response.code(),
            Some(ErrorCode::LintRejected | ErrorCode::AdmissionRefused | ErrorCode::WorkerPanic)
        );
        if let Some(state) = self.tenant_state(tenant) {
            state
                .breaker
                .lock()
                .expect("breaker lock")
                .record(bad, Instant::now(), &self.config);
        }
    }

    /// The typed refusal of a draining server. The hint is a config
    /// constant, never remaining drain time — the error object is part
    /// of the deterministic payload.
    fn shutting_down_response(&self, id: &str) -> Response {
        Response::error(
            id,
            ErrorCode::ShuttingDown,
            Json::obj([
                ("message", Json::from("server is shutting down")),
                (
                    "retry_after_ms",
                    Json::from(self.config.retry_hint.as_millis() as u64),
                ),
            ]),
            Json::Arr(Vec::new()),
        )
    }

    fn overloaded_response(&self, id: &str, message: &str) -> Response {
        Response::error(
            id,
            ErrorCode::Overloaded,
            Json::obj([
                ("message", Json::from(message)),
                (
                    "retry_after_ms",
                    Json::from(self.config.retry_hint.as_millis() as u64),
                ),
            ]),
            Json::Arr(Vec::new()),
        )
    }

    /// Best-effort warm start: restore the cache snapshot if one is
    /// configured and present. Every rejection is logged and answered
    /// with a cold start — a snapshot is an optimization, never an
    /// input the server trusts.
    fn load_snapshot(&self) {
        let Some(path) = &self.config.cache_snapshot else {
            return;
        };
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
            Err(e) => {
                eprintln!(
                    "amgen-serve: cache snapshot {} unreadable ({e}); starting cold",
                    path.display()
                );
                return;
            }
        };
        match self
            .cache
            .restore(&bytes, self.stdlib_hash, |name| self.ruleset(name))
        {
            Ok(stats) => eprintln!(
                "amgen-serve: warm cache restored from {} ({} entries, {} skipped)",
                path.display(),
                stats.restored,
                stats.skipped
            ),
            Err(e) => eprintln!(
                "amgen-serve: cache snapshot {} discarded ({e}); starting cold",
                path.display()
            ),
        }
    }

    /// Writes the cache snapshot (temp file + rename, so a crash mid-
    /// write can't leave a torn image under the configured path).
    fn save_snapshot(&self) {
        let Some(path) = &self.config.cache_snapshot else {
            return;
        };
        let techs: Vec<(String, Arc<RuleSet>)> = {
            let map = self.rulesets.lock().expect("ruleset lock");
            map.iter()
                .map(|(n, r)| (n.clone(), Arc::clone(r)))
                .collect()
        };
        let pairs: Vec<(&str, Arc<RuleSet>)> = techs
            .iter()
            .map(|(n, r)| (n.as_str(), Arc::clone(r)))
            .collect();
        let image = self.cache.snapshot(self.stdlib_hash, &pairs);
        let tmp = path.with_extension("tmp");
        let written = std::fs::write(&tmp, &image).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = written {
            eprintln!(
                "amgen-serve: failed to write cache snapshot {} ({e})",
                path.display()
            );
        }
    }
}

/// Parses the embedded module library once. The sources are trusted
/// compile-time constants; a parse failure is a build defect.
fn stdlib_entities() -> Vec<Entity> {
    use amgen_dsl::stdlib;
    let mut out = Vec::new();
    for lib in [
        stdlib::FIG2_CONTACT_ROW,
        stdlib::FIG7_DIFF_PAIR,
        stdlib::INTERDIGIT,
        stdlib::STACKED,
        stdlib::CENTROID_PLACEMENT,
        stdlib::VARIANT_ROW,
    ] {
        let prog = parse(lib).expect("embedded library parses");
        out.extend(prog.entities);
    }
    out
}

/// The effective budget of one request: each spec knob clamps to the
/// tenant cap — a client can tighten its budget, never widen it.
fn effective_budget(config: &ServeConfig, req: &Request) -> Budget {
    let cap = config.tenant_budget;
    let spec = &req.budget;
    Budget::unlimited()
        .with_dsl_fuel(spec.fuel.map_or(cap.dsl_fuel, |f| f.min(cap.dsl_fuel)))
        .with_max_recursion(
            spec.recursion
                .map_or(cap.max_recursion, |r| (r as usize).min(cap.max_recursion)),
        )
        .with_max_compact_steps(
            spec.compact_steps
                .map_or(cap.max_compact_steps, |s| s.min(cap.max_compact_steps)),
        )
        .with_wall(req.wall(config.wall_cap))
}

/// Executes one admitted request end to end and builds its response.
/// `watch` is the owning worker's watchdog slot: the run's cancel token
/// is registered there so a supervisor can stop a runaway run.
fn process(shared: &Shared, req: &Request, watch: Option<&WorkerState>) -> Response {
    let Some(rules) = shared.ruleset(&req.tech) else {
        return Response::error(
            &req.id,
            ErrorCode::UnknownTech,
            Json::obj([(
                "message",
                Json::from(format!("unknown technology `{}`", req.tech)),
            )]),
            Json::Arr(Vec::new()),
        );
    };

    let ctx = GenCtx::new(Arc::clone(&rules))
        .with_budget(effective_budget(&shared.config, req))
        .with_cache(Arc::clone(&shared.cache))
        .with_tracing(req.want_trace);
    if let Some(w) = watch {
        *w.cancel.lock().expect("cancel lock") = Some(ctx.cancel_token());
    }
    let mut interp = Interpreter::new(ctx);
    interp.load_entities(shared.stdlib.iter().cloned());

    let source = format!("{}{}", req.prelude(), req.source);
    let t0 = Instant::now();
    let (diags, result) = checked_run_full(&mut interp, &source);
    let wall = t0.elapsed();

    // Spans come out of the combined prelude + source; positions on the
    // wire are translated back to the client's own line numbers.
    let prelude_lines = req.prelude_lines();
    let diagnostics = diagnostics_json(&diags, prelude_lines);
    let mut response = match result {
        Ok(layouts) => {
            let mut objs = BTreeMap::new();
            for (name, obj) in &layouts {
                objs.insert(name.clone(), layout_json(obj, &rules));
            }
            Response::ok(&req.id, Json::Obj(objs), diagnostics)
        }
        Err(CheckError::Lint(all)) => Response::error(
            &req.id,
            ErrorCode::LintRejected,
            Json::obj([(
                "message",
                Json::from(format!(
                    "lint found {} error(s); program not run",
                    all.iter().filter(|d| d.is_error()).count()
                )),
            )]),
            diagnostics_json(&all, prelude_lines),
        ),
        Err(CheckError::Admission { estimate, reason }) => {
            let mut detail = BTreeMap::new();
            detail.insert("message".to_string(), Json::from(reason));
            if let Some(fuel) = estimate.fuel {
                detail.insert("certified_fuel".to_string(), Json::from(fuel));
            }
            Response::error(
                &req.id,
                ErrorCode::AdmissionRefused,
                Json::Obj(detail),
                diagnostics,
            )
        }
        Err(CheckError::Run(e)) => {
            let (code, detail) = match &e {
                DslError::Gen(g) => (ErrorCode::from_gen_kind(&g.kind), gen_error_detail(g)),
                other => (
                    ErrorCode::RuntimeError,
                    Json::obj([("message", Json::from(other.to_string()))]),
                ),
            };
            Response::error(&req.id, code, detail, diagnostics)
        }
    };

    // Fold this request's metrics into the tenant aggregate, then
    // attach the per-request stats section.
    let mut snap = interp.ctx().metrics.snapshot();
    snap.rule_queries = 0; // kernel counter is per-tech, not per-request
    shared.tenant_metrics(&req.tenant).absorb(&snap);
    if req.want_stats {
        let fuel_used = interp.ctx().limits.fuel_used();
        let mut flags = Vec::new();
        if snap.cache_hits > 0 {
            flags.push("cache_hit");
        }
        let trace_report = if req.want_trace {
            Some(interp.ctx().trace.drain().report(16))
        } else {
            None
        };
        response = response.with_stats(stats_json(wall, fuel_used, &snap, flags, trace_report));
    }
    response
}

/// `process` behind a panic barrier: an escaped worker panic becomes a
/// `WORKER_PANIC` response instead of a dead shard.
fn process_isolated(shared: &Shared, req: &Request, watch: Option<&WorkerState>) -> Response {
    match catch_unwind(AssertUnwindSafe(|| process(shared, req, watch))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            Response::error(
                &req.id,
                ErrorCode::WorkerPanic,
                Json::obj([("message", Json::from(msg))]),
                Json::Arr(Vec::new()),
            )
        }
    }
}

/// How long a worker waits on its queue per turn. Bounds how stale the
/// stop/generation checks can get, so shutdown and abandonment resolve
/// within one tick.
const WORKER_POLL: Duration = Duration::from_millis(50);

fn worker_loop(shared: Arc<Shared>, shard_idx: usize, generation: u64, state: Arc<WorkerState>) {
    let shard = &shared.shards[shard_idx];
    loop {
        if shard.generation.load(Ordering::Relaxed) != generation {
            return; // abandoned: a replacement owns this shard now
        }
        // Hold the queue lock only for the bounded receive — never
        // while processing — so a replacement worker can take over the
        // queue the moment this thread dies or is abandoned. A poisoned
        // lock (previous holder died mid-recv) is taken over as-is: the
        // receiver has no intermediate state to corrupt.
        let job = {
            let queue = shard
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            queue.recv_timeout(WORKER_POLL)
        };
        let job = match job {
            Ok(j) => j,
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return; // draining and the queue is empty: done
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let seq = shard.seq.fetch_add(1, Ordering::Relaxed) + 1;
        *state.busy_since.lock().expect("busy lock") = Some(Instant::now());
        if let Some(chaos) = &shared.config.worker_chaos {
            match chaos.fate(shard_idx, seq) {
                WorkerFate::Run => {}
                // Outside the catch_unwind barrier on purpose: the
                // thread dies with the job in hand. The dropped reply
                // sender answers the client (`WORKER_PANIC` via the
                // dispatch recv error) and the queued jobs survive in
                // the shard for the respawned worker.
                WorkerFate::Kill => panic!("injected chaos kill (shard {shard_idx}, job {seq})"),
                WorkerFate::Wedge(d) => std::thread::sleep(d),
            }
        }
        let response = answer_job(&shared, &job, &state);
        *state.cancel.lock().expect("cancel lock") = None;
        *state.busy_since.lock().expect("busy lock") = None;
        // A send failure means the client disconnected mid-request;
        // the result is simply dropped.
        let _ = job.reply.send(response);
    }
}

/// Builds the answer for one dequeued job: shed if its deadline expired
/// in the queue, refuse if the drain deadline has passed, execute
/// otherwise.
fn answer_job(shared: &Shared, job: &Job, state: &WorkerState) -> Response {
    if job.enqueued.elapsed() > job.wall {
        // The deadline passed while the request sat in the queue;
        // executing now would only return a result the client has
        // given up on.
        shared.shed.fetch_add(1, Ordering::Relaxed);
        return shared.overloaded_response(&job.req.id, "deadline expired while queued");
    }
    if shared.stop.load(Ordering::Relaxed) && shared.drain_expired() {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        return shared.shutting_down_response(&job.req.id);
    }
    let r = process_isolated(shared, &job.req, Some(state));
    shared.served.fetch_add(1, Ordering::Relaxed);
    r
}

/// Handles one connection: strictly sequential request/response pairs.
/// Concurrency comes from concurrent connections.
fn connection_loop(shared: &Shared, stream: TcpStream) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader, shared.config.max_frame) {
            Ok(p) => p,
            Err(e) => {
                if let Some(code) = e.code() {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::error(
                        "",
                        code,
                        Json::obj([("message", Json::from(e.to_string()))]),
                        Json::Arr(Vec::new()),
                    );
                    let _ = write_frame(&mut writer, resp.wire_string().as_bytes());
                } else if matches!(e, FrameError::Io(_)) {
                    // Mid-stream socket error: the client vanished
                    // (reset, abort) rather than closing cleanly.
                    shared.client_disconnects.fetch_add(1, Ordering::Relaxed);
                    eprintln!("amgen-serve: client connection dropped mid-stream ({e})");
                }
                return; // framing failures are not recoverable mid-stream
            }
        };
        let response = match parse_request(&payload) {
            Err((code, message)) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::error(
                    "",
                    code,
                    Json::obj([("message", Json::from(message))]),
                    Json::Arr(Vec::new()),
                )
            }
            Ok(req) => dispatch(shared, req),
        };
        if write_frame(&mut writer, response.wire_string().as_bytes()).is_err() {
            // Client went away mid-response: count it, drop the bytes,
            // and let this thread exit — the worker that produced the
            // response is untouched and serves the next connection.
            shared.client_disconnects.fetch_add(1, Ordering::Relaxed);
            eprintln!("amgen-serve: client disconnected mid-response");
            return;
        }
    }
}

/// Queues a request on its tenant's shard and waits for the result,
/// shedding instead of blocking when the shard is saturated.
fn dispatch(shared: &Shared, req: Request) -> Response {
    let id = req.id.clone();
    let tenant = req.tenant.clone();
    // Stop check FIRST: after it passes, the job may enter a queue, so
    // shutdown must treat it as accepted. Checking after enqueue would
    // let frames race onto a pool that is already draining away.
    if shared.stop.load(Ordering::Relaxed) {
        return shared.shutting_down_response(&id);
    }
    if let Some(refusal) = shared.breaker_check(&tenant, &id) {
        return refusal;
    }
    let wall = req.wall(shared.config.wall_cap);
    let shard = (fnv1a(&tenant) as usize) % shared.shards.len();
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = Job {
        req: Box::new(req),
        enqueued: Instant::now(),
        wall,
        reply: reply_tx,
    };
    match shared.shards[shard].tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            return shared.overloaded_response(&id, "worker queue full");
        }
    }
    // The wait is bounded as a last-resort safety net: supervision
    // answers every normal failure (dead worker → dropped reply,
    // shutdown → drain/sweep), so the timeout only catches a job
    // marooned by an unforeseen race — better a typed error late than
    // a client blocked forever.
    let patience = wall + shared.config.drain + shared.config.watchdog * 2 + Duration::from_secs(5);
    let response = match reply_rx.recv_timeout(patience) {
        Ok(r) => r,
        // The worker died between dequeue and reply: the respawn path
        // answers the *queued* jobs, and this dropped sender answers
        // the one the worker held.
        Err(RecvTimeoutError::Disconnected) => Response::error(
            &id,
            ErrorCode::WorkerPanic,
            Json::obj([(
                "message",
                Json::from("worker died while holding the request"),
            )]),
            Json::Arr(Vec::new()),
        ),
        Err(RecvTimeoutError::Timeout) => Response::error(
            &id,
            ErrorCode::WorkerPanic,
            Json::obj([(
                "message",
                Json::from("worker unresponsive; request abandoned"),
            )]),
            Json::Arr(Vec::new()),
        ),
    };
    shared.breaker_record(&tenant, &response);
    response
}

/// One supervised worker thread, as the supervisor tracks it.
struct WorkerSlot {
    shard: usize,
    state: Arc<WorkerState>,
    handle: Option<JoinHandle<()>>,
    /// The `busy_since` instant the watchdog already cancelled for, so
    /// one slow job triggers exactly one cancel.
    cancelled_for: Option<Instant>,
}

fn spawn_worker(shared: &Arc<Shared>, shard: usize) -> WorkerSlot {
    let generation = shared.shards[shard].generation.load(Ordering::Relaxed);
    let state = WorkerState::new();
    let handle = {
        let shared = Arc::clone(shared);
        let state = Arc::clone(&state);
        std::thread::spawn(move || worker_loop(shared, shard, generation, state))
    };
    WorkerSlot {
        shard,
        state,
        handle: Some(handle),
        cancelled_for: None,
    }
}

/// How often the supervisor looks at its workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(10);

/// Detects dead and wedged workers and replaces them. Runs until
/// `supervisor_stop`, then joins the pool (bounded — a worker that
/// never comes back is abandoned, not waited on forever).
fn supervisor_loop(shared: Arc<Shared>, mut slots: Vec<WorkerSlot>) {
    while !shared.supervisor_stop.load(Ordering::Relaxed) {
        for slot in slots.iter_mut() {
            supervise_slot(&shared, slot, true);
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
    // Shutdown: workers exit once stopped *and* their queue is empty.
    // Give the drain its deadline plus one full request, then cancel
    // whatever still runs, then abandon what even that cannot reach.
    let graceful = Instant::now() + shared.config.drain + shared.config.wall_cap;
    let cancelled = graceful + shared.config.watchdog;
    loop {
        // Keep replacing workers that die mid-drain: their queued jobs
        // still deserve real answers while the drain window is open.
        for slot in slots.iter_mut() {
            supervise_slot(&shared, slot, !shared.drain_expired());
        }
        if slots.iter().all(|s| s.handle.is_none()) {
            return;
        }
        let now = Instant::now();
        if now >= graceful {
            for slot in slots.iter_mut() {
                if let Some(tok) = &*slot.state.cancel.lock().expect("cancel lock") {
                    tok.cancel();
                }
            }
        }
        if now >= cancelled {
            // Abandon the stragglers: bump generations so they exit on
            // wake, drop the handles. The sweep in `shutdown_inner`
            // answers anything left in their queues.
            for slot in slots.iter_mut() {
                if let Some(h) = slot.handle.take() {
                    shared.shards[slot.shard]
                        .generation
                        .fetch_add(1, Ordering::Relaxed);
                    drop(h);
                }
            }
            return;
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

/// One supervision step for one worker: join-and-respawn if it died,
/// cancel its run past the watchdog, abandon-and-respawn past twice
/// the watchdog.
fn supervise_slot(shared: &Arc<Shared>, slot: &mut WorkerSlot, respawn: bool) {
    let Some(handle) = &slot.handle else { return };
    if handle.is_finished() {
        let panicked = slot.handle.take().expect("handle present").join().is_err();
        if panicked {
            shared.worker_panics.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "amgen-serve: worker on shard {} died; respawning",
                slot.shard
            );
        }
        // A clean exit is the thread honouring stop/abandonment — only
        // a panic costs a respawn.
        if panicked && respawn {
            *slot = spawn_worker(shared, slot.shard);
            shared.respawns.fetch_add(1, Ordering::Relaxed);
        }
        return;
    }
    let busy = *slot.state.busy_since.lock().expect("busy lock");
    let Some(since) = busy else { return };
    let elapsed = since.elapsed();
    if elapsed > shared.config.watchdog * 2 {
        // Cancellation didn't bite (the worker is wedged outside any
        // checkpoint): abandon the thread. It keeps the job it holds —
        // its late reply still reaches the client — but the shard gets
        // a fresh worker for the queue *now*, and the generation bump
        // makes the wedged thread exit when it finally wakes.
        shared.shards[slot.shard]
            .generation
            .fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "amgen-serve: worker on shard {} wedged for {:?}; abandoning and respawning",
            slot.shard, elapsed
        );
        let _detached = slot.handle.take();
        *slot = spawn_worker(shared, slot.shard);
        shared.respawns.fetch_add(1, Ordering::Relaxed);
    } else if elapsed > shared.config.watchdog && slot.cancelled_for != Some(since) {
        slot.cancelled_for = Some(since);
        shared.watchdog_cancels.fetch_add(1, Ordering::Relaxed);
        if let Some(tok) = &*slot.state.cancel.lock().expect("cancel lock") {
            tok.cancel();
        }
    }
}

/// A running server: accept loop + supervised worker pool. Dropping the
/// handle performs the same graceful shutdown as [`Server::shutdown`]
/// (best effort — errors are logged, not returned), so no thread
/// outlives the handle.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral test port), spawns the
    /// worker pool and the accept loop, and returns immediately.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shards_n = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shards = (0..shards_n)
            .map(|_| {
                let (tx, rx) = sync_channel(queue_depth);
                Shard {
                    tx,
                    queue: Mutex::new(rx),
                    generation: AtomicU64::new(0),
                    seq: AtomicU64::new(0),
                }
            })
            .collect();
        let shared = Arc::new(Shared::new(config, shards));
        shared.load_snapshot();
        let slots = (0..shards_n)
            .map(|shard| spawn_worker(&shared, shard))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(shared, slots))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // Connection threads are detached: they exit when
                    // their client disconnects.
                    std::thread::spawn(move || connection_loop(&shared, stream));
                }
            })
        };
        Ok(Server {
            shared,
            addr: local,
            accept: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests fully served (admitted or refused with a typed error).
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Requests shed under load (queue full or deadline expired queued).
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Frames or documents rejected at the protocol layer.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::Relaxed)
    }

    /// The periodic stats block: one totals line, then one line per
    /// tenant with its aggregate [`Metrics`] snapshot — the snapshot's
    /// `Display` now carries cache hits/misses and admission refusals,
    /// so this block is self-describing.
    pub fn stats_lines(&self) -> Vec<String> {
        let mut lines = vec![format!(
            "served={} shed={} protocol_errors={} disconnects={} respawns={} \
             worker_panics={} watchdog_cancels={} breaker_refused={}",
            self.served(),
            self.shed(),
            self.protocol_errors(),
            self.client_disconnects(),
            self.respawns(),
            self.worker_panics(),
            self.watchdog_cancels(),
            self.breaker_refused()
        )];
        let tenants = self.shared.tenants.lock().expect("tenant lock");
        for (tenant, state) in tenants.iter() {
            lines.push(format!("tenant={tenant} {}", state.metrics.snapshot()));
        }
        drop(tenants);
        let overflow = self.shared.overflow_requests.load(Ordering::Relaxed);
        if overflow > 0 {
            lines.push(format!(
                "tenant=(overflow) requests={overflow} {}",
                self.shared.overflow_tenants.snapshot()
            ));
        }
        lines
    }

    /// Distinct tenants tracked individually — never exceeds the
    /// configured `max_tenants`.
    pub fn tenant_count(&self) -> usize {
        self.shared.tenants.lock().expect("tenant lock").len()
    }

    /// Workers respawned by the supervisor (after a panic or a wedge).
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Worker threads that died to an escaped panic (chaos kills land
    /// here; panics inside the isolation barrier do not).
    pub fn worker_panics(&self) -> u64 {
        self.shared.worker_panics.load(Ordering::Relaxed)
    }

    /// Runs cancelled by the watchdog for exceeding the deadline.
    pub fn watchdog_cancels(&self) -> u64 {
        self.shared.watchdog_cancels.load(Ordering::Relaxed)
    }

    /// Requests fast-refused by an open per-tenant circuit breaker.
    pub fn breaker_refused(&self) -> u64 {
        self.shared.breaker_refused.load(Ordering::Relaxed)
    }

    /// Clients that vanished mid-stream or mid-response.
    pub fn client_disconnects(&self) -> u64 {
        self.shared.client_disconnects.load(Ordering::Relaxed)
    }

    /// Switches the server into draining: stop accepting, answer new
    /// frames with `SHUTTING_DOWN`, keep executing already-queued jobs
    /// until the drain deadline. Idempotent; returns immediately —
    /// [`Server::shutdown`] (or drop) completes the join.
    pub fn begin_shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.shared.drain_until.lock().expect("drain lock") =
            Some(Instant::now() + self.shared.config.drain);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Stops accepting, drains queued work under the drain deadline,
    /// joins the pool and writes the cache snapshot (if configured).
    pub fn shutdown(self) {
        // Drop does the work; this method is the explicit spelling.
        drop(self);
    }

    fn shutdown_inner(&mut self) {
        if self.accept.is_none() && self.supervisor.is_none() {
            return;
        }
        self.begin_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.supervisor_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        // Sweep: anything still queued (a worker died past the drain
        // deadline, or a dispatch raced the stop flag) gets a typed
        // answer — an accepted request is never silently dropped.
        for shard in &self.shared.shards {
            let queue = shard
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            while let Ok(job) = queue.try_recv() {
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                let _ = job
                    .reply
                    .send(self.shared.shutting_down_response(&job.req.id));
            }
            // Any abandoned straggler exits when it wakes.
            shard.generation.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.save_snapshot();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// What a [`run_once`] session answered — the basis for pipeline exit
/// codes: all-ok sessions and sessions with typed refusals are both
/// *successful protocol conversations*, but a CI step usually wants to
/// branch on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnceSummary {
    /// Response frames written.
    pub responses: u64,
    /// How many of them carried a typed error (`ok:false`).
    pub errors: u64,
}

/// The `--once` runner: serves frames from `input` until end of stream,
/// writing responses to `output` — the whole pipeline without sockets
/// or threads, for tests and shell pipelines. A configured cache
/// snapshot is restored at entry and written back at clean end of
/// stream. `Err` is an I/O failure of the streams themselves; typed
/// refusals are counted in the summary, not errors.
pub fn run_once(
    config: ServeConfig,
    input: &mut impl Read,
    output: &mut impl Write,
) -> std::io::Result<OnceSummary> {
    let shared = Shared::new(config, Vec::new());
    shared.load_snapshot();
    let mut summary = OnceSummary::default();
    loop {
        let payload = match read_frame(input, shared.config.max_frame) {
            Ok(p) => p,
            Err(FrameError::Closed) => {
                shared.save_snapshot();
                return Ok(summary);
            }
            Err(FrameError::Io(e)) => return Err(e),
            Err(e) => {
                if let Some(code) = e.code() {
                    let resp = Response::error(
                        "",
                        code,
                        Json::obj([("message", Json::from(e.to_string()))]),
                        Json::Arr(Vec::new()),
                    );
                    write_frame(output, resp.wire_string().as_bytes())?;
                    summary.responses += 1;
                    summary.errors += 1;
                }
                shared.save_snapshot();
                return Ok(summary);
            }
        };
        let response = match parse_request(&payload) {
            Err((code, message)) => Response::error(
                "",
                code,
                Json::obj([("message", Json::from(message))]),
                Json::Arr(Vec::new()),
            ),
            Ok(req) => match shared.breaker_check(&req.tenant, &req.id) {
                Some(refusal) => refusal,
                None => {
                    let r = process_isolated(&shared, &req, None);
                    shared.breaker_record(&req.tenant, &r);
                    r
                }
            },
        };
        if response.code().is_some() {
            summary.errors += 1;
        }
        summary.responses += 1;
        write_frame(output, response.wire_string().as_bytes())?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn once(requests: &[&str]) -> Vec<Json> {
        let mut input = Vec::new();
        for r in requests {
            write_frame(&mut input, r.as_bytes()).unwrap();
        }
        let mut output = Vec::new();
        run_once(ServeConfig::default(), &mut &input[..], &mut output).unwrap();
        let mut docs = Vec::new();
        let mut cursor = &output[..];
        loop {
            match read_frame(&mut cursor, usize::MAX) {
                Ok(p) => docs.push(json::parse(std::str::from_utf8(&p).unwrap()).unwrap()),
                Err(FrameError::Closed) => break,
                Err(e) => panic!("bad response frame: {e}"),
            }
        }
        docs
    }

    fn error_code(doc: &Json) -> &str {
        doc.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap()
    }

    #[test]
    fn serves_a_figure_workload() {
        let req = r#"{"id":"fig2","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#;
        let docs = once(&[req, req]);
        assert_eq!(docs.len(), 2);
        for doc in &docs {
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(doc.get("id").and_then(Json::as_str), Some("fig2"));
            let layouts = doc.get("layouts").and_then(Json::as_obj).unwrap();
            assert!(layouts.contains_key("row"));
            let shapes = layouts["row"].get("shapes").unwrap();
            assert!(matches!(shapes, Json::Arr(v) if !v.is_empty()));
        }
        // Second run hits the generation cache.
        let stats = docs[1].get("stats").and_then(Json::as_obj).unwrap();
        assert!(stats["cache_hits"].as_num().unwrap() >= 1.0);
    }

    #[test]
    fn params_reach_the_program() {
        let docs = once(&[
            r#"{"id":"p","source":"row = ContactRow(layer = lyr, W = w)","params":{"lyr":"metal1","w":12}}"#,
        ]);
        assert_eq!(docs[0].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn fuel_bomb_is_refused_at_admission_with_zero_fuel() {
        let bomb = amgen_faults::hostile::FUEL_BOMB;
        let req = format!(r#"{{"id":"bomb","source":{}}}"#, Json::from(bomb.source));
        let docs = once(&[&req]);
        assert_eq!(docs[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(error_code(&docs[0]), "ADMISSION_REFUSED");
        let stats = docs[0].get("stats").and_then(Json::as_obj).unwrap();
        assert_eq!(stats["fuel_used"].as_num(), Some(0.0));
    }

    #[test]
    fn unknown_tech_and_lint_errors_are_typed() {
        let docs = once(&[
            r#"{"id":"t","tech":"nmos_5u","source":"x = 1"}"#,
            r#"{"id":"l","source":"x = NoSuchEntity()"}"#,
        ]);
        assert_eq!(error_code(&docs[0]), "UNKNOWN_TECH");
        assert_eq!(error_code(&docs[1]), "LINT_REJECTED");
        let diags = docs[1].get("diagnostics").unwrap();
        assert!(matches!(diags, Json::Arr(v) if !v.is_empty()));
    }

    #[test]
    fn diagnostic_lines_are_in_client_coordinates() {
        // Three params put the client's line 1 at line 4 of the
        // combined prelude + source; the wire position must still be
        // line 1 — the prelude is the server's implementation detail.
        let docs =
            once(&[r#"{"id":"off","source":"x = NoSuchEntity()","params":{"a":1,"b":2,"c":3}}"#]);
        assert_eq!(error_code(&docs[0]), "LINT_REJECTED");
        let Some(Json::Arr(diags)) = docs[0].get("diagnostics") else {
            panic!("diagnostics array present");
        };
        let lines: Vec<f64> = diags
            .iter()
            .filter_map(|d| d.get("line").and_then(Json::as_num))
            .collect();
        assert!(!lines.is_empty(), "at least one positioned diagnostic");
        assert!(
            lines.iter().all(|&l| l == 1.0),
            "positions in client coordinates, got {lines:?}"
        );
    }

    #[test]
    fn budget_clamps_to_the_tenant_cap() {
        // A request asking for more fuel than the cap still gets the
        // cap: the bomb stays refused.
        let bomb = amgen_faults::hostile::FUEL_BOMB;
        let req = format!(
            r#"{{"id":"b","budget":{{"fuel":99999999}},"source":{}}}"#,
            Json::from(bomb.source)
        );
        let docs = once(&[&req]);
        assert_eq!(error_code(&docs[0]), "ADMISSION_REFUSED");
    }

    #[test]
    fn deterministic_payload_for_identical_requests() {
        let req = r#"{"id":"d","source":"row = ContactRow(layer = \"poly\", W = 8)"}"#;
        let mut payloads = Vec::new();
        for _ in 0..2 {
            let mut input = Vec::new();
            write_frame(&mut input, req.as_bytes()).unwrap();
            let mut output = Vec::new();
            run_once(ServeConfig::default(), &mut &input[..], &mut output).unwrap();
            let mut cursor = &output[..];
            let p = read_frame(&mut cursor, usize::MAX).unwrap();
            let doc = json::parse(std::str::from_utf8(&p).unwrap()).unwrap();
            // Strip the stats section: it is the documented
            // non-deterministic remainder.
            let mut m = match doc {
                Json::Obj(m) => m,
                _ => panic!("response is an object"),
            };
            m.remove("stats");
            payloads.push(Json::Obj(m).to_string());
        }
        assert_eq!(payloads[0], payloads[1]);
    }

    #[test]
    fn stats_can_be_disabled_and_trace_enabled() {
        let docs = once(&[
            r#"{"id":"s0","stats":false,"source":"row = ContactRow(layer = \"poly\", W = 6)"}"#,
            r#"{"id":"s1","trace":true,"source":"row = ContactRow(layer = \"poly\", W = 6)"}"#,
        ]);
        assert!(docs[0].get("stats").is_none());
        let stats = docs[1].get("stats").and_then(Json::as_obj).unwrap();
        assert!(stats.contains_key("trace"));
    }
}

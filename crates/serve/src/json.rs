//! A minimal, dependency-free JSON value type with a deterministic
//! writer and a hardened reader.
//!
//! The wire contract (docs/SERVING.md) promises byte-identical response
//! payloads for identical requests, so the writer must be a pure
//! function of the value: objects keep their keys in a `BTreeMap`
//! (serialized in key order), numbers have one canonical rendering, and
//! strings escape exactly the characters JSON requires.
//!
//! The reader faces untrusted clients: it bounds nesting depth (a
//! `[[[[…` bomb must not recurse off the native stack) and rejects
//! trailing garbage, so a frame is exactly one JSON document.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum container nesting the parser accepts. Generous for real
/// requests (which nest 3–4 deep) and small enough that recursion never
/// threatens the stack.
pub const MAX_DEPTH: usize = 64;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; integral values within `i64` range
    /// are written without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so serialization order is key order —
    /// deterministic by construction.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at an object key, if this is an object holding one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to the canonical compact form (no whitespace, object keys
/// in order, canonical number rendering) — the byte-determinism
/// guarantee of the wire contract rests on this being a pure function
/// of the value.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// Canonical number rendering: integral values in `i64` range print
/// without a fraction; non-finite values (unrepresentable in JSON)
/// print as `null`.
fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed to parse. The message is safe to echo to the
/// client (it never contains request content, only positions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON document; trailing non-whitespace is an
/// error (a frame is one document).
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        src,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'s> {
    bytes: &'s [u8],
    src: &'s str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..`; lone surrogates
                            // are rejected (not representable as char).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the frame was validated as UTF-8
                    // before parsing, so re-decode from the source.
                    let rest = &self.src[self.pos - 1..];
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // Hostile but valid UTF-8 like `"\u0µµ"` puts a multi-byte
        // character inside the four escape bytes, so `pos + 4` may not
        // be a char boundary — the slice must be fallible.
        let text = self
            .src
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("invalid \\u escape digits"))?;
        if !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("invalid \\u escape digits"));
        }
        let cp =
            u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key, value).is_some() {
                // Duplicate keys are almost always a client bug; last-
                // wins silently would mask it.
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonical_documents() {
        for doc in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "1.5",
            "\"a\\\"b\\\\c\\n\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(doc).unwrap();
            assert_eq!(v.to_string(), doc, "round-trip of {doc}");
        }
    }

    #[test]
    fn object_keys_serialize_sorted() {
        let v = parse("{\"b\":1, \"a\":2}").unwrap();
        assert_eq!(v.to_string(), "{\"a\":2,\"b\":1}");
    }

    #[test]
    fn rejects_hostile_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err());
        assert!(parse("\"\\q\"").is_err());
        assert!(parse("nul").is_err());
        let bomb = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn numbers_render_canonically() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-0.5).to_string(), "-0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(parse("1e3").unwrap().to_string(), "1000");
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate");
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"µ²\"").unwrap().to_string(), "\"µ²\"");
    }

    #[test]
    fn hostile_unicode_escapes_error_without_panicking() {
        // Valid UTF-8 whose multi-byte characters land inside the four
        // escape digits: byte 4 past the `0` falls mid-`µ`, where a
        // direct slice would panic on the char boundary.
        assert!(parse("\"\\u0µµ\"").is_err());
        assert!(parse("\"\\uµµµµ\"").is_err());
        assert!(parse("\"\\ud83d\\u0µµ\"").is_err(), "low-surrogate slot");
        // Non-hex ASCII (including the `+` that from_str_radix would
        // otherwise accept) is rejected too.
        assert!(parse("\"\\u+fff\"").is_err());
        assert!(parse("\"\\u00g0\"").is_err());
        // Truncation at end of document stays a typed error.
        assert!(parse("\"\\u00").is_err());
    }
}

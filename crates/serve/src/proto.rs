//! The wire protocol: framing, request/response schemas and the error
//! taxonomy. docs/SERVING.md is the contract of record; the
//! `tests/doc_protocol.rs` suite pins its error-code table row-for-row
//! to [`ErrorCode::ALL`].
//!
//! # Framing
//!
//! One frame = an ASCII decimal byte count (1–8 digits), a single
//! `\n`, then exactly that many bytes of UTF-8 JSON. Both directions
//! use the same framing. The decimal prefix keeps the protocol
//! scriptable from a shell (`printf '%s\n%s' "${#REQ}" "$REQ" | nc …`)
//! while staying a strict length-prefixed protocol: the server never
//! scans for a terminator inside the payload.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::time::Duration;

use amgen_core::{GenError, GenErrorKind, MetricsSnapshot, Resource};
use amgen_db::LayoutObject;
use amgen_lint::Diagnostic;
use amgen_tech::RuleSet;

use crate::json::{self, Json};

/// Protocol revision carried in every response. Bumped on any breaking
/// change to framing or schemas.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard ceiling on the length prefix: 8 digits. Frames are further
/// bounded by the server's configured `max_frame`.
pub const MAX_LEN_DIGITS: usize = 8;

/// Smallest accepted `budget.wall_ms`. A deadline of a few milliseconds
/// expires before an idle server can even dequeue the request, turning
/// a client-side bad parameter into a spurious `OVERLOADED` — so the
/// schema refuses it up front instead.
pub const MIN_WALL_MS: u64 = 10;

// ----- framing ----------------------------------------------------------

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream at a frame boundary — not an error, the peer
    /// is done.
    Closed,
    /// The stream ended inside a frame (length line or payload).
    Truncated,
    /// The length prefix was not `1–8 ASCII digits + \n`.
    BadLength,
    /// The declared length exceeds the configured maximum. Carries the
    /// declared length.
    TooLarge(usize),
    /// An I/O error other than EOF.
    Io(std::io::Error),
}

impl FrameError {
    /// The wire error code a server should answer with before closing,
    /// when answering is still possible.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            FrameError::Closed => None,
            FrameError::Truncated => Some(ErrorCode::Truncated),
            FrameError::BadLength => Some(ErrorCode::BadFrame),
            FrameError::TooLarge(_) => Some(ErrorCode::FrameTooLarge),
            FrameError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadLength => write!(f, "malformed length prefix"),
            FrameError::TooLarge(n) => write!(f, "declared frame length {n} exceeds the limit"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Reads one frame payload. `max` bounds the accepted payload size;
/// larger declarations fail *before* any payload is read, so a hostile
/// length cannot make the server allocate.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    // Length line, byte by byte (it is at most 9 bytes long).
    let mut len: usize = 0;
    let mut digits = 0;
    loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) => {
                return Err(if digits == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(if digits == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                });
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
        match b[0] {
            b'\n' if digits > 0 => break,
            c if c.is_ascii_digit() && digits < MAX_LEN_DIGITS => {
                len = len * 10 + usize::from(c - b'0');
                digits += 1;
            }
            _ => return Err(FrameError::BadLength),
        }
    }
    if len > max {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(FrameError::Truncated)
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(payload)
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    writeln!(w, "{}", payload.len())?;
    w.write_all(payload)?;
    w.flush()
}

// ----- the error taxonomy -----------------------------------------------

/// Which layer of the server produced a refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorPhase {
    /// The frame or request document itself was unusable; nothing was
    /// admitted or executed.
    Protocol,
    /// The request was well-formed but refused before execution (lint
    /// errors or a certified cost over the tenant budget) — zero fuel
    /// spent.
    Admission,
    /// Execution started and failed; the `GenError` taxonomy maps onto
    /// these codes.
    Runtime,
    /// The server shed the request to protect latency; retry later.
    Overload,
}

impl ErrorPhase {
    /// Lower-case name, as written on the wire and in SERVING.md.
    pub fn name(self) -> &'static str {
        match self {
            ErrorPhase::Protocol => "protocol",
            ErrorPhase::Admission => "admission",
            ErrorPhase::Runtime => "runtime",
            ErrorPhase::Overload => "overload",
        }
    }
}

/// Every error code the server can put on the wire. The `error.code`
/// field of a response carries exactly one of these; docs/SERVING.md
/// documents each and `tests/doc_protocol.rs` keeps that table honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The length prefix was not `1–8 digits + \n`.
    BadFrame,
    /// The declared payload length exceeds the server's `max_frame`.
    FrameTooLarge,
    /// The stream ended inside a frame.
    Truncated,
    /// The payload is not valid UTF-8.
    InvalidUtf8,
    /// The payload is not a single valid JSON document.
    BadJson,
    /// The document violates the request schema (wrong type, missing
    /// `source`, unknown field, invalid parameter name…).
    BadRequest,
    /// The requested `tech` is not a known technology.
    UnknownTech,
    /// The linter found errors; diagnostics carry the details.
    LintRejected,
    /// The static cost certificate proves the run exceeds the tenant
    /// budget; refused with zero fuel spent.
    AdmissionRefused,
    /// The server shed the request under load before executing it.
    Overloaded,
    /// The server is draining towards shutdown and no longer admits
    /// work; `error.retry_after_ms` hints when to try another instance.
    ShuttingDown,
    /// The tenant's circuit breaker is open: its recent window was
    /// dominated by refusals/panics, so the request is fast-refused
    /// without spending lint/admission CPU. `error.retry_after_ms`
    /// carries the breaker cooldown.
    CircuitOpen,
    /// A dynamic budget resource ran out mid-run
    /// (`GenErrorKind::BudgetExhausted`); `error.resource` names it.
    BudgetExhausted,
    /// The run was cancelled (`GenErrorKind::Cancelled`).
    Cancelled,
    /// An isolated worker panic surfaced as the run's result
    /// (`GenErrorKind::WorkerPanic`).
    WorkerPanic,
    /// A deterministic injected fault fired (`GenErrorKind::Fault`;
    /// chaos testing only — a production server never installs a hook).
    FaultInjected,
    /// A pipeline stage failed (`GenErrorKind::Stage`); `error.stage`
    /// names the stage.
    StageFailed,
    /// A language-level runtime failure outside the `GenError` taxonomy
    /// (interpreter runtime error, variant-limit overflow).
    RuntimeError,
}

impl ErrorCode {
    /// All codes, in the order documented in SERVING.md: protocol,
    /// admission, overload, then the runtime taxonomy.
    pub const ALL: [ErrorCode; 18] = [
        ErrorCode::BadFrame,
        ErrorCode::FrameTooLarge,
        ErrorCode::Truncated,
        ErrorCode::InvalidUtf8,
        ErrorCode::BadJson,
        ErrorCode::BadRequest,
        ErrorCode::UnknownTech,
        ErrorCode::LintRejected,
        ErrorCode::AdmissionRefused,
        ErrorCode::Overloaded,
        ErrorCode::ShuttingDown,
        ErrorCode::CircuitOpen,
        ErrorCode::BudgetExhausted,
        ErrorCode::Cancelled,
        ErrorCode::WorkerPanic,
        ErrorCode::FaultInjected,
        ErrorCode::StageFailed,
        ErrorCode::RuntimeError,
    ];

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "PROTO_BAD_FRAME",
            ErrorCode::FrameTooLarge => "PROTO_FRAME_TOO_LARGE",
            ErrorCode::Truncated => "PROTO_TRUNCATED",
            ErrorCode::InvalidUtf8 => "PROTO_INVALID_UTF8",
            ErrorCode::BadJson => "PROTO_BAD_JSON",
            ErrorCode::BadRequest => "PROTO_BAD_REQUEST",
            ErrorCode::UnknownTech => "UNKNOWN_TECH",
            ErrorCode::LintRejected => "LINT_REJECTED",
            ErrorCode::AdmissionRefused => "ADMISSION_REFUSED",
            ErrorCode::Overloaded => "OVERLOADED",
            ErrorCode::ShuttingDown => "SHUTTING_DOWN",
            ErrorCode::CircuitOpen => "CIRCUIT_OPEN",
            ErrorCode::BudgetExhausted => "BUDGET_EXHAUSTED",
            ErrorCode::Cancelled => "CANCELLED",
            ErrorCode::WorkerPanic => "WORKER_PANIC",
            ErrorCode::FaultInjected => "FAULT_INJECTED",
            ErrorCode::StageFailed => "STAGE_FAILED",
            ErrorCode::RuntimeError => "RUNTIME_ERROR",
        }
    }

    /// Which layer refuses with this code.
    pub fn phase(self) -> ErrorPhase {
        match self {
            ErrorCode::BadFrame
            | ErrorCode::FrameTooLarge
            | ErrorCode::Truncated
            | ErrorCode::InvalidUtf8
            | ErrorCode::BadJson
            | ErrorCode::BadRequest
            | ErrorCode::UnknownTech => ErrorPhase::Protocol,
            ErrorCode::LintRejected | ErrorCode::AdmissionRefused => ErrorPhase::Admission,
            ErrorCode::Overloaded | ErrorCode::ShuttingDown | ErrorCode::CircuitOpen => {
                ErrorPhase::Overload
            }
            ErrorCode::BudgetExhausted
            | ErrorCode::Cancelled
            | ErrorCode::WorkerPanic
            | ErrorCode::FaultInjected
            | ErrorCode::StageFailed
            | ErrorCode::RuntimeError => ErrorPhase::Runtime,
        }
    }

    /// The code a [`GenErrorKind`] maps to — the `GenError` taxonomy
    /// over the wire.
    pub fn from_gen_kind(kind: &GenErrorKind) -> ErrorCode {
        match kind {
            GenErrorKind::BudgetExhausted(_) => ErrorCode::BudgetExhausted,
            GenErrorKind::Cancelled => ErrorCode::Cancelled,
            GenErrorKind::WorkerPanic(_) => ErrorCode::WorkerPanic,
            GenErrorKind::Fault { .. } => ErrorCode::FaultInjected,
            GenErrorKind::Stage(_) => ErrorCode::StageFailed,
            _ => ErrorCode::RuntimeError,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ----- requests ---------------------------------------------------------

/// A request parameter value: the DSL's two scalar kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A number (dimension, count…).
    Num(f64),
    /// A string (layer name…).
    Str(String),
}

/// Per-request budget overrides. Every field is clamped to the server's
/// tenant caps — a client can tighten its budget, never widen it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BudgetSpec {
    /// Interpreter fuel cap.
    pub fuel: Option<u64>,
    /// Entity recursion-depth cap.
    pub recursion: Option<u64>,
    /// Compaction-step cap.
    pub compact_steps: Option<u64>,
    /// Wall deadline, milliseconds.
    pub wall_ms: Option<u64>,
}

/// A parsed, validated generation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed verbatim in the response.
    pub id: String,
    /// Tenant the request is accounted (and budgeted) under.
    pub tenant: String,
    /// Technology id (`"bicmos_1u"`, `"cmos_08"`).
    pub tech: String,
    /// The generator program.
    pub source: String,
    /// Named values prepended to the program as assignments, in name
    /// order.
    pub params: BTreeMap<String, ParamValue>,
    /// Budget overrides (clamped to the tenant caps).
    pub budget: BudgetSpec,
    /// Include a trace report in `stats.trace`.
    pub want_trace: bool,
    /// Include the `stats` section at all (default true).
    pub want_stats: bool,
}

/// A schema violation: the message is safe to echo to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError(pub String);

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn field_str(v: &Json, field: &str) -> Result<String, RequestError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| RequestError(format!("`{field}` must be a string")))
}

fn field_u64(v: &Json, field: &str) -> Result<u64, RequestError> {
    match v.as_num() {
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= 9.0e15 => Ok(n as u64),
        _ => Err(RequestError(format!(
            "`{field}` must be a non-negative integer"
        ))),
    }
}

impl Request {
    /// Validates a parsed document against the request schema. Unknown
    /// fields are rejected — silently ignoring a misspelled `budget`
    /// would run the request with no budget the client asked for.
    pub fn from_json(doc: &Json) -> Result<Request, RequestError> {
        let Some(map) = doc.as_obj() else {
            return Err(RequestError("request must be a JSON object".into()));
        };
        let mut req = Request {
            id: String::new(),
            tenant: "anon".into(),
            tech: "bicmos_1u".into(),
            source: String::new(),
            params: BTreeMap::new(),
            budget: BudgetSpec::default(),
            want_trace: false,
            want_stats: true,
        };
        let mut has_source = false;
        for (key, value) in map {
            match key.as_str() {
                "id" => req.id = field_str(value, "id")?,
                "tenant" => {
                    req.tenant = field_str(value, "tenant")?;
                    if req.tenant.is_empty() || req.tenant.len() > 64 {
                        return Err(RequestError("`tenant` must be 1–64 characters".into()));
                    }
                }
                "tech" => req.tech = field_str(value, "tech")?,
                "source" => {
                    req.source = field_str(value, "source")?;
                    has_source = true;
                }
                "params" => {
                    let Some(params) = value.as_obj() else {
                        return Err(RequestError("`params` must be an object".into()));
                    };
                    for (name, v) in params {
                        if !is_ident(name) {
                            return Err(RequestError(format!(
                                "parameter `{name}` is not a valid identifier"
                            )));
                        }
                        let pv = match v {
                            Json::Num(n) if n.is_finite() => ParamValue::Num(*n),
                            Json::Str(s) => {
                                if s.contains('"') || s.chars().any(char::is_control) {
                                    return Err(RequestError(format!(
                                        "parameter `{name}`: string values must not contain \
                                         quotes or control characters"
                                    )));
                                }
                                ParamValue::Str(s.clone())
                            }
                            _ => {
                                return Err(RequestError(format!(
                                    "parameter `{name}` must be a number or a string"
                                )))
                            }
                        };
                        req.params.insert(name.clone(), pv);
                    }
                }
                "budget" => {
                    let Some(b) = value.as_obj() else {
                        return Err(RequestError("`budget` must be an object".into()));
                    };
                    for (k, v) in b {
                        match k.as_str() {
                            "fuel" => req.budget.fuel = Some(field_u64(v, "budget.fuel")?),
                            "recursion" => {
                                req.budget.recursion = Some(field_u64(v, "budget.recursion")?)
                            }
                            "compact_steps" => {
                                req.budget.compact_steps =
                                    Some(field_u64(v, "budget.compact_steps")?)
                            }
                            "wall_ms" => {
                                let ms = field_u64(v, "budget.wall_ms")?;
                                if ms < MIN_WALL_MS {
                                    return Err(RequestError(format!(
                                        "`budget.wall_ms` must be at least {MIN_WALL_MS}"
                                    )));
                                }
                                req.budget.wall_ms = Some(ms);
                            }
                            other => {
                                return Err(RequestError(format!("unknown budget field `{other}`")))
                            }
                        }
                    }
                }
                "trace" => {
                    req.want_trace = value
                        .as_bool()
                        .ok_or_else(|| RequestError("`trace` must be a boolean".into()))?
                }
                "stats" => {
                    req.want_stats = value
                        .as_bool()
                        .ok_or_else(|| RequestError("`stats` must be a boolean".into()))?
                }
                other => return Err(RequestError(format!("unknown request field `{other}`"))),
            }
        }
        if !has_source {
            return Err(RequestError("missing required field `source`".into()));
        }
        Ok(req)
    }

    /// The parameter prelude: one assignment per parameter, in name
    /// order, prepended to the program source. Numbers print in the
    /// DSL's literal syntax (integral values without a fraction).
    pub fn prelude(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.params {
            match value {
                ParamValue::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => {
                    out.push_str(&format!("{name} = {}\n", *n as i64));
                }
                ParamValue::Num(n) => out.push_str(&format!("{name} = {n}\n")),
                ParamValue::Str(s) => out.push_str(&format!("{name} = \"{s}\"\n")),
            }
        }
        out
    }

    /// Lines the parameter prelude adds before the client's source (one
    /// assignment per parameter) — the offset `diagnostics_json`
    /// subtracts so positions on the wire are in client coordinates.
    pub fn prelude_lines(&self) -> u32 {
        self.params.len() as u32
    }

    /// The effective wall deadline of the request given the server cap.
    pub fn wall(&self, cap: Duration) -> Duration {
        match self.budget.wall_ms {
            Some(ms) => Duration::from_millis(ms).min(cap),
            None => cap,
        }
    }
}

// ----- responses --------------------------------------------------------

/// A response under construction. The deterministic payload (everything
/// identical requests must answer identically) is kept separate from
/// the per-run `stats` section (timings, cache temperature), and the
/// two merge at serialization.
#[derive(Debug, Clone)]
pub struct Response {
    payload: Json,
    stats: Option<Json>,
    code: Option<ErrorCode>,
}

impl Response {
    /// A success response: the generated layouts plus any non-blocking
    /// diagnostics.
    pub fn ok(id: &str, layouts: Json, diagnostics: Json) -> Response {
        Response {
            payload: Json::obj([
                ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
                ("id", Json::from(id)),
                ("ok", Json::Bool(true)),
                ("layouts", layouts),
                ("diagnostics", diagnostics),
            ]),
            stats: None,
            code: None,
        }
    }

    /// An error response. `detail` fills the `error` object next to the
    /// code and phase.
    pub fn error(id: &str, code: ErrorCode, detail: Json, diagnostics: Json) -> Response {
        let mut error = BTreeMap::new();
        error.insert("code".to_string(), Json::from(code.as_str()));
        error.insert("phase".to_string(), Json::from(code.phase().name()));
        if let Json::Obj(extra) = detail {
            error.extend(extra);
        }
        Response {
            payload: Json::obj([
                ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
                ("id", Json::from(id)),
                ("ok", Json::Bool(false)),
                ("error", Json::Obj(error)),
                ("diagnostics", diagnostics),
            ]),
            stats: None,
            code: Some(code),
        }
    }

    /// The typed error code, `None` for a success response. Lets the
    /// server branch on the outcome (exit codes, breaker accounting)
    /// without re-parsing its own wire JSON.
    pub fn code(&self) -> Option<ErrorCode> {
        self.code
    }

    /// Attaches the non-deterministic stats section.
    #[must_use]
    pub fn with_stats(mut self, stats: Json) -> Response {
        self.stats = Some(stats);
        self
    }

    /// The deterministic payload serialization — what the byte-identity
    /// guarantee covers.
    pub fn payload_string(&self) -> String {
        self.payload.to_string()
    }

    /// The full wire serialization (payload plus `stats` when present).
    pub fn wire_string(&self) -> String {
        match &self.stats {
            None => self.payload.to_string(),
            Some(stats) => {
                let mut full = match &self.payload {
                    Json::Obj(m) => m.clone(),
                    _ => unreachable!("payload is always an object"),
                };
                full.insert("stats".to_string(), stats.clone());
                Json::Obj(full).to_string()
            }
        }
    }
}

/// The `error` detail object for a [`GenError`]: stage, kind-specific
/// fields, and the rendered message.
pub fn gen_error_detail(e: &GenError) -> Json {
    let mut m = BTreeMap::new();
    m.insert("stage".to_string(), Json::from(e.stage.name()));
    m.insert("message".to_string(), Json::from(e.to_string()));
    if let Some(entity) = &e.entity {
        m.insert("entity".to_string(), Json::from(entity.as_str()));
    }
    if let GenErrorKind::BudgetExhausted(r) = &e.kind {
        m.insert("resource".to_string(), Json::from(resource_name(*r)));
    }
    Json::Obj(m)
}

fn resource_name(r: Resource) -> &'static str {
    match r {
        Resource::DslFuel => "fuel",
        Resource::Recursion => "recursion",
        Resource::CompactSteps => "compact_steps",
        Resource::OptNodes => "opt_nodes",
        Resource::Wall => "wall",
    }
}

/// Serializes lint diagnostics for the wire: stable code, severity,
/// 1-based position, message and optional help.
///
/// The server lints the parameter prelude and the client's program as
/// one source, but positions on the wire are in the *client's*
/// coordinates: `prelude_lines` (one per parameter) is subtracted from
/// every span, and a finding inside the prelude itself carries no
/// position — a prelude line number would point at source the client
/// never wrote.
pub fn diagnostics_json(diags: &[Diagnostic], prelude_lines: u32) -> Json {
    Json::Arr(
        diags
            .iter()
            .map(|d| {
                let mut m = BTreeMap::new();
                m.insert("code".to_string(), Json::from(d.code.as_str()));
                m.insert(
                    "severity".to_string(),
                    Json::from(if d.is_error() { "error" } else { "warning" }),
                );
                if !d.span.is_none() && d.span.line > prelude_lines {
                    m.insert(
                        "line".to_string(),
                        Json::from(u64::from(d.span.line - prelude_lines)),
                    );
                    m.insert("col".to_string(), Json::from(d.span.col as u64));
                }
                m.insert("message".to_string(), Json::from(d.message.as_str()));
                if let Some(help) = &d.help {
                    m.insert("help".to_string(), Json::from(help.as_str()));
                }
                Json::Obj(m)
            })
            .collect(),
    )
}

/// Serializes one layout object. Coordinates are in database units
/// (the technology grid); shapes and ports appear in storage order,
/// which the pipeline keeps deterministic.
pub fn layout_json(obj: &LayoutObject, rules: &RuleSet) -> Json {
    let bbox = obj.bbox();
    let shapes = Json::Arr(
        obj.shapes()
            .iter()
            .map(|s| {
                let mut m = BTreeMap::new();
                m.insert("layer".to_string(), Json::from(rules.layer_name(s.layer)));
                m.insert(
                    "rect".to_string(),
                    Json::Arr(vec![
                        Json::from(s.rect.x0),
                        Json::from(s.rect.y0),
                        Json::from(s.rect.x1),
                        Json::from(s.rect.y1),
                    ]),
                );
                if let Some(net) = s.net {
                    m.insert("net".to_string(), Json::from(obj.net_name(net)));
                }
                match s.role {
                    amgen_db::ShapeRole::Normal => {}
                    amgen_db::ShapeRole::DeviceActive => {
                        m.insert("role".to_string(), Json::from("active"));
                    }
                    amgen_db::ShapeRole::SubstrateContact => {
                        m.insert("role".to_string(), Json::from("substrate_contact"));
                    }
                }
                Json::Obj(m)
            })
            .collect(),
    );
    let ports = Json::Arr(
        obj.ports()
            .iter()
            .map(|p| {
                let mut m = BTreeMap::new();
                m.insert("name".to_string(), Json::from(p.name.as_str()));
                m.insert("layer".to_string(), Json::from(rules.layer_name(p.layer)));
                m.insert(
                    "rect".to_string(),
                    Json::Arr(vec![
                        Json::from(p.rect.x0),
                        Json::from(p.rect.y0),
                        Json::from(p.rect.x1),
                        Json::from(p.rect.y1),
                    ]),
                );
                if let Some(net) = p.net {
                    m.insert("net".to_string(), Json::from(obj.net_name(net)));
                }
                Json::Obj(m)
            })
            .collect(),
    );
    Json::obj([
        ("name", Json::from(obj.name())),
        (
            "bbox",
            Json::Arr(vec![
                Json::from(bbox.x0),
                Json::from(bbox.y0),
                Json::from(bbox.x1),
                Json::from(bbox.y1),
            ]),
        ),
        ("shapes", shapes),
        ("ports", ports),
    ])
}

/// The `stats` section: per-request wall time and resource use, the
/// metrics snapshot line, optional trace report, and advisory flags.
#[allow(clippy::too_many_arguments)]
pub fn stats_json(
    wall: Duration,
    fuel_used: u64,
    snap: &MetricsSnapshot,
    flags: Vec<&'static str>,
    trace_report: Option<String>,
) -> Json {
    let mut m = BTreeMap::new();
    m.insert(
        "wall_us".to_string(),
        Json::from(wall.as_micros().min(u64::MAX as u128) as u64),
    );
    m.insert("fuel_used".to_string(), Json::from(fuel_used));
    m.insert("cache_hits".to_string(), Json::from(snap.cache_hits));
    m.insert("cache_misses".to_string(), Json::from(snap.cache_misses));
    m.insert("metrics".to_string(), Json::from(snap.to_string()));
    if !flags.is_empty() {
        m.insert(
            "flags".to_string(),
            Json::Arr(flags.into_iter().map(Json::from).collect()),
        );
    }
    if let Some(report) = trace_report {
        m.insert("trace".to_string(), Json::from(report));
    }
    Json::Obj(m)
}

/// Parses a raw frame payload into a request, mapping each failure mode
/// to its wire code.
pub fn parse_request(payload: &[u8]) -> Result<Request, (ErrorCode, String)> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| (ErrorCode::InvalidUtf8, format!("payload is not UTF-8: {e}")))?;
    let doc = json::parse(text).map_err(|e| (ErrorCode::BadJson, e.to_string()))?;
    Request::from_json(&doc).map_err(|e| (ErrorCode::BadRequest, e.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}").unwrap();
        assert_eq!(buf, b"7\n{\"a\":1}");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"{\"a\":1}");
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Closed)));
    }

    #[test]
    fn framing_rejects_hostile_prefixes() {
        let mut r: &[u8] = b"abc\n{}";
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::BadLength)
        ));
        let mut r: &[u8] = b"999999999\n"; // 9 digits
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::BadLength)
        ));
        let mut r: &[u8] = b"99999999\n"; // 8 digits, over max
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::TooLarge(99_999_999))
        ));
        let mut r: &[u8] = b"10\nshort";
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated)
        ));
        let mut r: &[u8] = b"12";
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn request_schema_is_strict() {
        let ok =
            json::parse(r#"{"source":"x = 1","params":{"W":10},"budget":{"fuel":5}}"#).unwrap();
        let req = Request::from_json(&ok).unwrap();
        assert_eq!(req.tenant, "anon");
        assert_eq!(req.budget.fuel, Some(5));
        assert_eq!(req.prelude(), "W = 10\n");

        for bad in [
            r#"{"params":{}}"#,                             // missing source
            r#"{"source":"x = 1","sauce":"typo"}"#,         // unknown field
            r#"{"source":"x = 1","budget":{"fool":1}}"#,    // unknown budget knob
            r#"{"source":"x = 1","params":{"1bad":2}}"#,    // invalid identifier
            r#"{"source":"x = 1","params":{"s":"a\"b"}}"#,  // quote smuggling
            r#"{"source":"x = 1","budget":{"fuel":-1}}"#,   // negative cap
            r#"{"source":"x = 1","budget":{"wall_ms":0}}"#, // below the floor
            r#"{"source":"x = 1","budget":{"wall_ms":9}}"#, // below the floor
            r#"[1,2,3]"#,                                   // not an object
        ] {
            let doc = json::parse(bad).unwrap();
            assert!(Request::from_json(&doc).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn prelude_orders_params_by_name() {
        let doc = json::parse(r#"{"source":"","params":{"b":2,"a":1.5,"layer":"poly"}}"#).unwrap();
        let req = Request::from_json(&doc).unwrap();
        assert_eq!(req.prelude(), "a = 1.5\nb = 2\nlayer = \"poly\"\n");
    }

    #[test]
    fn error_codes_are_unique_and_phased() {
        let mut names: Vec<_> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ErrorCode::ALL.len());
        assert_eq!(ErrorCode::BadFrame.phase(), ErrorPhase::Protocol);
        assert_eq!(ErrorCode::AdmissionRefused.phase(), ErrorPhase::Admission);
        assert_eq!(ErrorCode::Overloaded.phase(), ErrorPhase::Overload);
        assert_eq!(ErrorCode::StageFailed.phase(), ErrorPhase::Runtime);
    }

    #[test]
    fn gen_kind_mapping_covers_the_taxonomy() {
        use amgen_core::{FaultSite, Stage};
        let cases = [
            (
                GenError::budget(Stage::Dsl, Resource::DslFuel).kind,
                ErrorCode::BudgetExhausted,
            ),
            (GenError::cancelled(Stage::Opt).kind, ErrorCode::Cancelled),
            (
                GenError::worker_panic(Stage::Opt, "boom").kind,
                ErrorCode::WorkerPanic,
            ),
            (
                GenError::fault(Stage::Prim, FaultSite::PrimCall, "x").kind,
                ErrorCode::FaultInjected,
            ),
            (
                GenError::stage_msg(Stage::Modgen, "bad").kind,
                ErrorCode::StageFailed,
            ),
        ];
        for (kind, want) in cases {
            assert_eq!(ErrorCode::from_gen_kind(&kind), want);
        }
    }

    #[test]
    fn responses_split_deterministic_payload_from_stats() {
        let r = Response::ok("r1", Json::obj([]), Json::Arr(vec![]));
        let with = r
            .clone()
            .with_stats(Json::obj([("wall_us", Json::from(5u64))]));
        assert_eq!(r.payload_string(), with.payload_string());
        assert!(with.wire_string().contains("\"stats\""));
        assert!(!with.payload_string().contains("\"stats\""));
        assert!(r.payload_string().contains("\"ok\":true"));
    }
}

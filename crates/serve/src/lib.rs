//! # amgen-serve — the multi-tenant generation server
//!
//! A long-running daemon that accepts generator programs plus
//! parameters over a length-prefixed JSON wire protocol (TCP, or a
//! single-shot stdin/stdout mode), gates every request through the
//! static analyzer's admission check, executes on a sharded worker
//! pool over the process-wide generation cache, and streams back
//! layout JSON, diagnostics and an optional trace.
//!
//! docs/SERVING.md is the wire contract of record. The guarantees in
//! one paragraph: identical requests produce **byte-identical**
//! deterministic payloads (everything outside the `stats` section);
//! programs the cost certificate proves over budget are refused at
//! admission with **zero fuel spent**; overload **sheds by deadline**
//! (bounded queues, `OVERLOADED`) instead of queueing without limit;
//! and every failure is a typed error from a closed
//! [`ErrorCode`] taxonomy — a hostile client can get
//! its connection closed, never a panic.
//!
//! ```
//! use amgen_serve::proto::{read_frame, write_frame};
//! use amgen_serve::{run_once, ServeConfig};
//!
//! // One request through the full pipeline, no sockets involved.
//! let mut input = Vec::new();
//! let req = r#"{"id":"r1","source":"row = ContactRow(layer = \"poly\", W = 10)"}"#;
//! write_frame(&mut input, req.as_bytes()).unwrap();
//! let mut output = Vec::new();
//! run_once(ServeConfig::default(), &mut &input[..], &mut output).unwrap();
//! let payload = read_frame(&mut &output[..], usize::MAX).unwrap();
//! let text = std::str::from_utf8(&payload).unwrap();
//! assert!(text.contains("\"ok\":true"));
//! assert!(text.contains("\"id\":\"r1\""));
//! ```

pub mod json;
pub mod proto;
pub mod server;

pub use json::Json;
pub use proto::{ErrorCode, ErrorPhase, Request, Response};
pub use server::{run_once, OnceSummary, ServeConfig, Server, WorkerChaos, WorkerFate};

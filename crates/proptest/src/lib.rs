//! An **offline drop-in subset of the proptest API**.
//!
//! The real `proptest` crate cannot be vendored in this environment, so
//! this crate re-implements the slice of its surface the workspace uses:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, `prop_recursive` and `boxed`,
//! * range / tuple / string-pattern / [`Just`](strategy::Just) / `prop_oneof!` strategies,
//! * `prop::collection::vec` and `prop::option::of`,
//! * [`any`](arbitrary::any) for primitives,
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Generation is **deterministic** (a fixed seed derived from the test
//! name) and there is **no shrinking**: a failing case prints the
//! generated inputs and panics. That trades minimal counterexamples for
//! zero dependencies and reproducible CI runs.

pub mod test_runner {
    /// Per-`proptest!` configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod rng {
    /// SplitMix64: tiny, fast, reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform `i64` in `lo..hi` (`lo < hi`).
        pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
            let span = (hi as i128 - lo as i128) as u64;
            lo.wrapping_add(self.below(span) as i64)
        }

        /// Uniform bool.
        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// A generator of values of type `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG state.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F, U>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                inner: self,
                f,
                _marker: PhantomData,
            }
        }

        /// Builds a recursive strategy: `f` receives the strategy for the
        /// recursive positions and returns the composite strategy. The
        /// `depth` bound limits nesting; the remaining two parameters
        /// (desired size, expected branch factor) are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), f(cur).boxed()]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F, U> {
        inner: S,
        f: F,
        _marker: PhantomData<fn() -> U>,
    }

    impl<S, F, U> Strategy for Map<S, F, U>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over the given alternatives (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A strategy from a plain generation function.
    pub struct Gen<T, F: Fn(&mut TestRng) -> T>(F, PhantomData<fn() -> T>);

    impl<T, F: Fn(&mut TestRng) -> T> Gen<T, F> {
        /// Wraps `f` as a strategy.
        pub fn new(f: F) -> Gen<T, F> {
            Gen(f, PhantomData)
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for Gen<T, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.i64_in(self.start as i64, self.end as i64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    rng.i64_in(lo as i64, hi as i64 + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &'static str {
        type Value = String;
        /// String-literal strategies are interpreted as a small regex
        /// subset: sequences of literal characters, `[...]` classes (with
        /// ranges and `\`-escapes) and `\PC` (any printable character),
        /// each optionally followed by `{n}`, `{m,n}`, `?`, `*` or `+`.
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_pattern(self, rng)
        }
    }
}

pub mod string {
    use crate::rng::TestRng;

    /// One parsed pattern atom: a set of char ranges plus a repetition.
    struct Atom {
        ranges: Vec<(u32, u32)>, // inclusive codepoint ranges
        min: u32,
        max: u32,
    }

    const PRINTABLE: &[(u32, u32)] = &[(0x20, 0x7E)];

    fn parse(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let ranges: Vec<(u32, u32)> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().expect("unterminated [class]");
                        match c {
                            ']' => {
                                if let Some(p) = prev {
                                    set.push((p as u32, p as u32));
                                }
                                break;
                            }
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let hi = chars.next().unwrap();
                                let lo = prev.take().unwrap();
                                set.push((lo as u32, hi as u32));
                            }
                            '\\' => {
                                if let Some(p) = prev.replace(chars.next().unwrap()) {
                                    set.push((p as u32, p as u32));
                                }
                            }
                            c => {
                                if let Some(p) = prev.replace(c) {
                                    set.push((p as u32, p as u32));
                                }
                            }
                        }
                    }
                    set
                }
                '\\' => match chars.next().expect("dangling escape") {
                    'P' => {
                        // `\PC` — "not a control character": printable.
                        let class = chars.next().expect("\\P needs a class");
                        assert_eq!(class, 'C', "only \\PC is supported");
                        PRINTABLE.to_vec()
                    }
                    c => vec![(c as u32, c as u32)],
                },
                '.' => PRINTABLE.to_vec(),
                c => vec![(c as u32, c as u32)],
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut lo = String::new();
                    let mut hi = String::new();
                    let mut in_hi = false;
                    loop {
                        match chars.next().expect("unterminated {quantifier}") {
                            '}' => break,
                            ',' => in_hi = true,
                            d => {
                                if in_hi {
                                    hi.push(d)
                                } else {
                                    lo.push(d)
                                }
                            }
                        }
                    }
                    let lo: u32 = lo.parse().expect("bad quantifier");
                    let hi: u32 = if in_hi {
                        hi.parse().expect("bad quantifier")
                    } else {
                        lo
                    };
                    (lo, hi)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }

    /// Generates one string matching the supported pattern subset.
    pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            let total: u64 = atom
                .ranges
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1) as u64)
                .sum();
            for _ in 0..n {
                let mut pick = rng.below(total.max(1));
                for &(lo, hi) in &atom.ranges {
                    let span = (hi - lo + 1) as u64;
                    if pick < span {
                        out.push(char::from_u32(lo + pick as u32).unwrap_or('?'));
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Accepted size specifications for [`vec()`].
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool() {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::{Gen, Strategy};

    /// Types with a canonical strategy ([`any`]).
    pub trait Arbitrary: Sized {
        /// Returns the canonical strategy for the type.
        fn arbitrary() -> impl Strategy<Value = Self>;
    }

    impl Arbitrary for bool {
        fn arbitrary() -> impl Strategy<Value = bool> {
            Gen::new(|rng: &mut TestRng| rng.gen_bool())
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> impl Strategy<Value = $t> {
                    Gen::new(|rng: &mut TestRng| rng.next_u64() as $t)
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> impl Strategy<Value = T> {
        T::arbitrary()
    }
}

/// Everything a `proptest!` user needs, for glob import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Prints the generated inputs when a case panics.
pub struct CaseGuard {
    /// Formatted `name = value` pairs for the running case.
    pub info: String,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest: failing case #{}: {}", self.case, self.info);
        }
    }
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn` runs `cases` times over generated
/// inputs (deterministic seed per test, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::rng::TestRng::new($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let guard = $crate::CaseGuard {
                    info: [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    case,
                };
                { $body }
                drop(guard);
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

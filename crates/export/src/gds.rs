//! Minimal binary GDSII stream writer (and a summary parser for tests).
//!
//! Only what a flat module export needs: one library, one structure,
//! `BOUNDARY` elements for every shape. Records follow the GDSII stream
//! format: `[u16 length][u8 record type][u8 data type][payload]`.

use amgen_db::LayoutObject;
use amgen_tech::Tech;

// Record types.
const HEADER: u8 = 0x00;
const BGNLIB: u8 = 0x01;
const LIBNAME: u8 = 0x02;
const UNITS: u8 = 0x03;
const ENDLIB: u8 = 0x04;
const BGNSTR: u8 = 0x05;
const STRNAME: u8 = 0x06;
const ENDSTR: u8 = 0x07;
const BOUNDARY: u8 = 0x08;
const LAYER: u8 = 0x0d;
const DATATYPE: u8 = 0x0e;
const XY: u8 = 0x10;
const ENDEL: u8 = 0x11;

// Data types.
const DT_NONE: u8 = 0x00;
const DT_I16: u8 = 0x02;
const DT_I32: u8 = 0x03;
const DT_F64: u8 = 0x05;
const DT_ASCII: u8 = 0x06;

fn record(out: &mut Vec<u8>, rectype: u8, datatype: u8, payload: &[u8]) {
    let len = (payload.len() + 4) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.push(rectype);
    out.push(datatype);
    out.extend_from_slice(payload);
}

fn ascii_payload(s: &str) -> Vec<u8> {
    let mut p: Vec<u8> = s.bytes().collect();
    if !p.len().is_multiple_of(2) {
        p.push(0);
    }
    p
}

/// GDSII 8-byte excess-64 floating point.
fn gds_f64(v: f64) -> [u8; 8] {
    if v == 0.0 {
        return [0; 8];
    }
    let sign = if v < 0.0 { 0x80u8 } else { 0 };
    let mut m = v.abs();
    let mut e: i32 = 64;
    while m >= 1.0 {
        m /= 16.0;
        e += 1;
    }
    while m < 1.0 / 16.0 {
        m *= 16.0;
        e -= 1;
    }
    let mut out = [0u8; 8];
    out[0] = sign | (e as u8);
    let mut frac = m;
    for b in out.iter_mut().skip(1) {
        frac *= 256.0;
        let byte = frac.floor();
        *b = byte as u8;
        frac -= byte;
    }
    out
}

/// Writes the object as a single-structure GDSII stream. Database unit =
/// 1 nm, user unit = 1 µm.
///
/// # Example
/// ```
/// use amgen_db::{LayoutObject, Shape};
/// use amgen_geom::Rect;
/// use amgen_tech::Tech;
///
/// let tech = Tech::bicmos_1u();
/// let poly = tech.layer("poly").unwrap();
/// let mut obj = LayoutObject::new("cell");
/// obj.push(Shape::new(poly, Rect::new(0, 0, 1_000, 5_000)));
/// let bytes = amgen_export::write_gds(&tech, &obj);
/// let summary = amgen_export::parse_gds_summary(&bytes).unwrap();
/// assert_eq!(summary.boundaries, 1);
/// ```
pub fn write_gds(tech: &Tech, obj: &LayoutObject) -> Vec<u8> {
    let mut out = Vec::new();
    record(&mut out, HEADER, DT_I16, &600i16.to_be_bytes());
    // BGNLIB: 12 i16 timestamps (zeroed — deterministic output).
    record(&mut out, BGNLIB, DT_I16, &[0u8; 24]);
    record(&mut out, LIBNAME, DT_ASCII, &ascii_payload("AMGEN"));
    let mut units = Vec::new();
    units.extend_from_slice(&gds_f64(1e-3)); // db units per user unit (nm/µm)
    units.extend_from_slice(&gds_f64(1e-9)); // db unit in metres
    record(&mut out, UNITS, DT_F64, &units);
    record(&mut out, BGNSTR, DT_I16, &[0u8; 24]);
    let name = if obj.name().is_empty() {
        "TOP"
    } else {
        obj.name()
    };
    let clean: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_uppercase()
            } else {
                '_'
            }
        })
        .collect();
    record(&mut out, STRNAME, DT_ASCII, &ascii_payload(&clean));
    for s in obj.shapes() {
        if s.rect.is_empty() {
            continue;
        }
        let info = tech.info(s.layer);
        record(&mut out, BOUNDARY, DT_NONE, &[]);
        record(&mut out, LAYER, DT_I16, &(info.gds_layer).to_be_bytes());
        record(
            &mut out,
            DATATYPE,
            DT_I16,
            &(info.gds_datatype).to_be_bytes(),
        );
        let r = s.rect;
        let pts: [(i64, i64); 5] = [
            (r.x0, r.y0),
            (r.x1, r.y0),
            (r.x1, r.y1),
            (r.x0, r.y1),
            (r.x0, r.y0),
        ];
        let mut xy = Vec::with_capacity(40);
        for (x, y) in pts {
            xy.extend_from_slice(&(x as i32).to_be_bytes());
            xy.extend_from_slice(&(y as i32).to_be_bytes());
        }
        record(&mut out, XY, DT_I32, &xy);
        record(&mut out, ENDEL, DT_NONE, &[]);
    }
    record(&mut out, ENDSTR, DT_NONE, &[]);
    record(&mut out, ENDLIB, DT_NONE, &[]);
    out
}

/// Structural summary of a GDSII stream (used for round-trip tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GdsSummary {
    /// Structure name.
    pub structure: String,
    /// Number of `BOUNDARY` elements.
    pub boundaries: usize,
    /// Distinct GDS layer numbers seen.
    pub layers: Vec<i16>,
    /// Bounding box of all points (x0, y0, x1, y1) in database units.
    pub bbox: (i64, i64, i64, i64),
}

/// Parses just enough of a GDSII stream to verify its structure.
pub fn parse_gds_summary(bytes: &[u8]) -> Result<GdsSummary, String> {
    let mut pos = 0usize;
    let mut structure = String::new();
    let mut boundaries = 0usize;
    let mut layers: Vec<i16> = Vec::new();
    let mut bbox = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
    let mut saw_endlib = false;
    while pos + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]) as usize;
        if len < 4 || pos + len > bytes.len() {
            return Err(format!("bad record length {len} at offset {pos}"));
        }
        let rectype = bytes[pos + 2];
        let payload = &bytes[pos + 4..pos + len];
        match rectype {
            STRNAME => {
                structure = payload
                    .iter()
                    .take_while(|&&b| b != 0)
                    .map(|&b| b as char)
                    .collect();
            }
            BOUNDARY => boundaries += 1,
            LAYER => {
                let l = i16::from_be_bytes([payload[0], payload[1]]);
                if !layers.contains(&l) {
                    layers.push(l);
                }
            }
            XY => {
                for ch in payload.chunks_exact(8) {
                    let x = i32::from_be_bytes([ch[0], ch[1], ch[2], ch[3]]) as i64;
                    let y = i32::from_be_bytes([ch[4], ch[5], ch[6], ch[7]]) as i64;
                    bbox.0 = bbox.0.min(x);
                    bbox.1 = bbox.1.min(y);
                    bbox.2 = bbox.2.max(x);
                    bbox.3 = bbox.3.max(y);
                }
            }
            ENDLIB => saw_endlib = true,
            _ => {}
        }
        pos += len;
    }
    if !saw_endlib {
        return Err("stream ended without ENDLIB".into());
    }
    layers.sort_unstable();
    Ok(GdsSummary {
        structure,
        boundaries,
        layers,
        bbox,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::Shape;
    use amgen_geom::Rect;

    #[test]
    fn round_trip_structure() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("my cell");
        obj.push(Shape::new(poly, Rect::new(0, 0, 1_000, 5_000)));
        obj.push(Shape::new(m1, Rect::new(-500, 0, 2_000, 2_000)));
        let bytes = write_gds(&t, &obj);
        let s = parse_gds_summary(&bytes).unwrap();
        assert_eq!(s.structure, "MY_CELL");
        assert_eq!(s.boundaries, 2);
        assert_eq!(s.layers, vec![t.info(poly).gds_layer, t.info(m1).gds_layer]);
        assert_eq!(s.bbox, (-500, 0, 2_000, 5_000));
    }

    #[test]
    fn output_is_deterministic() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, 100, 100)));
        assert_eq!(write_gds(&t, &obj), write_gds(&t, &obj));
    }

    #[test]
    fn empty_shapes_are_skipped() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::EMPTY));
        obj.push(Shape::new(poly, Rect::new(0, 0, 100, 100)));
        let s = parse_gds_summary(&write_gds(&t, &obj)).unwrap();
        assert_eq!(s.boundaries, 1);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, 100, 100)));
        let bytes = write_gds(&t, &obj);
        let cut = &bytes[..bytes.len() - 6];
        assert!(parse_gds_summary(cut).is_err());
    }

    #[test]
    fn gds_float_encodes_one() {
        // 1.0 = 0.0625 * 16^1: exponent 65, mantissa 0x10...
        let b = gds_f64(1.0);
        assert_eq!(b[0], 65);
        assert_eq!(b[1], 0x10);
    }

    #[test]
    fn real_module_exports() {
        let t = Tech::bicmos_1u();
        let row = amgen_modgen::contact_row(
            &t,
            t.layer("poly").unwrap(),
            &amgen_modgen::ContactRowParams::new().with_w(10_000),
        )
        .unwrap();
        let s = parse_gds_summary(&write_gds(&t, &row)).unwrap();
        assert_eq!(s.boundaries, row.len());
        assert!(s.layers.len() >= 3);
    }
}

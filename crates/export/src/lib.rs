//! Layout export: SVG for inspection, GDSII for interchange.
//!
//! The original environment showed *"a text window for the source code
//! and a corresponding graphical view of the module"*; [`svg::render`]
//! is this repository's stand-in for that live view — every generation
//! step can be snapshotted to an SVG. [`gds::write_gds`] emits a binary
//! GDSII stream so generated modules can enter a conventional flow.

pub mod cif;
pub mod gds;
pub mod svg;

pub use cif::{parse_cif_summary, write_cif, CifSummary};
pub use gds::{parse_gds_summary, write_gds, GdsSummary};
pub use svg::render as render_svg;
pub use svg::render_legend;

//! SVG rendering of layout objects.

use amgen_db::LayoutObject;
use amgen_tech::{LayerKind, Tech};

/// Fill colour and opacity for a layer, chosen by kind with an index
/// nudge so sibling layers stay distinguishable (the role of the paper's
/// Fig. 4 fill patterns).
fn style(tech: &Tech, layer: amgen_tech::Layer) -> (&'static str, f32) {
    match tech.kind(layer) {
        LayerKind::Diffusion => ("#2e8b57", 0.55),
        LayerKind::Poly => ("#cc2222", 0.6),
        LayerKind::Metal => {
            if tech.layer_name(layer).ends_with('2') {
                ("#9932cc", 0.45)
            } else {
                ("#1e66d0", 0.5)
            }
        }
        LayerKind::Cut => ("#111111", 0.9),
        LayerKind::Implant => ("#dddd44", 0.2),
        LayerKind::Well => ("#888888", 0.15),
        LayerKind::Buried => ("#cd853f", 0.3),
        LayerKind::Other => ("#aaaaaa", 0.3),
    }
}

/// Renders the object to a standalone SVG document (y axis flipped so
/// north is up).
///
/// # Example
/// ```
/// use amgen_db::{LayoutObject, Shape};
/// use amgen_geom::Rect;
/// use amgen_tech::Tech;
///
/// let tech = Tech::bicmos_1u();
/// let poly = tech.layer("poly").unwrap();
/// let mut obj = LayoutObject::new("x");
/// obj.push(Shape::new(poly, Rect::new(0, 0, 1_000, 5_000)));
/// let svg = amgen_export::render_svg(&tech, &obj);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("rect"));
/// ```
pub fn render(tech: &Tech, obj: &LayoutObject) -> String {
    let bbox = obj.bbox().inflated(2_000);
    let (w, h) = (bbox.width().max(1), bbox.height().max(1));
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {w} {h}\" \
         width=\"800\" height=\"{}\">\n",
        (800i64 * h / w).max(1)
    ));
    out.push_str(&format!(
        "<title>{} ({} shapes)</title>\n",
        obj.name(),
        obj.len()
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#fcfcf8\"/>\n");
    // Draw big under small so cuts stay visible.
    let mut order: Vec<usize> = (0..obj.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(obj.shapes()[i].rect.area()));
    for i in order {
        let s = &obj.shapes()[i];
        let (color, opacity) = style(tech, s.layer);
        let x = s.rect.x0 - bbox.x0;
        let y = bbox.y1 - s.rect.y1; // flip
        out.push_str(&format!(
            "<rect x=\"{x}\" y=\"{y}\" width=\"{}\" height=\"{}\" fill=\"{color}\" \
             fill-opacity=\"{opacity}\" stroke=\"{color}\" stroke-width=\"20\">\
             <title>{}</title></rect>\n",
            s.rect.width(),
            s.rect.height(),
            tech.layer_name(s.layer),
        ));
    }
    // Port markers.
    for p in obj.ports() {
        let x = p.rect.center().x - bbox.x0;
        let y = bbox.y1 - p.rect.center().y;
        out.push_str(&format!(
            "<text x=\"{x}\" y=\"{y}\" font-size=\"900\" text-anchor=\"middle\" \
             fill=\"#000\">{}</text>\n",
            p.name
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Renders the layer legend — the reproduction of the paper's Fig. 4
/// (*"Fill patterns for the layers"*): one swatch per layer of the
/// technology with its name and kind.
pub fn render_legend(tech: &Tech) -> String {
    let row_h = 28;
    let n = tech.layer_count();
    let height = n as i64 * row_h + 20;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"360\" height=\"{height}\" \
         viewBox=\"0 0 360 {height}\">\n"
    ));
    out.push_str(&format!("<title>layers of {}</title>\n", tech.name()));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"#fcfcf8\"/>\n");
    for (i, layer) in tech.layers().enumerate() {
        let y = 10 + i as i64 * row_h;
        let (color, opacity) = style(tech, layer);
        out.push_str(&format!(
            "<rect x=\"10\" y=\"{y}\" width=\"46\" height=\"20\" fill=\"{color}\" \
             fill-opacity=\"{opacity}\" stroke=\"{color}\"/>\n"
        ));
        out.push_str(&format!(
            "<text x=\"66\" y=\"{}\" font-size=\"14\" font-family=\"monospace\">{} ({})</text>\n",
            y + 15,
            tech.layer_name(layer),
            tech.kind(layer).keyword(),
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::Shape;
    use amgen_geom::Rect;

    #[test]
    fn renders_every_shape_and_port() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("demo");
        obj.push(Shape::new(poly, Rect::new(0, 0, 1_000, 5_000)));
        obj.push(Shape::new(m1, Rect::new(0, 0, 2_000, 2_000)));
        obj.push_port(amgen_db::Port {
            name: "g".into(),
            layer: m1,
            rect: Rect::new(0, 0, 2_000, 2_000),
            net: None,
        });
        let svg = render(&t, &obj);
        assert_eq!(svg.matches("<rect ").count(), 3, "background + 2 shapes");
        assert!(svg.contains(">g</text>"));
        assert!(svg.contains("poly"));
        assert!(svg.contains("metal1"));
    }

    #[test]
    fn empty_object_still_renders() {
        let t = Tech::bicmos_1u();
        let obj = LayoutObject::new("empty");
        let svg = render(&t, &obj);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn legend_lists_every_layer() {
        let t = Tech::bicmos_1u();
        let legend = render_legend(&t);
        for l in t.layers() {
            assert!(
                legend.contains(t.layer_name(l)),
                "missing {}",
                t.layer_name(l)
            );
        }
        assert_eq!(legend.matches("<rect x=\"10\"").count(), t.layer_count());
    }

    #[test]
    fn cuts_drawn_above_conductors() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(ct, Rect::new(500, 500, 1_500, 1_500)));
        obj.push(Shape::new(m1, Rect::new(0, 0, 2_000, 2_000)));
        let svg = render(&t, &obj);
        let metal_pos = svg.find("metal1").unwrap();
        let cut_pos = svg.find("contact").unwrap();
        assert!(metal_pos < cut_pos, "bigger metal first, cut on top");
    }
}

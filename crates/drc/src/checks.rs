//! The rule checks: width, spacing, shorts, enclosure, cut size.

use amgen_core::{GenCtx, IntoGenCtx, Stage};
use amgen_db::{LayoutObject, Shape};
use amgen_geom::{Axis, Coord, Rect, Region};
use amgen_tech::{Layer, LayerKind, RuleSet};

use crate::latchup;
use crate::violation::{Violation, ViolationKind};

/// Cover-rectangle source for the union tests (`covered_by` call
/// sites): the spatial index returns only the same-layer shapes near
/// the window — exact, because a cover that does not overlap the window
/// cannot cut anything from it — while the scan source returns every
/// same-layer shape, reproducing the pre-index behaviour for the
/// equivalence baselines.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Candidates {
    Indexed,
    Scan,
}

impl Candidates {
    fn covers(self, obj: &LayoutObject, layer: Layer, window: &Rect) -> Vec<Rect> {
        match self {
            Candidates::Indexed => obj
                .spatial_index()
                .query_overlapping(layer, window)
                .into_iter()
                .map(|i| obj.shapes()[i].rect)
                .collect(),
            Candidates::Scan => obj.shapes_on(layer).map(|s| s.rect).collect(),
        }
    }
}

/// The design-rule checker, bound to one generation context.
#[derive(Debug, Clone)]
pub struct Drc {
    ctx: GenCtx,
}

impl Drc {
    /// Binds the checker to a generation context (or anything that
    /// converts into one, e.g. `&Tech`).
    pub fn new(ctx: impl IntoGenCtx) -> Drc {
        Drc {
            ctx: ctx.into_gen_ctx(),
        }
    }

    /// The shared generation context.
    pub fn ctx(&self) -> &GenCtx {
        &self.ctx
    }

    /// The compiled rule kernel.
    pub fn rules(&self) -> &RuleSet {
        &self.ctx
    }

    /// Runs every check and returns all violations.
    ///
    /// Every sub-check runs on the object's
    /// [spatial index](LayoutObject::spatial_index) — window queries
    /// instead of all-pairs scans — and produces output byte-identical
    /// to the pre-index checker ([`check_scan`](Drc::check_scan)).
    pub fn check(&self, obj: &LayoutObject) -> Vec<Violation> {
        let t0 = std::time::Instant::now();
        let mut span = self
            .ctx
            .span(Stage::Drc, || amgen_core::name!("check:{}", obj.name()));
        let mut out = Vec::new();
        out.extend(self.check_widths(obj));
        out.extend(self.check_spacing(obj));
        out.extend(self.check_enclosures(obj));
        out.extend(self.check_min_area(obj));
        out.extend(latchup::check_latchup(&self.ctx, obj));
        self.ctx
            .metrics
            .add_stage_nanos(Stage::Drc, t0.elapsed().as_nanos() as u64);
        span.arg("shapes", obj.len());
        span.arg("violations", out.len());
        out
    }

    /// The pre-index checker: every sub-check runs its linear-scan /
    /// all-pairs variant. Kept as the baseline the indexed checks are
    /// parity-tested against (byte-identical violations).
    #[doc(hidden)]
    pub fn check_scan(&self, obj: &LayoutObject) -> Vec<Violation> {
        let mut out = Vec::new();
        out.extend(self.check_widths_scan(obj));
        out.extend(self.check_spacing_scan(obj));
        out.extend(self.check_enclosures_scan(obj));
        out.extend(self.check_min_area_scan(obj));
        out.extend(latchup::check_latchup_scan(&self.ctx, obj));
        out
    }

    /// Minimum area per **merged region**: same-layer shapes that touch
    /// or overlap form one region; its union area must reach the layer's
    /// `minarea` rule. Touching pairs come from the spatial index
    /// (`query_pairs_within(layer, 0)`) instead of an all-pairs sweep.
    pub fn check_min_area(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.min_area_impl(obj, Candidates::Indexed)
    }

    /// All-pairs baseline of [`check_min_area`](Drc::check_min_area).
    #[doc(hidden)]
    pub fn check_min_area_scan(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.min_area_impl(obj, Candidates::Scan)
    }

    fn min_area_impl(&self, obj: &LayoutObject, mode: Candidates) -> Vec<Violation> {
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        self.ctx.metrics.add_drc_checks(1);
        let mut out = Vec::new();
        for layer in self.ctx.layers() {
            let rule_um2 = self.ctx.min_area_um2(layer);
            if rule_um2 <= 0.0 {
                continue;
            }
            // Shape indices on the layer, ascending (linear-scan order).
            let ids: Vec<usize> = obj
                .shapes()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.layer == layer)
                .map(|(i, _)| i)
                .collect();
            if ids.is_empty() {
                continue;
            }
            let rects: Vec<Rect> = ids.iter().map(|&i| obj.shapes()[i].rect).collect();
            // Cluster touching rectangles (union-find).
            let mut parent: Vec<usize> = (0..rects.len()).collect();
            let join = |parent: &mut Vec<usize>, i: usize, j: usize| {
                if rects[i].overlaps(&rects[j]) || rects[i].abuts(&rects[j]) {
                    let (ri, rj) = (find(parent, i), find(parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            };
            match mode {
                Candidates::Indexed => {
                    for (gi, gj) in obj.spatial_index().query_pairs_within(layer, 0) {
                        let i = ids.binary_search(&gi).expect("indexed shape is on layer");
                        let j = ids.binary_search(&gj).expect("indexed shape is on layer");
                        join(&mut parent, i, j);
                    }
                }
                Candidates::Scan => {
                    for i in 0..rects.len() {
                        for j in (i + 1)..rects.len() {
                            join(&mut parent, i, j);
                        }
                    }
                }
            }
            // Group clusters by their smallest member index — an order
            // independent of how the unions happened to be discovered,
            // so both candidate sources report identically.
            let mut min_of_root: std::collections::HashMap<usize, usize> = Default::default();
            let mut clusters: std::collections::BTreeMap<usize, Vec<Rect>> = Default::default();
            for (i, rect) in rects.iter().enumerate() {
                let r = find(&mut parent, i);
                let key = *min_of_root.entry(r).or_insert(i);
                clusters.entry(key).or_default().push(*rect);
            }
            for cluster in clusters.values() {
                let region: Region = cluster.iter().copied().collect();
                let area_um2 = region.area() as f64 / 1e6;
                if area_um2 + 1e-9 < rule_um2 {
                    out.push(Violation {
                        kind: ViolationKind::MinArea,
                        rect: region.bbox(),
                        message: format!(
                            "{} region area {area_um2:.2} um^2 < {rule_um2} um^2",
                            self.ctx.layer_name(layer)
                        ),
                    });
                }
            }
        }
        out
    }

    /// Minimum width / exact cut size per shape.
    pub fn check_widths(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.widths_impl(obj, Candidates::Indexed)
    }

    /// Linear-scan baseline of [`check_widths`](Drc::check_widths).
    #[doc(hidden)]
    pub fn check_widths_scan(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.widths_impl(obj, Candidates::Scan)
    }

    fn widths_impl(&self, obj: &LayoutObject, mode: Candidates) -> Vec<Violation> {
        self.ctx.metrics.add_drc_checks(1);
        let mut out = Vec::new();
        for s in obj.shapes() {
            let name = self.ctx.layer_name(s.layer);
            if self.ctx.kind(s.layer) == LayerKind::Cut {
                if let Ok(cs) = self.ctx.cut_size(s.layer) {
                    if s.rect.width() != cs || s.rect.height() != cs {
                        out.push(Violation {
                            kind: ViolationKind::CutSize,
                            rect: s.rect,
                            message: format!(
                                "{name} cut is {}x{}, must be {cs}x{cs}",
                                s.rect.width(),
                                s.rect.height()
                            ),
                        });
                    }
                }
                continue;
            }
            let w = self.ctx.min_width(s.layer);
            let min_dim = s.rect.width().min(s.rect.height());
            if w > 0 && min_dim < w && !self.widened_is_covered(obj, s, w, mode) {
                out.push(Violation {
                    kind: ViolationKind::Width,
                    rect: s.rect,
                    message: format!("{name} width {min_dim} < {w}"),
                });
            }
        }
        out
    }

    /// True if a narrow shape is part of a wider merged region: some
    /// min-width window containing the shape's narrow extent is fully
    /// covered by same-layer geometry (e.g. the short strap the compactor
    /// inserts between two wide diffusion areas).
    fn widened_is_covered(
        &self,
        obj: &LayoutObject,
        s: &Shape,
        min_w: Coord,
        mode: Candidates,
    ) -> bool {
        let r = s.rect;
        let narrow_x = r.width() < r.height();
        let candidates: [Rect; 3] = if narrow_x {
            [
                Rect::new(r.x1 - min_w, r.y0, r.x1, r.y1),
                Rect::new(r.x0, r.y0, r.x0 + min_w, r.y1),
                Rect::new(
                    r.center().x - min_w / 2,
                    r.y0,
                    r.center().x - min_w / 2 + min_w,
                    r.y1,
                ),
            ]
        } else {
            [
                Rect::new(r.x0, r.y1 - min_w, r.x1, r.y1),
                Rect::new(r.x0, r.y0, r.x1, r.y0 + min_w),
                Rect::new(
                    r.x0,
                    r.center().y - min_w / 2,
                    r.x1,
                    r.center().y - min_w / 2 + min_w,
                ),
            ]
        };
        candidates
            .iter()
            .any(|window| Region::from_rect(*window).covered_by(mode.covers(obj, s.layer, window)))
    }

    /// Spacing between disconnected shape pairs and same-layer shorts.
    ///
    /// The Manhattan separation `max(gap_x, gap_y)` must reach the rule.
    /// Pairs that touch or overlap are *connected* (same layer) or
    /// *stacked* (different layers, e.g. a gate crossing) and are exempt —
    /// except same-layer overlap of two **different defined potentials**,
    /// which is a short. Pairs that belong to the same geometrically
    /// extracted net are also exempt (same-net spacing, e.g. two fingers
    /// of one diffusion joined by a strap between them).
    /// Each shape only checks against the shapes the spatial index finds
    /// inside its rule-inflated window, instead of every other shape.
    /// The closed-interval candidate test on `rect.inflated(rule)` admits
    /// exactly the pairs with `gap_x <= rule && gap_y <= rule` — a
    /// superset of both reportable cases (`max(gap) < rule` spacing
    /// violations and `gap <= 0` shorts) — so no naive-loop pair is
    /// missed; candidates are then run through the identical pair logic
    /// in the identical `i < j` ascending order.
    pub fn check_spacing(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.ctx.metrics.add_drc_checks(1);
        let mut out = Vec::new();
        let shapes = obj.shapes();
        let comp = self.components(obj);
        let ix = obj.spatial_index();
        // Per layer: the partner layers carrying a nonzero spacing rule
        // against it (the only pairs the naive loop does not skip).
        let mut partners: std::collections::BTreeMap<Layer, Vec<(Layer, Coord)>> =
            Default::default();
        for la in self.ctx.layers() {
            let list: Vec<(Layer, Coord)> = self
                .ctx
                .layers()
                .filter_map(|lb| match self.ctx.min_spacing(la, lb) {
                    Some(r) if r > 0 => Some((lb, r)),
                    _ => None,
                })
                .collect();
            if !list.is_empty() {
                partners.insert(la, list);
            }
        }
        let mut cand: Vec<u32> = Vec::new();
        let mut js: Vec<usize> = Vec::new();
        for (i, a) in shapes.iter().enumerate() {
            let Some(list) = partners.get(&a.layer) else {
                continue;
            };
            js.clear();
            for &(lb, rule) in list {
                ix.query_overlapping_into(lb, &a.rect.inflated(rule), &mut cand);
                js.extend(cand.iter().map(|&j| j as usize).filter(|&j| j > i));
            }
            js.sort_unstable();
            for &j in &js {
                self.spacing_pair(obj, &comp, i, j, Candidates::Indexed, &mut out);
            }
        }
        out
    }

    /// All-pairs baseline of [`check_spacing`](Drc::check_spacing).
    #[doc(hidden)]
    pub fn check_spacing_scan(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.ctx.metrics.add_drc_checks(1);
        let mut out = Vec::new();
        let comp = self.components(obj);
        for i in 0..obj.shapes().len() {
            for j in (i + 1)..obj.shapes().len() {
                self.spacing_pair(obj, &comp, i, j, Candidates::Scan, &mut out);
            }
        }
        out
    }

    /// Connected components per shape (a gate-split diffusion shape
    /// belongs to several), from geometric connectivity.
    fn components(&self, obj: &LayoutObject) -> Vec<Vec<usize>> {
        let mut comp: Vec<Vec<usize>> = vec![Vec::new(); obj.shapes().len()];
        for (ci, net) in amgen_extract::Extractor::new(&self.ctx)
            .connectivity(obj)
            .iter()
            .enumerate()
        {
            for &si in &net.shapes {
                comp[si].push(ci);
            }
        }
        comp
    }

    /// The spacing predicate for one ordered pair `i < j`: shorts on
    /// touch with differing defined potentials, otherwise a spacing
    /// violation when the Manhattan gap undercuts the rule and no
    /// exemption (same net / same component / filled gap) applies.
    fn spacing_pair(
        &self,
        obj: &LayoutObject,
        comp: &[Vec<usize>],
        i: usize,
        j: usize,
        mode: Candidates,
        out: &mut Vec<Violation>,
    ) {
        let a = &obj.shapes()[i];
        let b = &obj.shapes()[j];
        let Some(rule) = self.ctx.min_spacing(a.layer, b.layer) else {
            return;
        };
        if rule == 0 {
            return;
        }
        let gx = a.rect.gap_along(&b.rect, Axis::X);
        let gy = a.rect.gap_along(&b.rect, Axis::Y);
        let gap = gx.max(gy);
        let same_net = match (a.net, b.net) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        };
        let nets_defined_differ = matches!((a.net, b.net), (Some(x), Some(y)) if x != y);
        if gap <= 0 {
            // Touching or overlapping.
            if a.layer == b.layer && nets_defined_differ {
                out.push(Violation {
                    kind: ViolationKind::Short,
                    rect: a.rect.intersection(&b.rect).unwrap_or(a.rect),
                    message: format!(
                        "{} shapes on nets `{}` and `{}` touch",
                        self.ctx.layer_name(a.layer),
                        obj.net_name(a.net.expect("defined")),
                        obj.net_name(b.net.expect("defined")),
                    ),
                });
            }
            return;
        }
        if gap >= rule {
            return;
        }
        let same_component = comp[i].iter().any(|c| comp[j].contains(c));
        if a.layer == b.layer && (same_net || same_component) {
            return;
        }
        // Pairwise gaps are only real when the space between the
        // two shapes is actually empty — a third same-layer shape
        // filling it makes the drawn geometry continuous.
        let gap_filled = a.layer == b.layer && {
            let between = if gx == gap {
                let yr = a.rect.y_range().intersection(&b.rect.y_range());
                yr.map(|y| {
                    let (lo, hi) = if a.rect.x0 >= b.rect.x1 {
                        (b.rect.x1, a.rect.x0)
                    } else {
                        (a.rect.x1, b.rect.x0)
                    };
                    Rect::new(lo, y.lo, hi, y.hi)
                })
            } else {
                let xr = a.rect.x_range().intersection(&b.rect.x_range());
                xr.map(|x| {
                    let (lo, hi) = if a.rect.y0 >= b.rect.y1 {
                        (b.rect.y1, a.rect.y0)
                    } else {
                        (a.rect.y1, b.rect.y0)
                    };
                    Rect::new(x.lo, lo, x.hi, hi)
                })
            };
            match between {
                Some(bx) => Region::from_rect(bx).covered_by(mode.covers(obj, a.layer, &bx)),
                None => false,
            }
        };
        if !gap_filled {
            out.push(Violation {
                kind: ViolationKind::Spacing,
                rect: a.rect.union_bbox(&b.rect),
                message: format!(
                    "{} to {} gap {gap} < {rule}",
                    self.ctx.layer_name(a.layer),
                    self.ctx.layer_name(b.layer)
                ),
            });
        }
    }

    /// Every cut must be enclosed (with margins) by both conductors of one
    /// of its connectable pairs; unions of same-layer shapes count.
    pub fn check_enclosures(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.enclosures_impl(obj, Candidates::Indexed)
    }

    /// Linear-scan baseline of [`check_enclosures`](Drc::check_enclosures).
    #[doc(hidden)]
    pub fn check_enclosures_scan(&self, obj: &LayoutObject) -> Vec<Violation> {
        self.enclosures_impl(obj, Candidates::Scan)
    }

    fn enclosures_impl(&self, obj: &LayoutObject, mode: Candidates) -> Vec<Violation> {
        self.ctx.metrics.add_drc_checks(1);
        let mut out = Vec::new();
        for s in obj.shapes() {
            if self.ctx.kind(s.layer) != LayerKind::Cut {
                continue;
            }
            let pairs = self.ctx.connected_pairs(s.layer);
            if pairs.is_empty() {
                continue;
            }
            let enclosed_by = |layer: Layer, shape: &Shape| -> bool {
                let margin = self.ctx.enclosure(layer, s.layer);
                let window = shape.rect.inflated(margin);
                Region::from_rect(window).covered_by(mode.covers(obj, layer, &window))
            };
            let ok = pairs
                .iter()
                .any(|&(x, y)| enclosed_by(x, s) && enclosed_by(y, s));
            if !ok {
                out.push(Violation {
                    kind: ViolationKind::Enclosure,
                    rect: s.rect,
                    message: format!(
                        "{} cut not enclosed by any connectable conductor pair",
                        self.ctx.layer_name(s.layer)
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amgen_db::Shape;
    use amgen_geom::{um, Rect};
    use amgen_prim::Primitives;
    use amgen_tech::Tech;

    fn tech() -> Tech {
        Tech::bicmos_1u()
    }

    #[test]
    fn clean_contact_row_passes() {
        let t = tech();
        let prim = Primitives::new(&t);
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let mut row = LayoutObject::new("row");
        prim.inbox(&mut row, poly, Some(um(10)), None).unwrap();
        prim.inbox(&mut row, m1, None, None).unwrap();
        prim.array(&mut row, ct).unwrap();
        let v = Drc::new(&t).check(&row);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn narrow_shape_fails_width() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, 400, um(5))));
        let v = Drc::new(&t).check_widths(&obj);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Width);
    }

    #[test]
    fn wrong_cut_size_fails() {
        let t = tech();
        let ct = t.layer("contact").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(ct, Rect::new(0, 0, 800, 1_000)));
        let v = Drc::new(&t).check_widths(&obj);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::CutSize);
    }

    #[test]
    fn close_poly_pair_fails_spacing() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(1), um(5))));
        obj.push(Shape::new(poly, Rect::new(um(2), 0, um(3), um(5))));
        let v = Drc::new(&t).check_spacing(&obj);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Spacing);
    }

    #[test]
    fn spaced_poly_pair_passes() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let s = t.min_spacing(poly, poly).unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(1), um(5))));
        obj.push(Shape::new(poly, Rect::new(um(1) + s, 0, um(2) + s, um(5))));
        assert!(Drc::new(&t).check_spacing(&obj).is_empty());
    }

    #[test]
    fn touching_same_layer_different_nets_is_a_short() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let a = obj.net("vdd");
        let b = obj.net("gnd");
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))).with_net(a));
        obj.push(Shape::new(m1, Rect::new(um(1), 0, um(3), um(2))).with_net(b));
        let v = Drc::new(&t).check_spacing(&obj);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Short);
    }

    #[test]
    fn touching_same_net_is_fine() {
        let t = tech();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        let a = obj.net("vdd");
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))).with_net(a));
        obj.push(Shape::new(m1, Rect::new(um(1), 0, um(3), um(2))).with_net(a));
        assert!(Drc::new(&t).check_spacing(&obj).is_empty());
    }

    #[test]
    fn gate_crossing_is_not_a_spacing_violation() {
        let t = tech();
        let prim = Primitives::new(&t);
        let poly = t.layer("poly").unwrap();
        let pdiff = t.layer("pdiff").unwrap();
        let mut obj = LayoutObject::new("m");
        prim.two_rects(&mut obj, poly, pdiff, Some(um(10)), Some(um(1)))
            .unwrap();
        assert!(Drc::new(&t).check_spacing(&obj).is_empty());
    }

    #[test]
    fn diagonal_spacing_is_checked() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(2), um(2))));
        // Diagonal neighbour: 1 um in x and y (< 1.5 um rule).
        obj.push(Shape::new(poly, Rect::new(um(3), um(3), um(5), um(5))));
        let v = Drc::new(&t).check_spacing(&obj);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn naked_cut_fails_enclosure() {
        let t = tech();
        let ct = t.layer("contact").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(ct, Rect::new(0, 0, 1_000, 1_000)));
        let v = Drc::new(&t).check_enclosures(&obj);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Enclosure);
    }

    #[test]
    fn cut_enclosed_by_two_abutting_metal_rects_passes() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(4), um(4))));
        // Metal made of two halves that only jointly enclose the cut.
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(4))));
        obj.push(Shape::new(m1, Rect::new(um(2), 0, um(4), um(4))));
        obj.push(Shape::new(ct, Rect::new(1_500, 1_500, 2_500, 2_500)));
        let v = Drc::new(&t).check_enclosures(&obj);
        assert!(v.is_empty(), "{v:?}");
    }

    /// The indexed checker must reproduce the linear-scan checker byte
    /// for byte — on a clean generated row and on a deliberately dirty
    /// object that trips width, cut-size, spacing, short, enclosure and
    /// min-area rules at once.
    #[test]
    fn indexed_check_matches_scan_byte_for_byte() {
        let t = tech();
        let prim = Primitives::new(&t);
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let drc = Drc::new(&t);

        let mut row = LayoutObject::new("row");
        prim.inbox(&mut row, poly, Some(um(10)), None).unwrap();
        prim.inbox(&mut row, m1, None, None).unwrap();
        prim.array(&mut row, ct).unwrap();
        assert_eq!(drc.check(&row), drc.check_scan(&row));

        let mut dirty = LayoutObject::new("dirty");
        let vdd = dirty.net("vdd");
        let gnd = dirty.net("gnd");
        dirty.push(Shape::new(poly, Rect::new(0, 0, 400, um(5))));
        dirty.push(Shape::new(poly, Rect::new(um(2), 0, um(3), um(5))));
        dirty.push(Shape::new(m1, Rect::new(0, um(8), um(2), um(10))).with_net(vdd));
        dirty.push(Shape::new(m1, Rect::new(um(1), um(8), um(3), um(10))).with_net(gnd));
        dirty.push(Shape::new(
            m1,
            Rect::new(um(10), um(10), um(11) + 500, um(11) + 500),
        ));
        dirty.push(Shape::new(ct, Rect::new(um(20), 0, um(20) + 800, 1_000)));
        dirty.push(Shape::new(ct, Rect::new(um(24), 0, um(24) + 1_000, 1_000)));
        let indexed = drc.check(&dirty);
        let scan = drc.check_scan(&dirty);
        assert!(!indexed.is_empty());
        assert_eq!(indexed, scan);
    }

    #[test]
    fn cut_with_insufficient_margin_fails() {
        let t = tech();
        let poly = t.layer("poly").unwrap();
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, um(2), um(2))));
        obj.push(Shape::new(m1, Rect::new(0, 0, um(2), um(2))));
        // Cut flush against the poly edge: 0 margin < 500 required.
        obj.push(Shape::new(ct, Rect::new(0, 0, 1_000, 1_000)));
        let v = Drc::new(&t).check_enclosures(&obj);
        assert_eq!(v.len(), 1);
    }
}

#[cfg(test)]
mod min_area_tests {
    use super::*;
    use amgen_db::Shape;
    use amgen_geom::{um, Rect};
    use amgen_tech::Tech;

    #[test]
    fn tiny_isolated_metal_fails_min_area() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        // 1.5 x 1.5 um = 2.25 um^2 < 4 um^2.
        obj.push(Shape::new(m1, Rect::new(0, 0, 1_500, 1_500)));
        let v = Drc::new(&t).check_min_area(&obj);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::MinArea);
    }

    #[test]
    fn touching_fragments_count_as_one_region() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        // Two 1.5 x 1.5 squares abutting: 4.5 um^2 together.
        obj.push(Shape::new(m1, Rect::new(0, 0, 1_500, 1_500)));
        obj.push(Shape::new(m1, Rect::new(1_500, 0, 3_000, 1_500)));
        assert!(Drc::new(&t).check_min_area(&obj).is_empty());
    }

    #[test]
    fn overlap_is_not_double_counted() {
        let t = Tech::bicmos_1u();
        let m1 = t.layer("metal1").unwrap();
        let mut obj = LayoutObject::new("x");
        // Two heavily overlapping squares: union is still 2.4 um^2 < 4.
        obj.push(Shape::new(m1, Rect::new(0, 0, 1_500, 1_500)));
        obj.push(Shape::new(m1, Rect::new(100, 0, 1_600, 1_500)));
        let v = Drc::new(&t).check_min_area(&obj);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn generated_modules_pass_min_area() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let row = amgen_prim_row(&t, poly);
        let v = Drc::new(&t).check_min_area(&row);
        assert!(v.is_empty(), "{v:?}");
    }

    fn amgen_prim_row(t: &Tech, poly: amgen_tech::Layer) -> LayoutObject {
        use amgen_prim::Primitives;
        let prim = Primitives::new(t);
        let m1 = t.layer("metal1").unwrap();
        let ct = t.layer("contact").unwrap();
        let mut row = LayoutObject::new("row");
        prim.inbox(&mut row, poly, Some(um(10)), None).unwrap();
        prim.inbox(&mut row, m1, None, None).unwrap();
        prim.array(&mut row, ct).unwrap();
        row
    }

    #[test]
    fn layers_without_rule_are_unchecked() {
        let t = Tech::bicmos_1u();
        let poly = t.layer("poly").unwrap();
        let mut obj = LayoutObject::new("x");
        obj.push(Shape::new(poly, Rect::new(0, 0, 1_000, 1_000)));
        assert!(Drc::new(&t).check_min_area(&obj).is_empty());
    }
}

//! Violation records.

use amgen_geom::Rect;

/// The class of a design-rule violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A shape is narrower than its layer's minimum width.
    Width,
    /// Two disconnected shapes are closer than the spacing rule.
    Spacing,
    /// Two same-layer shapes on different potentials overlap.
    Short,
    /// A cut is not properly enclosed by a connectable conductor pair.
    Enclosure,
    /// A cut shape does not match the technology's cut size.
    CutSize,
    /// A merged same-layer region is smaller than the minimum area rule.
    MinArea,
    /// MOS active area left uncovered by substrate contacts (Fig. 1).
    LatchUp,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::Width => "width",
            ViolationKind::Spacing => "spacing",
            ViolationKind::Short => "short",
            ViolationKind::Enclosure => "enclosure",
            ViolationKind::CutSize => "cut-size",
            ViolationKind::MinArea => "min-area",
            ViolationKind::LatchUp => "latch-up",
        };
        f.write_str(s)
    }
}

/// One design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule class.
    pub kind: ViolationKind,
    /// Marker rectangle locating the violation.
    pub rect: Rect,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} at {}", self.kind, self.message, self.rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_place() {
        let v = Violation {
            kind: ViolationKind::Spacing,
            rect: Rect::new(0, 0, 10, 10),
            message: "poly to poly 900 < 1500".into(),
        };
        let s = v.to_string();
        assert!(s.contains("spacing"));
        assert!(s.contains("900"));
    }
}

//! Design-rule checker for generated modules.
//!
//! The paper's environment *"evaluates and fulfills the design rules
//! automatically. If a rule cannot be fulfilled an error message
//! occurs."* This crate is the independent referee: it re-checks finished
//! layouts against the technology so that tests can assert the generators
//! and the compactor never produce rule violations.
//!
//! Checks implemented:
//!
//! * **Width** — every shape meets its layer's minimum width; cut shapes
//!   are exactly the cut size.
//! * **Spacing** — Manhattan spacing between disconnected shapes meets the
//!   pair's rule; same-layer overlaps of *different* potentials are
//!   reported as shorts.
//! * **Enclosure** — every cut is fully enclosed, with the rule margin, by
//!   both conductor layers of one of its connectable pairs (unions of
//!   same-layer shapes count, so rows of abutting rectangles are fine).
//! * **Latch-up** (Fig. 1 of the paper) — the temporary rectangles around
//!   all substrate contacts must jointly cover every MOS active area; the
//!   check is the rectangle-cover subtraction with the 16 overlap cases.
//!
//! # Example
//!
//! ```
//! use amgen_db::{LayoutObject, Shape};
//! use amgen_drc::Drc;
//! use amgen_geom::Rect;
//! use amgen_tech::Tech;
//!
//! let tech = Tech::bicmos_1u();
//! let poly = tech.layer("poly").unwrap();
//! let mut obj = LayoutObject::new("bad");
//! obj.push(Shape::new(poly, Rect::new(0, 0, 400, 5_000))); // too narrow
//! let report = Drc::new(&tech).check(&obj);
//! assert_eq!(report.len(), 1);
//! ```

pub mod checks;
pub mod latchup;
pub mod violation;

pub use checks::Drc;
pub use violation::{Violation, ViolationKind};
